//===- RationalTest.cpp - Exact rational arithmetic tests ---------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/support/Rational.h"

#include <gtest/gtest.h>

using aqua::Rational;

TEST(Rational, DefaultIsZero) {
  Rational R;
  EXPECT_TRUE(R.isZero());
  EXPECT_EQ(R.numerator(), 0);
  EXPECT_EQ(R.denominator(), 1);
}

TEST(Rational, NormalizesSignAndGcd) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 4), Rational(-1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_GT(Rational(3, -6).denominator(), 0);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 3) + Rational(2, 5), Rational(11, 15));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(11, 15), Rational(22, 45));
  EXPECT_EQ(Rational(1, 2) / Rational(3, 4), Rational(2, 3));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(Rational, PaperFigure5Arithmetic) {
  // The exact Vnorm arithmetic of the paper's worked example.
  Rational L = Rational(1, 3) + Rational(2, 5);
  EXPECT_EQ(L, Rational(11, 15));
  EXPECT_EQ(Rational(2, 3) * L, Rational(22, 45));
  EXPECT_EQ(Rational(1, 3) * L, Rational(11, 45));
  Rational B = Rational(4, 5) * Rational(2, 3) + Rational(2, 3) * L;
  EXPECT_EQ(B, Rational(46, 45));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(7, 7), Rational(1));
  EXPECT_LT(Rational(-5), Rational(0));
}

TEST(Rational, FloorCeilRound) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(5).floor(), 5);
  EXPECT_EQ(Rational(5).ceil(), 5);
  EXPECT_EQ(Rational(1, 3).roundNearest(), 0);
  EXPECT_EQ(Rational(2, 3).roundNearest(), 1);
  EXPECT_EQ(Rational(1, 2).roundNearest(), 1);  // Half away from zero.
  EXPECT_EQ(Rational(-1, 2).roundNearest(), -1);
  EXPECT_EQ(Rational(-2, 3).roundNearest(), -1);
}

TEST(Rational, Reciprocal) {
  EXPECT_EQ(Rational(3, 4).reciprocal(), Rational(4, 3));
  EXPECT_EQ(Rational(-2).reciprocal(), Rational(-1, 2));
}

TEST(Rational, AbsMinMax) {
  EXPECT_EQ(Rational(-3, 7).abs(), Rational(3, 7));
  EXPECT_EQ(aqua::min(Rational(1, 3), Rational(1, 4)), Rational(1, 4));
  EXPECT_EQ(aqua::max(Rational(1, 3), Rational(1, 4)), Rational(1, 3));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).toDouble(), 0.5);
  EXPECT_NEAR(Rational(11, 15).toDouble(), 0.7333333, 1e-6);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(11, 15).str(), "11/15");
  EXPECT_EQ(Rational(-1, 2).str(), "-1/2");
}

TEST(RationalDeath, DivisionByZeroAborts) {
  EXPECT_DEATH({ Rational R(1, 0); (void)R; }, "division by zero");
  EXPECT_DEATH(
      { Rational R = Rational(1) / Rational(0); (void)R; },
      "division by zero");
}

TEST(RationalDeath, OverflowAborts) {
  Rational Big(std::int64_t(1) << 62);
  EXPECT_DEATH({ Rational R = Big * Big; (void)R; }, "overflow");
}

// Property sweep: field axioms on a grid of small rationals.
class RationalPropertyTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RationalPropertyTest, FieldProperties) {
  auto [NumA, DenA] = GetParam();
  Rational A(NumA, DenA);
  for (int N = -3; N <= 3; ++N) {
    for (int D = 1; D <= 4; ++D) {
      Rational B(N, D);
      EXPECT_EQ(A + B, B + A);
      EXPECT_EQ(A * B, B * A);
      EXPECT_EQ(A + B - B, A);
      EXPECT_EQ((A + B) * Rational(2), A * Rational(2) + B * Rational(2));
      if (!B.isZero()) {
        EXPECT_EQ(A / B * B, A);
      }
      EXPECT_EQ(A * Rational(0), Rational(0));
      EXPECT_EQ(A + Rational(0), A);
      EXPECT_EQ(A * Rational(1), A);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RationalPropertyTest,
    ::testing::Values(std::pair{0, 1}, std::pair{1, 1}, std::pair{-1, 2},
                      std::pair{7, 3}, std::pair{-9, 4}, std::pair{999, 1000},
                      std::pair{1, 999}));
