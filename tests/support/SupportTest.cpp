//===- SupportTest.cpp - Error/String/Random/Timer tests ----------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/support/Error.h"
#include "aqua/support/Random.h"
#include "aqua/support/StringUtils.h"
#include "aqua/obs/Timer.h"

#include <gtest/gtest.h>

using namespace aqua;

TEST(Status, SuccessAndError) {
  Status Ok = Status::success();
  EXPECT_TRUE(Ok.ok());
  EXPECT_TRUE(static_cast<bool>(Ok));
  Status Err = Status::error("file missing");
  EXPECT_FALSE(Err.ok());
  EXPECT_EQ(Err.message(), "file missing");
}

TEST(Expected, ValueAndError) {
  Expected<int> V(42);
  EXPECT_TRUE(V.ok());
  EXPECT_EQ(*V, 42);
  Expected<int> E = Expected<int>::error("bad input");
  EXPECT_FALSE(E.ok());
  EXPECT_EQ(E.message(), "bad input");
  EXPECT_FALSE(E.takeStatus().ok());
}

TEST(Expected, UnwrapAbortsOnError) {
  Expected<int> E = Expected<int>::error("kaboom");
  EXPECT_DEATH(E.unwrap(), "kaboom");
}

TEST(StringUtils, Format) {
  EXPECT_EQ(format("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(format("%s", "x"), "x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(StringUtils, FormatTrimmed) {
  EXPECT_EQ(formatTrimmed(3.30, 2), "3.3");
  EXPECT_EQ(formatTrimmed(13.00, 2), "13");
  EXPECT_EQ(formatTrimmed(0.1, 4), "0.1");
  EXPECT_EQ(formatTrimmed(65.217, 2), "65.22");
}

TEST(StringUtils, JoinSplitTrim) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_TRUE(startsWith("separate.LC", "separate"));
  EXPECT_FALSE(startsWith("mix", "mixer"));
}

TEST(Random, Deterministic) {
  SplitMix64 A(7), B(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, UnitRangeAndIntRange) {
  SplitMix64 R(123);
  for (int I = 0; I < 1000; ++I) {
    double U = R.nextUnit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
    std::int64_t N = R.nextInRange(-3, 3);
    EXPECT_GE(N, -3);
    EXPECT_LE(N, 3);
  }
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer T;
  double S0 = T.seconds();
  EXPECT_GE(S0, 0.0);
  T.reset();
  EXPECT_GE(T.millis(), 0.0);
}
