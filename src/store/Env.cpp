//===- Env.cpp - Injectable file-system seam ------------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/store/Env.h"

#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <random>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace aqua;
using namespace aqua::store;

//===----------------------------------------------------------------------===//
// POSIX environment
//===----------------------------------------------------------------------===//

namespace {

Status errnoStatus(const char *What, const std::string &Path) {
  return Status::error(
      format("%s '%s': %s", What, Path.c_str(), std::strerror(errno)));
}

class PosixWritableFile : public WritableFile {
public:
  PosixWritableFile(int Fd, std::string Path) : Fd(Fd), Path(std::move(Path)) {}

  ~PosixWritableFile() override {
    // close() drops any flock this descriptor holds.
    if (Fd >= 0)
      ::close(Fd);
  }

  Status append(std::string_view Data) override {
    // One write(2) per record: concurrent O_APPEND writers never interleave
    // within a call, so records from different processes stay contiguous.
    const char *P = Data.data();
    std::size_t Left = Data.size();
    while (Left > 0) {
      ssize_t N = ::write(Fd, P, Left);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return errnoStatus("append to", Path);
      }
      P += N;
      Left -= static_cast<std::size_t>(N);
    }
    return Status::success();
  }

  Status sync() override {
    if (::fsync(Fd) != 0)
      return errnoStatus("sync", Path);
    return Status::success();
  }

  Status tryLockExclusive(bool &Acquired) override {
    if (::flock(Fd, LOCK_EX | LOCK_NB) == 0) {
      Acquired = true;
      return Status::success();
    }
    Acquired = false;
    if (errno == EWOULDBLOCK || errno == EINTR)
      return Status::success();
    return errnoStatus("lock", Path);
  }

private:
  int Fd;
  std::string Path;
};

/// mmap-backed region; unmapped when the last shared_ptr drops. Mapping a
/// file pins its data blocks even if the name is unlinked afterwards
/// (compaction deletes segments out from under readers by design).
class PosixMappedRegion : public MappedRegion {
public:
  PosixMappedRegion(const char *Base, std::size_t Len) {
    Data = Base;
    Size = Len;
  }
  ~PosixMappedRegion() override {
    if (Data && Size)
      ::munmap(const_cast<char *>(Data), Size);
  }
};

/// Heap-copy region for the zero-length-file case and for Envs without a
/// native mapping primitive (MemEnv uses this via Env::mapRead).
class HeapRegion : public MappedRegion {
public:
  explicit HeapRegion(std::string Bytes) : Owned(std::move(Bytes)) {
    Data = Owned.data();
    Size = Owned.size();
  }

private:
  std::string Owned;
};

class PosixEnv : public Env {
public:
  Status createDir(const std::string &Path) override {
    if (::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST)
      return Status::success();
    return errnoStatus("create directory", Path);
  }

  Expected<std::vector<std::string>> listDir(const std::string &Path) override {
    DIR *D = ::opendir(Path.c_str());
    if (!D)
      return errnoStatus("list", Path);
    std::vector<std::string> Names;
    while (struct dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        Names.push_back(std::move(Name));
    }
    ::closedir(D);
    std::sort(Names.begin(), Names.end());
    return Names;
  }

  Expected<std::uint64_t> fileSize(const std::string &Path) override {
    struct stat St;
    if (::stat(Path.c_str(), &St) != 0)
      return errnoStatus("stat", Path);
    return static_cast<std::uint64_t>(St.st_size);
  }

  Status read(const std::string &Path, std::uint64_t Offset, std::uint64_t Len,
              std::string &Out) override {
    Out.clear();
    int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
    if (Fd < 0)
      return errnoStatus("open", Path);
    Out.resize(Len);
    std::size_t Got = 0;
    while (Got < Len) {
      ssize_t N = ::pread(Fd, Out.data() + Got, Len - Got,
                          static_cast<off_t>(Offset + Got));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        ::close(Fd);
        Out.clear();
        return errnoStatus("read", Path);
      }
      if (N == 0)
        break; // EOF: short read is success.
      Got += static_cast<std::size_t>(N);
    }
    ::close(Fd);
    Out.resize(Got);
    return Status::success();
  }

  Expected<std::unique_ptr<WritableFile>>
  openAppend(const std::string &Path) override {
    int Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                    0644);
    if (Fd < 0)
      return errnoStatus("open for append", Path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(Fd, Path));
  }

  Status rename(const std::string &From, const std::string &To) override {
    if (::rename(From.c_str(), To.c_str()) != 0)
      return errnoStatus("rename", From);
    return Status::success();
  }

  Status removeFile(const std::string &Path) override {
    if (::unlink(Path.c_str()) != 0 && errno != ENOENT)
      return errnoStatus("remove", Path);
    return Status::success();
  }

  bool exists(const std::string &Path) override {
    struct stat St;
    return ::stat(Path.c_str(), &St) == 0;
  }

  Expected<std::shared_ptr<const MappedRegion>>
  mapRead(const std::string &Path) override {
    int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
    if (Fd < 0)
      return errnoStatus("open for map", Path);
    struct stat St;
    if (::fstat(Fd, &St) != 0) {
      Status S = errnoStatus("stat for map", Path);
      ::close(Fd);
      return S;
    }
    std::size_t Len = static_cast<std::size_t>(St.st_size);
    if (Len == 0) {
      ::close(Fd);
      return std::shared_ptr<const MappedRegion>(
          std::make_shared<HeapRegion>(std::string()));
    }
    void *Base = ::mmap(nullptr, Len, PROT_READ, MAP_SHARED, Fd, 0);
    ::close(Fd); // The mapping outlives the descriptor.
    if (Base == MAP_FAILED)
      return errnoStatus("map", Path);
    return std::shared_ptr<const MappedRegion>(
        std::make_shared<PosixMappedRegion>(static_cast<const char *>(Base),
                                            Len));
  }

  Expected<std::uint64_t> dirGeneration(const std::string &Path) override {
    struct stat St;
    if (::stat(Path.c_str(), &St) != 0)
      return errnoStatus("stat", Path);
    // Mix the fields that tick on entry creation/removal/rename. File
    // *appends* do not touch the directory inode; see the Env.h contract.
    std::uint64_t G = static_cast<std::uint64_t>(St.st_mtim.tv_sec);
    G = G * 1000000007ULL + static_cast<std::uint64_t>(St.st_mtim.tv_nsec);
    G = G * 1000000007ULL + static_cast<std::uint64_t>(St.st_size);
    G = G * 1000000007ULL + static_cast<std::uint64_t>(St.st_ino);
    return G;
  }

  std::string uniqueToken() override {
    static std::atomic<std::uint64_t> Counter{0};
    static const std::uint64_t Salt = [] {
      std::random_device RD;
      return (std::uint64_t(RD()) << 32) ^ RD();
    }();
    std::uint64_t N = Counter.fetch_add(1, std::memory_order_relaxed);
    return format("%08x-%08llx-%04llx", static_cast<unsigned>(::getpid()),
                  static_cast<unsigned long long>(Salt & 0xffffffffULL),
                  static_cast<unsigned long long>(N));
  }
};

} // namespace

Env &Env::real() {
  static PosixEnv E;
  return E;
}

Expected<std::shared_ptr<const MappedRegion>>
Env::mapRead(const std::string &Path) {
  auto Size = fileSize(Path);
  if (!Size.ok())
    return Size.takeStatus();
  std::string Bytes;
  if (Status S = read(Path, 0, *Size, Bytes); !S.ok())
    return S;
  if (Bytes.size() != *Size)
    return Status::error(
        format("map '%s': short read (file changed underneath)",
               Path.c_str()));
  return std::shared_ptr<const MappedRegion>(
      std::make_shared<HeapRegion>(std::move(Bytes)));
}

Expected<std::uint64_t> Env::dirGeneration(const std::string &Path) {
  return Expected<std::uint64_t>::error(
      format("dir generation for '%s' is not tracked by this Env",
             Path.c_str()));
}

//===----------------------------------------------------------------------===//
// In-memory environment
//===----------------------------------------------------------------------===//

namespace aqua::store {

class MemWritableFile : public WritableFile {
public:
  MemWritableFile(MemEnv &Env, std::string Path)
      : Parent(Env), Path(std::move(Path)) {}

  ~MemWritableFile() override {
    if (HoldsLock) {
      std::lock_guard<std::mutex> Lock(Parent.Mutex);
      Parent.Locked.erase(Path);
    }
  }

  Status append(std::string_view Data) override {
    std::lock_guard<std::mutex> Lock(Parent.Mutex);
    Parent.Files[Path].append(Data.data(), Data.size());
    ++Parent.Generation;
    return Status::success();
  }

  Status sync() override { return Status::success(); }

  Status tryLockExclusive(bool &Acquired) override {
    std::lock_guard<std::mutex> Lock(Parent.Mutex);
    if (HoldsLock || Parent.Locked.insert(Path).second) {
      HoldsLock = true;
      Acquired = true;
    } else {
      Acquired = false;
    }
    return Status::success();
  }

private:
  MemEnv &Parent;
  std::string Path;
  bool HoldsLock = false;
};

} // namespace aqua::store

Status MemEnv::createDir(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Dirs.insert(Path);
  return Status::success();
}

Expected<std::vector<std::string>> MemEnv::listDir(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Prefix = Path;
  if (Prefix.empty() || Prefix.back() != '/')
    Prefix += '/';
  if (!Dirs.count(Path) && !Dirs.count(Prefix)) {
    bool Any = false;
    for (const auto &[P, Bytes] : Files)
      if (P.compare(0, Prefix.size(), Prefix) == 0)
        Any = true;
    if (!Any)
      return Expected<std::vector<std::string>>::error(
          format("list '%s': no such directory", Path.c_str()));
  }
  std::vector<std::string> Names;
  for (const auto &[P, Bytes] : Files) {
    if (P.compare(0, Prefix.size(), Prefix) != 0)
      continue;
    std::string Rest = P.substr(Prefix.size());
    if (Rest.find('/') == std::string::npos)
      Names.push_back(std::move(Rest));
  }
  return Names; // std::map iteration is already sorted.
}

Expected<std::uint64_t> MemEnv::fileSize(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Files.find(Path);
  if (It == Files.end())
    return Expected<std::uint64_t>::error(
        format("stat '%s': no such file", Path.c_str()));
  return static_cast<std::uint64_t>(It->second.size());
}

Status MemEnv::read(const std::string &Path, std::uint64_t Offset,
                    std::uint64_t Len, std::string &Out) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Out.clear();
  auto It = Files.find(Path);
  if (It == Files.end())
    return Status::error(format("read '%s': no such file", Path.c_str()));
  const std::string &Bytes = It->second;
  if (Offset >= Bytes.size())
    return Status::success();
  Out = Bytes.substr(Offset, Len);
  return Status::success();
}

Expected<std::unique_ptr<WritableFile>>
MemEnv::openAppend(const std::string &Path) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Files.try_emplace(Path).second) // Create-if-absent, like O_CREAT.
      ++Generation;
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<MemWritableFile>(*this, Path));
}

Status MemEnv::rename(const std::string &From, const std::string &To) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Files.find(From);
  if (It == Files.end())
    return Status::error(format("rename '%s': no such file", From.c_str()));
  Files[To] = std::move(It->second);
  Files.erase(It);
  ++Generation;
  return Status::success();
}

Status MemEnv::removeFile(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Files.erase(Path))
    ++Generation;
  return Status::success();
}

bool MemEnv::exists(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Files.count(Path) || Dirs.count(Path);
}

std::string MemEnv::uniqueToken() {
  std::lock_guard<std::mutex> Lock(Mutex);
  return format("mem-%06llu", static_cast<unsigned long long>(NextToken++));
}

std::string MemEnv::snapshot(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Files.find(Path);
  return It == Files.end() ? std::string() : It->second;
}

void MemEnv::corrupt(const std::string &Path, std::string Contents) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Files[Path] = std::move(Contents);
  ++Generation;
}

Expected<std::uint64_t> MemEnv::dirGeneration(const std::string &) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Generation;
}
