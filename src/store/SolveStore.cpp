//===- SolveStore.cpp - Persistent content-addressed solve store ----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/store/SolveStore.h"

#include "aqua/obs/Log.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"
#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_set>

using namespace aqua;
using namespace aqua::store;

namespace {

/// 8-byte segment-file magic (format version in the last two characters).
constexpr char SegmentMagic[8] = {'A', 'Q', 'S', 'T', 'S', 'G', '0', '1'};
/// Per-record magic ("ARC1", little-endian).
constexpr std::uint32_t RecordMagic = 0x31435241u;
constexpr std::uint64_t SegmentHeaderBytes = 8;
constexpr std::uint64_t RecordHeaderBytes = 24;
constexpr std::uint64_t RecordTrailerBytes = 4;

/// Side-car index format: an 8-byte magic, a fixed header, a power-of-two
/// open-addressing slot table, and a trailing CRC-32C over everything
/// after the magic. All integers little-endian.
///
///   u8[8] magic "AQIXD001" | u32 version | u32 reserved
///   | u64 slot_count | u64 entry_count | u64 covered_bytes
///   | slot_count x { u64 key_hi | u64 key_lo | u64 offset | u32 len
///                    | u32 pad }
///   | u32 crc32c
///
/// An empty slot holds offset == ~0. `covered_bytes` must equal the
/// sealed segment's exact file size; any mismatch marks the index stale.
constexpr char IdxMagic[8] = {'A', 'Q', 'I', 'X', 'D', '0', '0', '1'};
constexpr std::uint32_t IdxVersion = 1;
constexpr std::uint64_t IdxHeaderBytes = 40;
constexpr std::uint64_t IdxSlotBytes = 32;
constexpr std::uint64_t IdxTrailerBytes = 4;
constexpr std::uint64_t IdxEmptySlot = ~std::uint64_t{0};

std::uint64_t slotHash(std::uint64_t Hi, std::uint64_t Lo) {
  return Hi ^ (Lo * 0x9e3779b97f4a7c15ULL);
}

/// CRC-32C (Castagnoli), reflected polynomial 0x82F63B78; table-driven.
std::uint32_t crc32c(const void *Data, std::size_t Len,
                     std::uint32_t Seed = 0) {
  static const auto Table = [] {
    std::array<std::uint32_t, 256> T{};
    for (std::uint32_t I = 0; I < 256; ++I) {
      std::uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0x82F63B78u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  std::uint32_t Crc = ~Seed;
  const auto *P = static_cast<const unsigned char *>(Data);
  for (std::size_t I = 0; I < Len; ++I)
    Crc = Table[(Crc ^ P[I]) & 0xFF] ^ (Crc >> 8);
  return ~Crc;
}

void putU32(std::string &Out, std::uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, std::uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

std::uint32_t getU32(const char *P) {
  std::uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | static_cast<unsigned char>(P[I]);
  return V;
}

std::uint64_t getU64(const char *P) {
  std::uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | static_cast<unsigned char>(P[I]);
  return V;
}

/// Serializes one record (header + payload + crc trailer).
std::string encodeRecord(const ir::Fingerprint &Key, std::string_view Payload) {
  std::string Rec;
  Rec.reserve(RecordHeaderBytes + Payload.size() + RecordTrailerBytes);
  putU32(Rec, RecordMagic);
  putU32(Rec, static_cast<std::uint32_t>(Payload.size()));
  putU64(Rec, Key.Hi);
  putU64(Rec, Key.Lo);
  Rec.append(Payload.data(), Payload.size());
  putU32(Rec, crc32c(Rec.data(), Rec.size()));
  return Rec;
}

bool isSegmentName(const std::string &Name) {
  return Name.size() > 8 && Name.compare(0, 4, "seg-") == 0 &&
         Name.compare(Name.size() - 4, 4, ".aqs") == 0;
}

bool isIdxName(const std::string &Name) {
  return Name.size() > 8 && Name.compare(0, 4, "seg-") == 0 &&
         Name.compare(Name.size() - 4, 4, ".idx") == 0;
}

/// "seg-<token>.aqs" -> "seg-<token>.idx".
std::string idxNameFor(const std::string &SegName) {
  return SegName.substr(0, SegName.size() - 4) + ".idx";
}

bool isTempName(const std::string &Name) {
  return Name.compare(0, 4, "tmp-") == 0;
}

/// Global-registry instruments, resolved once.
struct StoreMetrics {
  obs::Counter &Appends = obs::metrics().counter("store.appends");
  obs::Counter &AppendedBytes = obs::metrics().counter("store.appended_bytes");
  obs::Counter &Gets = obs::metrics().counter("store.gets");
  obs::Counter &Hits = obs::metrics().counter("store.hits");
  obs::Counter &Corrupt = obs::metrics().counter("store.corrupt_records");
  obs::Counter &TornTails = obs::metrics().counter("store.torn_tails");
  obs::Counter &Refreshes = obs::metrics().counter("store.refreshes");
  obs::Counter &RefreshSkips = obs::metrics().counter("store.refresh_skips");
  obs::Counter &Compactions = obs::metrics().counter("store.compactions");
  obs::Counter &IndexProbes = obs::metrics().counter("store.index_probes");
  obs::Counter &IndexFallbacks =
      obs::metrics().counter("store.index_fallback_scans");
  obs::Counter &IndexBuilds = obs::metrics().counter("store.index_builds");
  obs::Counter &IndexLoads = obs::metrics().counter("store.index_loads");
};

StoreMetrics &met() {
  static StoreMetrics M;
  return M;
}

} // namespace

SolveStore::SolveStore(std::string Dir, const StoreOptions &Opts, Env &E)
    : Dir(std::move(Dir)), Opts(Opts), E(E) {}

SolveStore::~SolveStore() = default;

Expected<std::unique_ptr<SolveStore>>
SolveStore::open(const std::string &Dir, const StoreOptions &Opts, Env &E) {
  if (Status S = E.createDir(Dir); !S.ok())
    return S;
  std::unique_ptr<SolveStore> Store(new SolveStore(Dir, Opts, E));
  if (Status S = Store->openDirLocked(); !S.ok())
    return S;
  return Store;
}

Status SolveStore::openDirLocked() {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto Names = E.listDir(Dir);
  if (!Names.ok())
    return Names.takeStatus();
  // Sweep compaction temps left behind by a crashed compactor: a live
  // compactor holds the exclusive lock on its temp, so any temp we can
  // lock is stale.
  for (const std::string &Name : *Names) {
    if (!isTempName(Name))
      continue;
    auto Handle = E.openAppend(path(Name));
    if (!Handle.ok())
      continue;
    bool Acquired = false;
    if ((*Handle)->tryLockExclusive(Acquired).ok() && Acquired) {
      AQUA_LOG_INFO("store", "removing stale compaction temp '%s'",
                    Name.c_str());
      (void)E.removeFile(path(Name));
    }
  }
  refreshLocked();
  // Seal what can be sealed: any fully scanned segment with no live
  // writer gets its side-car index built now, so this and every later
  // process serves it through the mapping instead of re-scanning.
  for (std::size_t I = 0; I < Segments.size(); ++I)
    buildIndexLocked(static_cast<int>(I));
  return Status::success();
}

std::uint64_t SolveStore::scanSegmentLocked(int SegIndex) {
  Segment &Seg = Segments[SegIndex];
  if (Seg.Frozen || Seg.Name.empty())
    return 0;
  const std::string Path = path(Seg.Name);
  auto Size = E.fileSize(Path);
  if (!Size.ok())
    return 0; // Deleted under us (compaction elsewhere); tombstoned later.
  std::uint64_t End = *Size;

  // Consume the segment header first.
  if (Seg.ValidBytes == 0) {
    if (End < SegmentHeaderBytes)
      return 0; // Still being created; retry on a later refresh.
    std::string Head;
    if (!E.read(Path, 0, SegmentHeaderBytes, Head).ok() ||
        Head.size() != SegmentHeaderBytes ||
        std::memcmp(Head.data(), SegmentMagic, sizeof(SegmentMagic)) != 0) {
      AQUA_LOG_WARN("store", "segment '%s' has a bad header; ignoring it",
                    Seg.Name.c_str());
      Seg.Frozen = true;
      ++CorruptRecords;
      met().Corrupt.add();
      return 0;
    }
    Seg.ValidBytes = SegmentHeaderBytes;
  }

  std::uint64_t Indexed = 0;
  while (Seg.ValidBytes < End) {
    std::string Head;
    if (!E.read(Path, Seg.ValidBytes, RecordHeaderBytes, Head).ok())
      break;
    if (Head.size() < RecordHeaderBytes) {
      // Incomplete header at the tail: either a torn append from a crash
      // or a live writer mid-record. Stop here; the watermark stays so a
      // later refresh retries.
      ++TornTails;
      met().TornTails.add();
      break;
    }
    std::uint32_t Magic = getU32(Head.data());
    std::uint32_t PayloadLen = getU32(Head.data() + 4);
    if (Magic != RecordMagic || PayloadLen > Opts.MaxPayloadBytes) {
      // Bytes exist but are not a record: real corruption. Freeze the
      // segment at the longest valid prefix -- nothing past this point can
      // be trusted to be record-aligned.
      Seg.Frozen = true;
      ++CorruptRecords;
      met().Corrupt.add();
      AQUA_LOG_WARN("store",
                    "segment '%s' corrupt at offset %llu; serving the "
                    "%llu-byte valid prefix",
                    Seg.Name.c_str(),
                    static_cast<unsigned long long>(Seg.ValidBytes),
                    static_cast<unsigned long long>(Seg.ValidBytes));
      break;
    }
    std::uint64_t RecordBytes =
        RecordHeaderBytes + PayloadLen + RecordTrailerBytes;
    if (Seg.ValidBytes + RecordBytes > End) {
      ++TornTails;
      met().TornTails.add();
      break;
    }
    std::string Rest;
    if (!E.read(Path, Seg.ValidBytes + RecordHeaderBytes,
                PayloadLen + RecordTrailerBytes, Rest)
             .ok() ||
        Rest.size() < PayloadLen + RecordTrailerBytes) {
      ++TornTails;
      met().TornTails.add();
      break;
    }
    std::uint32_t Stored = getU32(Rest.data() + PayloadLen);
    std::uint32_t Fresh = crc32c(Rest.data(), PayloadLen,
                                 crc32c(Head.data(), RecordHeaderBytes));
    if (Stored != Fresh) {
      Seg.Frozen = true;
      ++CorruptRecords;
      met().Corrupt.add();
      AQUA_LOG_WARN("store",
                    "segment '%s': checksum mismatch at offset %llu; "
                    "recovering to the longest valid prefix",
                    Seg.Name.c_str(),
                    static_cast<unsigned long long>(Seg.ValidBytes));
      break;
    }
    ir::Fingerprint Key;
    Key.Hi = getU64(Head.data() + 8);
    Key.Lo = getU64(Head.data() + 16);
    Index.insert_or_assign(Key,
                           RecordLoc{SegIndex, Seg.ValidBytes, PayloadLen});
    Seg.ValidBytes += RecordBytes;
    ++Indexed;
  }
  return Indexed;
}

std::uint64_t SolveStore::refreshLocked() {
  ++Refreshes;
  met().Refreshes.add();
  // Capture the generation *before* listing: a mutation racing with this
  // refresh leaves the stored generation stale, so the next miss refreshes
  // again (conservative, never misses a change).
  auto Gen = E.dirGeneration(Dir);
  auto Names = E.listDir(Dir);
  if (!Names.ok())
    return 0;
  std::uint64_t Indexed = 0;
  for (const std::string &Name : *Names) {
    if (!isSegmentName(Name))
      continue;
    int SegIndex = -1;
    for (std::size_t I = 0; I < Segments.size(); ++I)
      if (Segments[I].Name == Name)
        SegIndex = static_cast<int>(I);
    if (SegIndex < 0) {
      Segment Fresh;
      Fresh.Name = Name;
      Segments.push_back(std::move(Fresh));
      SegIndex = static_cast<int>(Segments.size()) - 1;
    } else if (SegIndex == WriterSegment ||
               Segments[SegIndex].Sealed) {
      continue; // Our own appends are indexed as they happen; sealed
                // segments never grow.
    }
    // Prefer adopting a side-car index over scanning: one validation pass
    // instead of a record-by-record read of the whole segment.
    if (loadIndexLocked(SegIndex))
      continue;
    Indexed += scanSegmentLocked(SegIndex);
  }
  // Tombstone segments whose file vanished (compacted by another process);
  // their index entries were superseded when the compacted segment was
  // scanned above, or will demote to misses on read. Views handed out of
  // a sealed mapping stay valid -- they hold their own keepalive.
  for (Segment &Seg : Segments)
    if (!Seg.Name.empty() && !Seg.Handle && !E.exists(path(Seg.Name))) {
      Seg.Name.clear();
      Seg.Sealed = false;
      Seg.Data.reset();
      Seg.IdxMap.reset();
      Seg.IdxSlots = nullptr;
      Seg.IdxSlotCount = 0;
    }
  // Sweep orphan side-cars (their segment was compacted away and the
  // compactor died before removing the index).
  for (const std::string &Name : *Names) {
    if (!isIdxName(Name))
      continue;
    std::string SegName = Name.substr(0, Name.size() - 4) + ".aqs";
    if (std::find(Names->begin(), Names->end(), SegName) == Names->end())
      (void)E.removeFile(path(Name));
  }
  if (Gen.ok()) {
    HaveDirGeneration = true;
    LastDirGeneration = *Gen;
  } else {
    HaveDirGeneration = false;
  }
  return Indexed;
}

std::uint64_t SolveStore::refreshOnMissLocked() {
  auto Gen = E.dirGeneration(Dir);
  if (Gen.ok() && HaveDirGeneration && *Gen == LastDirGeneration) {
    // No file was created, removed, renamed, or (for exact Envs) mutated
    // since the last full refresh. The only thing that can still have
    // changed under POSIX semantics is the tail of a segment a live
    // foreign writer is appending to -- exactly the unsealed, non-writer
    // segments -- so re-stat only those instead of the whole directory.
    ++RefreshSkips;
    met().RefreshSkips.add();
    std::uint64_t Indexed = 0;
    for (std::size_t I = 0; I < Segments.size(); ++I) {
      if (static_cast<int>(I) == WriterSegment)
        continue;
      Segment &Seg = Segments[I];
      if (Seg.Sealed || Seg.Frozen || Seg.Name.empty())
        continue;
      Indexed += scanSegmentLocked(static_cast<int>(I));
    }
    return Indexed;
  }
  return refreshLocked();
}

std::string
SolveStore::encodeIndexBytes(const std::vector<IdxEntry> &Entries,
                             std::uint64_t Covered) {
  std::uint64_t SlotCount = 4;
  while (SlotCount < Entries.size() * 2)
    SlotCount <<= 1;
  std::vector<IdxEntry> Slots(SlotCount);
  for (IdxEntry &S : Slots)
    S.Offset = IdxEmptySlot;
  std::uint64_t Filled = 0;
  for (const IdxEntry &En : Entries) {
    std::uint64_t H = slotHash(En.Hi, En.Lo);
    for (std::uint64_t P = 0;; ++P) {
      IdxEntry &S = Slots[(H + P) & (SlotCount - 1)];
      if (S.Offset == IdxEmptySlot) {
        S = En;
        ++Filled;
        break;
      }
      if (S.Hi == En.Hi && S.Lo == En.Lo) {
        S = En; // Within one segment the later record wins.
        break;
      }
    }
  }
  std::string Out;
  Out.reserve(IdxHeaderBytes + SlotCount * IdxSlotBytes + IdxTrailerBytes);
  Out.append(IdxMagic, sizeof(IdxMagic));
  putU32(Out, IdxVersion);
  putU32(Out, 0);
  putU64(Out, SlotCount);
  putU64(Out, Filled);
  putU64(Out, Covered);
  for (const IdxEntry &S : Slots) {
    putU64(Out, S.Hi);
    putU64(Out, S.Lo);
    putU64(Out, S.Offset);
    putU32(Out, S.PayloadLen);
    putU32(Out, 0);
  }
  putU32(Out, crc32c(Out.data() + sizeof(IdxMagic),
                     Out.size() - sizeof(IdxMagic)));
  return Out;
}

bool SolveStore::parseSegmentRecords(std::string_view Bytes,
                                     std::uint32_t MaxPayloadBytes,
                                     std::vector<IdxEntry> &Out) {
  if (Bytes.size() < SegmentHeaderBytes ||
      std::memcmp(Bytes.data(), SegmentMagic, sizeof(SegmentMagic)) != 0)
    return false;
  std::uint64_t Off = SegmentHeaderBytes;
  while (Off < Bytes.size()) {
    if (Off + RecordHeaderBytes > Bytes.size())
      return false;
    const char *Head = Bytes.data() + Off;
    std::uint32_t Magic = getU32(Head);
    std::uint32_t PayloadLen = getU32(Head + 4);
    if (Magic != RecordMagic || PayloadLen > MaxPayloadBytes)
      return false;
    std::uint64_t RecordBytes =
        RecordHeaderBytes + PayloadLen + RecordTrailerBytes;
    if (Off + RecordBytes > Bytes.size())
      return false;
    std::uint32_t Stored = getU32(Head + RecordBytes - RecordTrailerBytes);
    std::uint32_t Fresh = crc32c(
        Head, static_cast<std::size_t>(RecordBytes - RecordTrailerBytes));
    if (Stored != Fresh)
      return false;
    Out.push_back(IdxEntry{getU64(Head + 8), getU64(Head + 16), Off,
                           PayloadLen});
    Off += RecordBytes;
  }
  return true;
}

bool SolveStore::loadIndexLocked(int SegIndex) {
  Segment &Seg = Segments[SegIndex];
  if (!Opts.UseIndexes || Seg.Sealed || Seg.Name.empty())
    return false;
  const std::string IdxPath = path(idxNameFor(Seg.Name));
  if (!E.exists(IdxPath))
    return false;
  auto Invalid = [&](const char *Why) {
    ++IndexFallbackScans;
    met().IndexFallbacks.add();
    AQUA_LOG_WARN("store", "side-car index for '%s' %s; falling back to "
                           "the segment scan",
                  Seg.Name.c_str(), Why);
    (void)E.removeFile(IdxPath);
    return false;
  };
  auto SegSize = E.fileSize(path(Seg.Name));
  if (!SegSize.ok())
    return false; // Segment vanished; the tombstone sweep handles it.
  auto Map = E.mapRead(IdxPath);
  if (!Map.ok())
    return Invalid("is unreadable");
  std::string_view B = (*Map)->bytes();
  if (B.size() < IdxHeaderBytes + IdxTrailerBytes ||
      std::memcmp(B.data(), IdxMagic, sizeof(IdxMagic)) != 0)
    return Invalid("is truncated or has a bad magic");
  if (getU32(B.data() + 8) != IdxVersion)
    return Invalid("has an unsupported version");
  std::uint64_t SlotCount = getU64(B.data() + 16);
  std::uint64_t EntryCount = getU64(B.data() + 24);
  std::uint64_t Covered = getU64(B.data() + 32);
  if (SlotCount == 0 || SlotCount > (std::uint64_t{1} << 32) ||
      (SlotCount & (SlotCount - 1)) != 0 || EntryCount > SlotCount)
    return Invalid("has an implausible slot table");
  if (B.size() != IdxHeaderBytes + SlotCount * IdxSlotBytes + IdxTrailerBytes)
    return Invalid("is truncated");
  std::uint32_t Stored = getU32(B.data() + B.size() - IdxTrailerBytes);
  std::uint32_t Fresh =
      crc32c(B.data() + sizeof(IdxMagic),
             B.size() - sizeof(IdxMagic) - IdxTrailerBytes);
  if (Stored != Fresh)
    return Invalid("failed its checksum");
  // Sealed segments never grow, so the index must describe the file
  // exactly; any size drift means it belongs to different bytes.
  if (Covered != *SegSize || Covered < SegmentHeaderBytes)
    return Invalid("is stale (covered bytes != segment size)");
  auto Data = E.mapRead(path(Seg.Name));
  if (!Data.ok() || (*Data)->bytes().size() != Covered)
    return false; // Transient (segment being deleted); not the index's fault.
  if (std::memcmp((*Data)->bytes().data(), SegmentMagic,
                  sizeof(SegmentMagic)) != 0)
    return Invalid("indexes a segment with a bad header");
  Seg.Sealed = true;
  Seg.Data = *Data;
  Seg.IdxMap = *Map;
  Seg.IdxSlotCount = SlotCount;
  Seg.IdxSlots = (*Map)->bytes().data() + IdxHeaderBytes;
  Seg.ValidBytes = Covered;
  ++IndexLoads;
  met().IndexLoads.add();
  // The mapped table supersedes any in-memory entries pointing here.
  for (auto It = Index.begin(); It != Index.end();)
    It = It->second.Segment == SegIndex ? Index.erase(It) : std::next(It);
  return true;
}

void SolveStore::writeAndAdoptIndexLocked(int SegIndex,
                                          const std::vector<IdxEntry> &Entries) {
  Segment &Seg = Segments[SegIndex];
  std::string Bytes = encodeIndexBytes(Entries, Seg.ValidBytes);
  std::string TempName = "tmp-" + E.uniqueToken();
  auto Temp = E.openAppend(path(TempName));
  if (!Temp.ok())
    return;
  bool TempLocked = false;
  (void)(*Temp)->tryLockExclusive(TempLocked); // Guards the stale-temp sweep.
  if (!(*Temp)->append(Bytes).ok() || !(*Temp)->sync().ok() ||
      !E.rename(path(TempName), path(idxNameFor(Seg.Name))).ok()) {
    (void)E.removeFile(path(TempName));
    return;
  }
  Temp->reset();
  ++IndexBuilds;
  met().IndexBuilds.add();
  if (!Opts.UseIndexes)
    return; // Built for other processes; we keep scanning.
  auto Map = E.mapRead(path(idxNameFor(Seg.Name)));
  auto Data = E.mapRead(path(Seg.Name));
  if (!Map.ok() || !Data.ok() ||
      (*Data)->bytes().size() != Seg.ValidBytes)
    return;
  Seg.Sealed = true;
  Seg.Data = *Data;
  Seg.IdxMap = *Map;
  Seg.IdxSlotCount = getU64((*Map)->bytes().data() + 16);
  Seg.IdxSlots = (*Map)->bytes().data() + IdxHeaderBytes;
  for (auto It = Index.begin(); It != Index.end();)
    It = It->second.Segment == SegIndex ? Index.erase(It) : std::next(It);
}

void SolveStore::buildIndexLocked(int SegIndex) {
  Segment &Seg = Segments[SegIndex];
  if (!Opts.BuildIndexes || Seg.Sealed || Seg.Frozen || Seg.Name.empty() ||
      SegIndex == WriterSegment || Seg.Handle)
    return;
  if (E.exists(path(idxNameFor(Seg.Name))))
    return; // Someone already built it; the next refresh adopts it.
  // Only a segment we fully scanned is eligible: a torn tail or a live
  // writer's in-flight growth means ValidBytes != file size.
  auto Size = E.fileSize(path(Seg.Name));
  if (!Size.ok() || *Size != Seg.ValidBytes ||
      Seg.ValidBytes < SegmentHeaderBytes)
    return;
  // Quiescence proof: taking the writer lock means the owning writer is
  // gone, and writers never reopen a segment -- it can never grow again.
  auto Handle = E.openAppend(path(Seg.Name));
  if (!Handle.ok())
    return;
  bool Acquired = false;
  if (!(*Handle)->tryLockExclusive(Acquired).ok() || !Acquired)
    return; // A live writer still owns it.
  auto Data = E.mapRead(path(Seg.Name));
  if (!Data.ok() || (*Data)->bytes().size() != Seg.ValidBytes)
    return;
  std::vector<IdxEntry> Entries;
  if (!parseSegmentRecords((*Data)->bytes(), Opts.MaxPayloadBytes, Entries))
    return; // Contents disagree with the scan; leave it to the scan path.
  writeAndAdoptIndexLocked(SegIndex, Entries);
}

void SolveStore::sealWithEntriesLocked(int SegIndex,
                                       const std::vector<IdxEntry> &Entries) {
  Segment &Seg = Segments[SegIndex];
  if (!Opts.BuildIndexes || Seg.Sealed || Seg.Name.empty())
    return;
  writeAndAdoptIndexLocked(SegIndex, Entries);
}

void SolveStore::sealedEntriesLocked(int SegIndex,
                                     std::vector<IdxEntry> &Out) const {
  const Segment &Seg = Segments[SegIndex];
  if (!Seg.Sealed || Seg.IdxSlotCount == 0)
    return;
  for (std::uint64_t I = 0; I < Seg.IdxSlotCount; ++I) {
    const char *Slot = Seg.IdxSlots + I * IdxSlotBytes;
    if (getU64(Slot + 16) == IdxEmptySlot)
      continue;
    Out.push_back(IdxEntry{getU64(Slot), getU64(Slot + 8), getU64(Slot + 16),
                           getU32(Slot + 24)});
  }
}

Status SolveStore::ensureWriterLocked() {
  if (WriterSegment >= 0)
    return Status::success();
  std::string Name = "seg-" + E.uniqueToken() + ".aqs";
  auto Handle = E.openAppend(path(Name));
  if (!Handle.ok())
    return Handle.takeStatus();
  bool Acquired = false;
  if (Status S = (*Handle)->tryLockExclusive(Acquired); !S.ok())
    return S;
  if (!Acquired)
    return Status::error(
        format("segment '%s' is unexpectedly locked", Name.c_str()));
  if (Status S = (*Handle)->append(
          std::string_view(SegmentMagic, sizeof(SegmentMagic)));
      !S.ok())
    return S;
  Segment Writer;
  Writer.Name = std::move(Name);
  Writer.ValidBytes = SegmentHeaderBytes;
  Writer.Handle = std::move(*Handle);
  Segments.push_back(std::move(Writer));
  WriterSegment = static_cast<int>(Segments.size()) - 1;
  return Status::success();
}

Status SolveStore::put(const ir::Fingerprint &Key, std::string_view Payload) {
  obs::SpanGuard Span("store.put", "store");
  Span.arg("bytes", static_cast<std::uint64_t>(Payload.size()));
  if (Payload.size() > Opts.MaxPayloadBytes)
    return Status::error(format("payload of %zu bytes exceeds the %u-byte "
                                "record bound",
                                Payload.size(), Opts.MaxPayloadBytes));
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Status S = ensureWriterLocked(); !S.ok())
    return S;
  Segment &Seg = Segments[WriterSegment];
  std::string Rec = encodeRecord(Key, Payload);
  if (Status S = Seg.Handle->append(Rec); !S.ok()) {
    // The segment may now end in a torn record (ENOSPC mid-write); records
    // appended after it would hide behind the scan stop, so retire this
    // segment -- the next put opens a fresh one, and recovery serves this
    // one's longest valid prefix.
    Seg.Handle.reset();
    WriterSegment = -1;
    return S;
  }
  if (Opts.SyncEveryAppend)
    if (Status S = Seg.Handle->sync(); !S.ok())
      return S;
  Index.insert_or_assign(Key, RecordLoc{WriterSegment, Seg.ValidBytes,
                                        static_cast<std::uint32_t>(
                                            Payload.size())});
  Seg.ValidBytes += Rec.size();
  ++Appends;
  AppendedBytes += Rec.size();
  met().Appends.add();
  met().AppendedBytes.add(Rec.size());
  return Status::success();
}

bool SolveStore::probeSealedLocked(const ir::Fingerprint &Key,
                                   ArtifactView &View) {
  for (std::size_t I = Segments.size(); I-- > 0;) {
    Segment &Seg = Segments[I];
    if (!Seg.Sealed || Seg.Name.empty() || Seg.IdxSlotCount == 0)
      continue;
    std::string_view Data = Seg.Data->bytes();
    std::uint64_t H = slotHash(Key.Hi, Key.Lo);
    std::uint64_t Mask = Seg.IdxSlotCount - 1;
    for (std::uint64_t P = 0; P < Seg.IdxSlotCount; ++P) {
      const char *Slot = Seg.IdxSlots + ((H + P) & Mask) * IdxSlotBytes;
      std::uint64_t Offset = getU64(Slot + 16);
      if (Offset == IdxEmptySlot)
        break; // Not in this segment.
      if (getU64(Slot) != Key.Hi || getU64(Slot + 8) != Key.Lo)
        continue;
      std::uint32_t PayloadLen = getU32(Slot + 24);
      std::uint64_t RecordBytes =
          RecordHeaderBytes + PayloadLen + RecordTrailerBytes;
      if (Offset < SegmentHeaderBytes || Offset + RecordBytes > Data.size()) {
        ++CorruptRecords;
        met().Corrupt.add();
        break; // Index lied about geometry; other segments may still hit.
      }
      // Re-verify on every read, exactly like the scan path: a mapped
      // record that rotted since seal time must never be served.
      const char *Rec = Data.data() + Offset;
      std::uint32_t Stored = getU32(Rec + RecordBytes - RecordTrailerBytes);
      std::uint32_t Fresh =
          crc32c(Rec, static_cast<std::size_t>(RecordBytes -
                                               RecordTrailerBytes));
      if (getU32(Rec) != RecordMagic || getU32(Rec + 4) != PayloadLen ||
          getU64(Rec + 8) != Key.Hi || getU64(Rec + 16) != Key.Lo ||
          Stored != Fresh) {
        ++CorruptRecords;
        met().Corrupt.add();
        AQUA_LOG_WARN("store", "sealed record for %s failed verification; "
                               "treating as a miss",
                      Key.str().c_str());
        break;
      }
      View.Payload = std::string_view(Rec + RecordHeaderBytes, PayloadLen);
      View.Keep = Seg.Data;
      ++IndexProbes;
      met().IndexProbes.add();
      return true;
    }
  }
  return false;
}

bool SolveStore::getLocked(const ir::Fingerprint &Key, ArtifactView &View) {
  auto It = Index.find(Key);
  if (It != Index.end()) {
    const RecordLoc &Loc = It->second;
    const Segment &Seg = Segments[Loc.Segment];
    std::uint64_t RecordBytes =
        RecordHeaderBytes + Loc.PayloadLen + RecordTrailerBytes;
    auto Rec = std::make_shared<std::string>();
    if (!E.read(path(Seg.Name), Loc.Offset, RecordBytes, *Rec).ok() ||
        Rec->size() != RecordBytes) {
      // Segment compacted away by another process, or shrunk out from
      // under us: demote to a miss (a refresh will re-find the key in the
      // compacted segment).
      Index.erase(It);
    } else {
      // Re-verify on every read: a record that rotted since the scan must
      // never be served.
      std::uint32_t Stored =
          getU32(Rec->data() + RecordBytes - RecordTrailerBytes);
      std::uint32_t Fresh =
          crc32c(Rec->data(), RecordBytes - RecordTrailerBytes);
      ir::Fingerprint Found;
      Found.Hi = getU64(Rec->data() + 8);
      Found.Lo = getU64(Rec->data() + 16);
      if (getU32(Rec->data()) != RecordMagic || Stored != Fresh ||
          Found != Key) {
        ++CorruptRecords;
        met().Corrupt.add();
        Index.erase(It);
        AQUA_LOG_WARN("store", "record for %s failed verification on read; "
                               "treating as a miss",
                      Key.str().c_str());
      } else {
        View.Payload =
            std::string_view(Rec->data() + RecordHeaderBytes, Loc.PayloadLen);
        View.Keep = std::move(Rec);
        return true;
      }
    }
  }
  return probeSealedLocked(Key, View);
}

bool SolveStore::getView(const ir::Fingerprint &Key, ArtifactView &View) {
  obs::SpanGuard Span("store.get", "store");
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Gets;
  met().Gets.add();
  if (!getLocked(Key, View)) {
    if (!Opts.RefreshOnMiss)
      return false;
    refreshOnMissLocked();
    if (!getLocked(Key, View))
      return false;
  }
  ++Hits;
  met().Hits.add();
  return true;
}

bool SolveStore::get(const ir::Fingerprint &Key, std::string &Payload) {
  ArtifactView View;
  if (!getView(Key, View))
    return false;
  Payload.assign(View.Payload.data(), View.Payload.size());
  return true;
}

bool SolveStore::contains(const ir::Fingerprint &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ArtifactView Scratch;
  if (Index.count(Key) || probeSealedLocked(Key, Scratch))
    return true;
  if (!Opts.RefreshOnMiss)
    return false;
  refreshOnMissLocked();
  return Index.count(Key) != 0 || probeSealedLocked(Key, Scratch);
}

std::uint64_t SolveStore::refresh() {
  obs::SpanGuard Span("store.refresh", "store");
  std::lock_guard<std::mutex> Lock(Mutex);
  return refreshLocked();
}

Status SolveStore::compact() {
  std::lock_guard<std::mutex> Lock(Mutex);
  // One compactor per store directory, across processes.
  auto LockFile = E.openAppend(path("LOCK"));
  if (!LockFile.ok())
    return LockFile.takeStatus();
  bool HaveLock = false;
  if (Status S = (*LockFile)->tryLockExclusive(HaveLock); !S.ok())
    return S;
  if (!HaveLock)
    return Status::success(); // Another process is compacting; fine.

  refreshLocked();
  // Rotate our own writer so its segment becomes quiescent and eligible.
  if (WriterSegment >= 0) {
    Segments[WriterSegment].Handle.reset();
    WriterSegment = -1;
  }

  // A segment is compactable iff no live writer holds its lock.
  std::vector<int> Victims;
  std::vector<std::unique_ptr<WritableFile>> VictimLocks;
  for (std::size_t I = 0; I < Segments.size(); ++I) {
    Segment &Seg = Segments[I];
    if (Seg.Name.empty() || !E.exists(path(Seg.Name)))
      continue;
    auto Handle = E.openAppend(path(Seg.Name));
    if (!Handle.ok())
      continue;
    bool Acquired = false;
    if (!(*Handle)->tryLockExclusive(Acquired).ok() || !Acquired)
      continue; // A live writer owns it; leave it alone.
    Victims.push_back(static_cast<int>(I));
    VictimLocks.push_back(std::move(*Handle));
  }
  if (Victims.size() < 1)
    return Status::success();

  // Write every surviving record of the victim segments into a temp file,
  // then atomically rename it into place. A crash before the rename leaves
  // only a stale temp (swept on open); a crash after it leaves duplicate
  // keys across old and new segments (benign: identical payloads).
  std::string Token = E.uniqueToken();
  std::string TempName = "tmp-" + Token;
  auto Temp = E.openAppend(path(TempName));
  if (!Temp.ok())
    return Temp.takeStatus();
  bool TempLocked = false;
  (void)(*Temp)->tryLockExclusive(TempLocked);
  auto Abort = [&](Status S) {
    (void)E.removeFile(path(TempName));
    return S;
  };
  if (Status S = (*Temp)->append(
          std::string_view(SegmentMagic, sizeof(SegmentMagic)));
      !S.ok())
    return Abort(S);

  // Collect the surviving records of every victim: from the in-memory
  // Index for scan-served segments, from the mapped slot table for sealed
  // ones. Duplicate keys across victims collapse arbitrarily -- the
  // pipeline is deterministic, so duplicate payloads are identical.
  std::unordered_map<ir::Fingerprint, RecordLoc, KeyHash> Surviving;
  for (const auto &[Key, Loc] : Index) {
    for (int V : Victims)
      if (Loc.Segment == V) {
        Surviving.insert_or_assign(Key, Loc);
        break;
      }
  }
  std::vector<IdxEntry> VictimEntries;
  for (int V : Victims) {
    VictimEntries.clear();
    sealedEntriesLocked(V, VictimEntries);
    for (const IdxEntry &En : VictimEntries) {
      ir::Fingerprint Key;
      Key.Hi = En.Hi;
      Key.Lo = En.Lo;
      Surviving.insert_or_assign(Key, RecordLoc{V, En.Offset, En.PayloadLen});
    }
  }

  std::vector<std::pair<ir::Fingerprint, RecordLoc>> Moved;
  std::vector<IdxEntry> NewEntries;
  std::uint64_t NewOffset = SegmentHeaderBytes;
  for (const auto &[Key, Loc] : Surviving) {
    std::uint64_t RecordBytes =
        RecordHeaderBytes + Loc.PayloadLen + RecordTrailerBytes;
    const Segment &From = Segments[Loc.Segment];
    std::string Rec;
    std::string_view RecBytes;
    if (From.Sealed && From.Data &&
        Loc.Offset + RecordBytes <= From.Data->bytes().size()) {
      RecBytes = From.Data->bytes().substr(Loc.Offset, RecordBytes);
    } else {
      if (!E.read(path(From.Name), Loc.Offset, RecordBytes, Rec).ok() ||
          Rec.size() != RecordBytes)
        return Abort(Status::error("compaction read failed"));
      RecBytes = Rec;
    }
    if (Status S = (*Temp)->append(RecBytes); !S.ok())
      return Abort(S);
    Moved.emplace_back(Key, RecordLoc{-1, NewOffset, Loc.PayloadLen});
    NewEntries.push_back(IdxEntry{Key.Hi, Key.Lo, NewOffset, Loc.PayloadLen});
    NewOffset += RecordBytes;
  }
  if (Status S = (*Temp)->sync(); !S.ok())
    return Abort(S);
  std::string NewName = "seg-" + Token + ".aqs";
  if (Status S = E.rename(path(TempName), path(NewName)); !S.ok())
    return Abort(S);
  Temp->reset(); // Release the temp lock before anyone scans the segment.

  Segment Compacted;
  Compacted.Name = NewName;
  Compacted.ValidBytes = NewOffset;
  Segments.push_back(std::move(Compacted));
  int NewSeg = static_cast<int>(Segments.size()) - 1;
  for (auto &[Key, Loc] : Moved) {
    Loc.Segment = NewSeg;
    Index.insert_or_assign(Key, Loc);
  }
  // The compaction output is quiescent by construction (no writer ever
  // owned it), so seal it immediately -- we already know its records.
  sealWithEntriesLocked(NewSeg, NewEntries);
  for (std::size_t I = 0; I < Victims.size(); ++I) {
    Segment &Victim = Segments[Victims[I]];
    (void)E.removeFile(path(Victim.Name));
    (void)E.removeFile(path(idxNameFor(Victim.Name)));
    Victim.Name.clear();
    Victim.Sealed = false;
    Victim.Data.reset();
    Victim.IdxMap.reset();
    Victim.IdxSlots = nullptr;
    Victim.IdxSlotCount = 0;
    ++SegmentsCompacted;
  }
  ++Compactions;
  met().Compactions.add();
  return Status::success();
}

std::vector<ir::Fingerprint> SolveStore::keys() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unordered_set<ir::Fingerprint, KeyHash> Seen;
  Seen.reserve(Index.size());
  for (const auto &[Key, Loc] : Index)
    Seen.insert(Key);
  std::vector<IdxEntry> Entries;
  for (std::size_t I = 0; I < Segments.size(); ++I) {
    if (!Segments[I].Sealed || Segments[I].Name.empty())
      continue;
    Entries.clear();
    sealedEntriesLocked(static_cast<int>(I), Entries);
    for (const IdxEntry &En : Entries) {
      ir::Fingerprint Key;
      Key.Hi = En.Hi;
      Key.Lo = En.Lo;
      Seen.insert(Key);
    }
  }
  return std::vector<ir::Fingerprint>(Seen.begin(), Seen.end());
}

StoreStats SolveStore::stats() const {
  StoreStats S;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    S.Appends = Appends;
    S.AppendedBytes = AppendedBytes;
    S.Gets = Gets;
    S.Hits = Hits;
    S.CorruptRecords = CorruptRecords;
    S.TornTails = TornTails;
    S.Refreshes = Refreshes;
    S.RefreshSkips = RefreshSkips;
    S.Compactions = Compactions;
    S.SegmentsCompacted = SegmentsCompacted;
    S.IndexProbes = IndexProbes;
    S.IndexFallbackScans = IndexFallbackScans;
    S.IndexBuilds = IndexBuilds;
    S.IndexLoads = IndexLoads;
    for (const Segment &Seg : Segments) {
      if (Seg.Name.empty())
        continue;
      ++S.Segments;
      if (Seg.Sealed)
        ++S.SealedSegments;
    }
  }
  S.Keys = keys().size();
  return S;
}
