//===- SolveStore.cpp - Persistent content-addressed solve store ----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/store/SolveStore.h"

#include "aqua/obs/Log.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"
#include "aqua/support/StringUtils.h"

#include <array>
#include <cstring>

using namespace aqua;
using namespace aqua::store;

namespace {

/// 8-byte segment-file magic (format version in the last two characters).
constexpr char SegmentMagic[8] = {'A', 'Q', 'S', 'T', 'S', 'G', '0', '1'};
/// Per-record magic ("ARC1", little-endian).
constexpr std::uint32_t RecordMagic = 0x31435241u;
constexpr std::uint64_t SegmentHeaderBytes = 8;
constexpr std::uint64_t RecordHeaderBytes = 24;
constexpr std::uint64_t RecordTrailerBytes = 4;

/// CRC-32C (Castagnoli), reflected polynomial 0x82F63B78; table-driven.
std::uint32_t crc32c(const void *Data, std::size_t Len,
                     std::uint32_t Seed = 0) {
  static const auto Table = [] {
    std::array<std::uint32_t, 256> T{};
    for (std::uint32_t I = 0; I < 256; ++I) {
      std::uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0x82F63B78u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  std::uint32_t Crc = ~Seed;
  const auto *P = static_cast<const unsigned char *>(Data);
  for (std::size_t I = 0; I < Len; ++I)
    Crc = Table[(Crc ^ P[I]) & 0xFF] ^ (Crc >> 8);
  return ~Crc;
}

void putU32(std::string &Out, std::uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, std::uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

std::uint32_t getU32(const char *P) {
  std::uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | static_cast<unsigned char>(P[I]);
  return V;
}

std::uint64_t getU64(const char *P) {
  std::uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | static_cast<unsigned char>(P[I]);
  return V;
}

/// Serializes one record (header + payload + crc trailer).
std::string encodeRecord(const ir::Fingerprint &Key, std::string_view Payload) {
  std::string Rec;
  Rec.reserve(RecordHeaderBytes + Payload.size() + RecordTrailerBytes);
  putU32(Rec, RecordMagic);
  putU32(Rec, static_cast<std::uint32_t>(Payload.size()));
  putU64(Rec, Key.Hi);
  putU64(Rec, Key.Lo);
  Rec.append(Payload.data(), Payload.size());
  putU32(Rec, crc32c(Rec.data(), Rec.size()));
  return Rec;
}

bool isSegmentName(const std::string &Name) {
  return Name.size() > 8 && Name.compare(0, 4, "seg-") == 0 &&
         Name.compare(Name.size() - 4, 4, ".aqs") == 0;
}

bool isTempName(const std::string &Name) {
  return Name.compare(0, 4, "tmp-") == 0;
}

/// Global-registry instruments, resolved once.
struct StoreMetrics {
  obs::Counter &Appends = obs::metrics().counter("store.appends");
  obs::Counter &AppendedBytes = obs::metrics().counter("store.appended_bytes");
  obs::Counter &Gets = obs::metrics().counter("store.gets");
  obs::Counter &Hits = obs::metrics().counter("store.hits");
  obs::Counter &Corrupt = obs::metrics().counter("store.corrupt_records");
  obs::Counter &TornTails = obs::metrics().counter("store.torn_tails");
  obs::Counter &Refreshes = obs::metrics().counter("store.refreshes");
  obs::Counter &Compactions = obs::metrics().counter("store.compactions");
};

StoreMetrics &met() {
  static StoreMetrics M;
  return M;
}

} // namespace

SolveStore::SolveStore(std::string Dir, const StoreOptions &Opts, Env &E)
    : Dir(std::move(Dir)), Opts(Opts), E(E) {}

SolveStore::~SolveStore() = default;

Expected<std::unique_ptr<SolveStore>>
SolveStore::open(const std::string &Dir, const StoreOptions &Opts, Env &E) {
  if (Status S = E.createDir(Dir); !S.ok())
    return S;
  std::unique_ptr<SolveStore> Store(new SolveStore(Dir, Opts, E));
  if (Status S = Store->openDirLocked(); !S.ok())
    return S;
  return Store;
}

Status SolveStore::openDirLocked() {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto Names = E.listDir(Dir);
  if (!Names.ok())
    return Names.takeStatus();
  // Sweep compaction temps left behind by a crashed compactor: a live
  // compactor holds the exclusive lock on its temp, so any temp we can
  // lock is stale.
  for (const std::string &Name : *Names) {
    if (!isTempName(Name))
      continue;
    auto Handle = E.openAppend(path(Name));
    if (!Handle.ok())
      continue;
    bool Acquired = false;
    if ((*Handle)->tryLockExclusive(Acquired).ok() && Acquired) {
      AQUA_LOG_INFO("store", "removing stale compaction temp '%s'",
                    Name.c_str());
      (void)E.removeFile(path(Name));
    }
  }
  refreshLocked();
  return Status::success();
}

std::uint64_t SolveStore::scanSegmentLocked(int SegIndex) {
  Segment &Seg = Segments[SegIndex];
  if (Seg.Frozen || Seg.Name.empty())
    return 0;
  const std::string Path = path(Seg.Name);
  auto Size = E.fileSize(Path);
  if (!Size.ok())
    return 0; // Deleted under us (compaction elsewhere); tombstoned later.
  std::uint64_t End = *Size;

  // Consume the segment header first.
  if (Seg.ValidBytes == 0) {
    if (End < SegmentHeaderBytes)
      return 0; // Still being created; retry on a later refresh.
    std::string Head;
    if (!E.read(Path, 0, SegmentHeaderBytes, Head).ok() ||
        Head.size() != SegmentHeaderBytes ||
        std::memcmp(Head.data(), SegmentMagic, sizeof(SegmentMagic)) != 0) {
      AQUA_LOG_WARN("store", "segment '%s' has a bad header; ignoring it",
                    Seg.Name.c_str());
      Seg.Frozen = true;
      ++CorruptRecords;
      met().Corrupt.add();
      return 0;
    }
    Seg.ValidBytes = SegmentHeaderBytes;
  }

  std::uint64_t Indexed = 0;
  while (Seg.ValidBytes < End) {
    std::string Head;
    if (!E.read(Path, Seg.ValidBytes, RecordHeaderBytes, Head).ok())
      break;
    if (Head.size() < RecordHeaderBytes) {
      // Incomplete header at the tail: either a torn append from a crash
      // or a live writer mid-record. Stop here; the watermark stays so a
      // later refresh retries.
      ++TornTails;
      met().TornTails.add();
      break;
    }
    std::uint32_t Magic = getU32(Head.data());
    std::uint32_t PayloadLen = getU32(Head.data() + 4);
    if (Magic != RecordMagic || PayloadLen > Opts.MaxPayloadBytes) {
      // Bytes exist but are not a record: real corruption. Freeze the
      // segment at the longest valid prefix -- nothing past this point can
      // be trusted to be record-aligned.
      Seg.Frozen = true;
      ++CorruptRecords;
      met().Corrupt.add();
      AQUA_LOG_WARN("store",
                    "segment '%s' corrupt at offset %llu; serving the "
                    "%llu-byte valid prefix",
                    Seg.Name.c_str(),
                    static_cast<unsigned long long>(Seg.ValidBytes),
                    static_cast<unsigned long long>(Seg.ValidBytes));
      break;
    }
    std::uint64_t RecordBytes =
        RecordHeaderBytes + PayloadLen + RecordTrailerBytes;
    if (Seg.ValidBytes + RecordBytes > End) {
      ++TornTails;
      met().TornTails.add();
      break;
    }
    std::string Rest;
    if (!E.read(Path, Seg.ValidBytes + RecordHeaderBytes,
                PayloadLen + RecordTrailerBytes, Rest)
             .ok() ||
        Rest.size() < PayloadLen + RecordTrailerBytes) {
      ++TornTails;
      met().TornTails.add();
      break;
    }
    std::uint32_t Stored = getU32(Rest.data() + PayloadLen);
    std::uint32_t Fresh = crc32c(Rest.data(), PayloadLen,
                                 crc32c(Head.data(), RecordHeaderBytes));
    if (Stored != Fresh) {
      Seg.Frozen = true;
      ++CorruptRecords;
      met().Corrupt.add();
      AQUA_LOG_WARN("store",
                    "segment '%s': checksum mismatch at offset %llu; "
                    "recovering to the longest valid prefix",
                    Seg.Name.c_str(),
                    static_cast<unsigned long long>(Seg.ValidBytes));
      break;
    }
    ir::Fingerprint Key;
    Key.Hi = getU64(Head.data() + 8);
    Key.Lo = getU64(Head.data() + 16);
    Index.insert_or_assign(Key,
                           RecordLoc{SegIndex, Seg.ValidBytes, PayloadLen});
    Seg.ValidBytes += RecordBytes;
    ++Indexed;
  }
  return Indexed;
}

std::uint64_t SolveStore::refreshLocked() {
  ++Refreshes;
  met().Refreshes.add();
  auto Names = E.listDir(Dir);
  if (!Names.ok())
    return 0;
  std::uint64_t Indexed = 0;
  for (const std::string &Name : *Names) {
    if (!isSegmentName(Name))
      continue;
    int SegIndex = -1;
    for (std::size_t I = 0; I < Segments.size(); ++I)
      if (Segments[I].Name == Name)
        SegIndex = static_cast<int>(I);
    if (SegIndex < 0) {
      Segments.push_back(Segment{Name, 0, false, nullptr});
      SegIndex = static_cast<int>(Segments.size()) - 1;
    } else if (SegIndex == WriterSegment) {
      continue; // Our own appends are indexed as they happen.
    }
    Indexed += scanSegmentLocked(SegIndex);
  }
  // Tombstone segments whose file vanished (compacted by another process);
  // their index entries were superseded when the compacted segment was
  // scanned above, or will demote to misses on read.
  for (Segment &Seg : Segments)
    if (!Seg.Name.empty() && !Seg.Handle && !E.exists(path(Seg.Name)))
      Seg.Name.clear();
  return Indexed;
}

Status SolveStore::ensureWriterLocked() {
  if (WriterSegment >= 0)
    return Status::success();
  std::string Name = "seg-" + E.uniqueToken() + ".aqs";
  auto Handle = E.openAppend(path(Name));
  if (!Handle.ok())
    return Handle.takeStatus();
  bool Acquired = false;
  if (Status S = (*Handle)->tryLockExclusive(Acquired); !S.ok())
    return S;
  if (!Acquired)
    return Status::error(
        format("segment '%s' is unexpectedly locked", Name.c_str()));
  if (Status S = (*Handle)->append(
          std::string_view(SegmentMagic, sizeof(SegmentMagic)));
      !S.ok())
    return S;
  Segments.push_back(
      Segment{std::move(Name), SegmentHeaderBytes, false, std::move(*Handle)});
  WriterSegment = static_cast<int>(Segments.size()) - 1;
  return Status::success();
}

Status SolveStore::put(const ir::Fingerprint &Key, std::string_view Payload) {
  obs::SpanGuard Span("store.put", "store");
  Span.arg("bytes", static_cast<std::uint64_t>(Payload.size()));
  if (Payload.size() > Opts.MaxPayloadBytes)
    return Status::error(format("payload of %zu bytes exceeds the %u-byte "
                                "record bound",
                                Payload.size(), Opts.MaxPayloadBytes));
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Status S = ensureWriterLocked(); !S.ok())
    return S;
  Segment &Seg = Segments[WriterSegment];
  std::string Rec = encodeRecord(Key, Payload);
  if (Status S = Seg.Handle->append(Rec); !S.ok()) {
    // The segment may now end in a torn record (ENOSPC mid-write); records
    // appended after it would hide behind the scan stop, so retire this
    // segment -- the next put opens a fresh one, and recovery serves this
    // one's longest valid prefix.
    Seg.Handle.reset();
    WriterSegment = -1;
    return S;
  }
  if (Opts.SyncEveryAppend)
    if (Status S = Seg.Handle->sync(); !S.ok())
      return S;
  Index.insert_or_assign(Key, RecordLoc{WriterSegment, Seg.ValidBytes,
                                        static_cast<std::uint32_t>(
                                            Payload.size())});
  Seg.ValidBytes += Rec.size();
  ++Appends;
  AppendedBytes += Rec.size();
  met().Appends.add();
  met().AppendedBytes.add(Rec.size());
  return Status::success();
}

bool SolveStore::get(const ir::Fingerprint &Key, std::string &Payload) {
  obs::SpanGuard Span("store.get", "store");
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Gets;
  met().Gets.add();
  auto It = Index.find(Key);
  if (It == Index.end() && Opts.RefreshOnMiss) {
    refreshLocked();
    It = Index.find(Key);
  }
  if (It == Index.end())
    return false;
  const RecordLoc &Loc = It->second;
  const Segment &Seg = Segments[Loc.Segment];
  std::uint64_t RecordBytes =
      RecordHeaderBytes + Loc.PayloadLen + RecordTrailerBytes;
  std::string Rec;
  if (!E.read(path(Seg.Name), Loc.Offset, RecordBytes, Rec).ok() ||
      Rec.size() != RecordBytes) {
    // Segment compacted away by another process, or shrunk out from under
    // us: demote to a miss (a refresh will re-find the key in the
    // compacted segment).
    Index.erase(It);
    return false;
  }
  // Re-verify on every read: a record that rotted since the scan must
  // never be served.
  std::uint32_t Stored = getU32(Rec.data() + RecordBytes - RecordTrailerBytes);
  std::uint32_t Fresh =
      crc32c(Rec.data(), RecordBytes - RecordTrailerBytes);
  ir::Fingerprint Found;
  Found.Hi = getU64(Rec.data() + 8);
  Found.Lo = getU64(Rec.data() + 16);
  if (getU32(Rec.data()) != RecordMagic || Stored != Fresh || Found != Key) {
    ++CorruptRecords;
    met().Corrupt.add();
    Index.erase(It);
    AQUA_LOG_WARN("store", "record for %s failed verification on read; "
                           "treating as a miss",
                  Key.str().c_str());
    return false;
  }
  Payload.assign(Rec.data() + RecordHeaderBytes, Loc.PayloadLen);
  ++Hits;
  met().Hits.add();
  return true;
}

bool SolveStore::contains(const ir::Fingerprint &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Index.count(Key))
    return true;
  if (!Opts.RefreshOnMiss)
    return false;
  refreshLocked();
  return Index.count(Key) != 0;
}

std::uint64_t SolveStore::refresh() {
  obs::SpanGuard Span("store.refresh", "store");
  std::lock_guard<std::mutex> Lock(Mutex);
  return refreshLocked();
}

Status SolveStore::compact() {
  std::lock_guard<std::mutex> Lock(Mutex);
  // One compactor per store directory, across processes.
  auto LockFile = E.openAppend(path("LOCK"));
  if (!LockFile.ok())
    return LockFile.takeStatus();
  bool HaveLock = false;
  if (Status S = (*LockFile)->tryLockExclusive(HaveLock); !S.ok())
    return S;
  if (!HaveLock)
    return Status::success(); // Another process is compacting; fine.

  refreshLocked();
  // Rotate our own writer so its segment becomes quiescent and eligible.
  if (WriterSegment >= 0) {
    Segments[WriterSegment].Handle.reset();
    WriterSegment = -1;
  }

  // A segment is compactable iff no live writer holds its lock.
  std::vector<int> Victims;
  std::vector<std::unique_ptr<WritableFile>> VictimLocks;
  for (std::size_t I = 0; I < Segments.size(); ++I) {
    Segment &Seg = Segments[I];
    if (Seg.Name.empty() || !E.exists(path(Seg.Name)))
      continue;
    auto Handle = E.openAppend(path(Seg.Name));
    if (!Handle.ok())
      continue;
    bool Acquired = false;
    if (!(*Handle)->tryLockExclusive(Acquired).ok() || !Acquired)
      continue; // A live writer owns it; leave it alone.
    Victims.push_back(static_cast<int>(I));
    VictimLocks.push_back(std::move(*Handle));
  }
  if (Victims.size() < 1)
    return Status::success();

  // Write every surviving record of the victim segments into a temp file,
  // then atomically rename it into place. A crash before the rename leaves
  // only a stale temp (swept on open); a crash after it leaves duplicate
  // keys across old and new segments (benign: identical payloads).
  std::string Token = E.uniqueToken();
  std::string TempName = "tmp-" + Token;
  auto Temp = E.openAppend(path(TempName));
  if (!Temp.ok())
    return Temp.takeStatus();
  bool TempLocked = false;
  (void)(*Temp)->tryLockExclusive(TempLocked);
  auto Abort = [&](Status S) {
    (void)E.removeFile(path(TempName));
    return S;
  };
  if (Status S = (*Temp)->append(
          std::string_view(SegmentMagic, sizeof(SegmentMagic)));
      !S.ok())
    return Abort(S);

  std::vector<std::pair<ir::Fingerprint, RecordLoc>> Moved;
  std::uint64_t NewOffset = SegmentHeaderBytes;
  for (const auto &[Key, Loc] : Index) {
    bool InVictim = false;
    for (int V : Victims)
      InVictim |= Loc.Segment == V;
    if (!InVictim)
      continue;
    std::uint64_t RecordBytes =
        RecordHeaderBytes + Loc.PayloadLen + RecordTrailerBytes;
    std::string Rec;
    if (!E.read(path(Segments[Loc.Segment].Name), Loc.Offset, RecordBytes, Rec)
             .ok() ||
        Rec.size() != RecordBytes)
      return Abort(Status::error("compaction read failed"));
    if (Status S = (*Temp)->append(Rec); !S.ok())
      return Abort(S);
    Moved.emplace_back(Key, RecordLoc{-1, NewOffset, Loc.PayloadLen});
    NewOffset += RecordBytes;
  }
  if (Status S = (*Temp)->sync(); !S.ok())
    return Abort(S);
  std::string NewName = "seg-" + Token + ".aqs";
  if (Status S = E.rename(path(TempName), path(NewName)); !S.ok())
    return Abort(S);
  Temp->reset(); // Release the temp lock before anyone scans the segment.

  Segments.push_back(Segment{NewName, NewOffset, false, nullptr});
  int NewSeg = static_cast<int>(Segments.size()) - 1;
  for (auto &[Key, Loc] : Moved) {
    Loc.Segment = NewSeg;
    Index.insert_or_assign(Key, Loc);
  }
  for (std::size_t I = 0; I < Victims.size(); ++I) {
    (void)E.removeFile(path(Segments[Victims[I]].Name));
    Segments[Victims[I]].Name.clear();
    ++SegmentsCompacted;
  }
  ++Compactions;
  met().Compactions.add();
  return Status::success();
}

std::vector<ir::Fingerprint> SolveStore::keys() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<ir::Fingerprint> Out;
  Out.reserve(Index.size());
  for (const auto &[Key, Loc] : Index)
    Out.push_back(Key);
  return Out;
}

StoreStats SolveStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  StoreStats S;
  S.Appends = Appends;
  S.AppendedBytes = AppendedBytes;
  S.Gets = Gets;
  S.Hits = Hits;
  S.CorruptRecords = CorruptRecords;
  S.TornTails = TornTails;
  S.Refreshes = Refreshes;
  S.Compactions = Compactions;
  S.SegmentsCompacted = SegmentsCompacted;
  S.Keys = Index.size();
  for (const Segment &Seg : Segments)
    if (!Seg.Name.empty())
      ++S.Segments;
  return S;
}
