//===- PaperAssays.cpp - The paper's benchmark assays --------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/PaperAssays.h"

#include "aqua/support/StringUtils.h"

using namespace aqua;
using namespace aqua::assays;
using namespace aqua::ir;

AssayGraph aqua::assays::buildFigure2Example(Figure2Nodes *Nodes) {
  AssayGraph G;
  NodeId A = G.addInput("A");
  NodeId B = G.addInput("B");
  NodeId C = G.addInput("C");
  NodeId K = G.addMix("K", {{A, 1}, {B, 4}});
  NodeId L = G.addMix("L", {{B, 2}, {C, 1}});
  NodeId M = G.addMix("M", {{K, 2}, {L, 1}});
  NodeId N = G.addMix("N", {{L, 2}, {C, 3}});
  if (Nodes)
    *Nodes = Figure2Nodes{A, B, C, K, L, M, N};
  return G;
}

AssayGraph aqua::assays::buildGlucoseAssay() {
  AssayGraph G;
  NodeId Glucose = G.addInput("Glucose");
  NodeId Reagent = G.addInput("Reagent");
  NodeId Sample = G.addInput("Sample");

  const char *Names[] = {"a", "b", "c", "d"};
  std::int64_t ReagentParts[] = {1, 2, 4, 8};
  for (int I = 0; I < 4; ++I) {
    NodeId Mix = G.addMix(Names[I], {{Glucose, 1}, {Reagent, ReagentParts[I]}},
                          /*Seconds=*/10.0);
    NodeId Sense = G.addUnary(NodeKind::Sense,
                              format("sense_Result_%d", I + 1), Mix);
    G.node(Sense).Params.Flavor = "OD";
  }
  NodeId E = G.addMix("e", {{Sample, 1}, {Reagent, 1}}, /*Seconds=*/10.0);
  NodeId Sense = G.addUnary(NodeKind::Sense, "sense_Result_5", E);
  G.node(Sense).Params.Flavor = "OD";
  return G;
}

AssayGraph aqua::assays::buildGlycomicsAssay() {
  AssayGraph G;
  NodeId Buf1a = G.addInput("buffer1a");
  NodeId Sample = G.addInput("sample");
  NodeId Buf2 = G.addInput("buffer2");
  NodeId Buf3a = G.addInput("buffer3a");
  NodeId Buf4 = G.addInput("buffer4");
  NodeId Buf5 = G.addInput("buffer5");
  NodeId NaOH = G.addInput("NaOH");

  // MIX buffer1a AND sample FOR 30.
  NodeId Mix1 = G.addMix("mix1", {{Buf1a, 1}, {Sample, 1}}, 30.0);
  // SEPARATE it MATRIX lectin USING buffer1b FOR 30 INTO effluent AND waste.
  NodeId Eff1 = G.addUnary(NodeKind::Separate, "effluent", Mix1);
  G.node(Eff1).UnknownVolume = true;
  G.node(Eff1).Params.Flavor = "AF";
  G.node(Eff1).Params.Seconds = 30.0;
  G.node(Eff1).Params.Matrix = "lectin";
  G.node(Eff1).Params.Pusher = "buffer1b";

  // MIX effluent AND buffer2 FOR 30; INCUBATE it AT 37 FOR 30.
  NodeId Mix2 = G.addMix("mix2", {{Eff1, 1}, {Buf2, 1}}, 30.0);
  NodeId Incub = G.addUnary(NodeKind::Incubate, "digest", Mix2);
  G.node(Incub).Params.TempC = 37.0;
  G.node(Incub).Params.Seconds = 30.0;

  // MIX it AND buffer3a IN RATIOS 1:10 FOR 30; LCSEPARATE ... FOR 30.
  NodeId Mix3 = G.addMix("mix3", {{Incub, 1}, {Buf3a, 10}}, 30.0);
  NodeId Eff2 = G.addUnary(NodeKind::Separate, "effluent2", Mix3);
  G.node(Eff2).UnknownVolume = true;
  G.node(Eff2).Params.Flavor = "LC";
  G.node(Eff2).Params.Seconds = 30.0;
  G.node(Eff2).Params.Matrix = "C_18";
  G.node(Eff2).Params.Pusher = "buffer3b";

  // MIX effluent2 AND buffer4 AND NaOH IN RATIOS 1:100:1 FOR 30;
  // MIX it AND buffer3a FOR 30; LCSEPARATE ... FOR 2400.
  NodeId Mix4 =
      G.addMix("mix4", {{Eff2, 1}, {Buf4, 100}, {NaOH, 1}}, 30.0);
  NodeId Mix5 = G.addMix("mix5", {{Mix4, 1}, {Buf3a, 1}}, 30.0);
  NodeId Eff3 = G.addUnary(NodeKind::Separate, "effluent3", Mix5);
  G.node(Eff3).UnknownVolume = true;
  G.node(Eff3).Params.Flavor = "LC";
  G.node(Eff3).Params.Seconds = 2400.0;
  G.node(Eff3).Params.Matrix = "C_18";
  G.node(Eff3).Params.Pusher = "buffer3b";

  // MIX effluent3 AND buffer5 FOR 30.
  G.addMix("mix6", {{Eff3, 1}, {Buf5, 1}}, 30.0);
  return G;
}

AssayGraph aqua::assays::buildEnzymeAssay(int Dilutions, int MaxRatioExp) {
  AssayGraph G;
  NodeId Inhibitor = G.addInput("inhibitor");
  NodeId Enzyme = G.addInput("enzyme");
  NodeId Substrate = G.addInput("substrate");
  NodeId Diluent = G.addInput("diluent");

  // Serial dilutions: iteration j mixes reagent:diluent 1:(10^(j-1) - 1),
  // with the first iteration degenerating to 1:1 as in Figure 11a.
  auto DiluentParts = [MaxRatioExp](int J) {
    int Exp = J - 1;
    if (Exp > MaxRatioExp)
      Exp = MaxRatioExp;
    std::int64_t Parts = 1;
    for (int I = 0; I < Exp; ++I)
      Parts *= 10;
    return Parts > 1 ? Parts - 1 : 1;
  };

  struct Reagent {
    NodeId Source;
    const char *Name;
  };
  Reagent Reagents[] = {{Inhibitor, "inh"}, {Enzyme, "enz"},
                        {Substrate, "sub"}};
  std::vector<std::vector<NodeId>> Dil(3);
  for (int R = 0; R < 3; ++R)
    for (int J = 1; J <= Dilutions; ++J)
      Dil[R].push_back(G.addMix(format("%s_dil%d", Reagents[R].Name, J),
                                {{Reagents[R].Source, 1},
                                 {Diluent, DiluentParts(J)}},
                                /*Seconds=*/30.0));

  // All combinations: mix 1:1:1, incubate, sense.
  for (int I = 0; I < Dilutions; ++I)
    for (int J = 0; J < Dilutions; ++J)
      for (int K = 0; K < Dilutions; ++K) {
        NodeId Mix = G.addMix(format("combo_%d_%d_%d", I + 1, J + 1, K + 1),
                              {{Dil[0][I], 1}, {Dil[1][J], 1}, {Dil[2][K], 1}},
                              /*Seconds=*/60.0);
        NodeId Inc = G.addUnary(NodeKind::Incubate,
                                format("inc_%d_%d_%d", I + 1, J + 1, K + 1),
                                Mix);
        G.node(Inc).Params.TempC = 37.0;
        G.node(Inc).Params.Seconds = 300.0;
        NodeId Sense = G.addUnary(
            NodeKind::Sense,
            format("sense_RESULT_%d_%d_%d", I + 1, J + 1, K + 1), Inc);
        G.node(Sense).Params.Flavor = "OD";
      }
  return G;
}

const char *aqua::assays::glucoseSource() {
  return R"(ASSAY glucose START
fluid Glucose, Reagent, Sample;
fluid a, b, c, d, e;
VAR Result[5];
a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[1];
b = MIX Glucose AND Reagent IN RATIOS 1 : 2 FOR 10;
SENSE OPTICAL it INTO Result[2];
c = MIX Glucose AND Reagent IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[3];
d = MIX Glucose AND Reagent IN RATIOS 1 : 8 FOR 10;
SENSE OPTICAL it INTO Result[4];
e = MIX Sample AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[5];
END
)";
}

const char *aqua::assays::glycomicsSource() {
  return R"(ASSAY glycomics START
fluid buffer1a, buffer1b, buffer2; --buffer2 has PNGanF
fluid buffer3a, buffer3b, buffer4, buffer5;
fluid sample, lectin, C_18, NaOH;
fluid effluent, effluent2, effluent3, waste, waste2, waste3;
MIX buffer1a AND sample FOR 30;
SEPARATE it MATRIX lectin USING buffer1b FOR 30 INTO effluent AND waste;
MIX effluent AND buffer2 FOR 30;
INCUBATE it AT 37 FOR 30;
MIX it AND buffer3a IN RATIOS 1:10 FOR 30;
LCSEPARATE it MATRIX C_18 USING buffer3b FOR 30 INTO effluent2 AND waste2;
MIX effluent2 AND buffer4 AND NaOH IN RATIOS 1:100:1 FOR 30;
MIX it AND buffer3a FOR 30;
LCSEPARATE it MATRIX C_18 USING buffer3b FOR 2400 INTO effluent3 AND waste3;
MIX effluent3 AND buffer5 FOR 30
END
)";
}

const char *aqua::assays::enzymeSource() {
  return R"(ASSAY enzyme_test START
VAR inhibitor_diluent, enzyme_diluent, substrate_diluent;
VAR i, j, k, temp, RESULT[4][4][4];
fluid Diluted_Inhibitor[4], Diluted_Enzyme[4];
fluid Diluted_Substrate[4];
fluid inhibitor, enzyme, diluent, substrate;
inhibitor_diluent = 1;
enzyme_diluent = 1;
substrate_diluent = 1;
temp = 1;
FOR i FROM 1 TO 4 START --inhibitor
  Diluted_Inhibitor[i] = MIX inhibitor AND diluent
      IN RATIOS 1:inhibitor_diluent FOR 30;
  temp = temp * 10;
  inhibitor_diluent = temp - 1;
ENDFOR
temp = 1;
FOR j FROM 1 TO 4 START --enzyme
  Diluted_Enzyme[j] = MIX enzyme AND diluent
      IN RATIOS 1:enzyme_diluent FOR 30;
  temp = temp * 10;
  enzyme_diluent = temp - 1;
ENDFOR
temp = 1;
FOR k FROM 1 TO 4 START --substrate
  Diluted_Substrate[k] = MIX substrate AND diluent
      IN RATIOS 1:substrate_diluent FOR 30;
  temp = temp * 10;
  substrate_diluent = temp - 1;
ENDFOR
FOR i FROM 1 TO 4 START --inhibitor
  FOR j FROM 1 TO 4 START --enzyme
    FOR k FROM 1 TO 4 START --substrate
      MIX Diluted_Inhibitor[i] AND Diluted_Enzyme[j]
          AND Diluted_Substrate[k] FOR 60;
      INCUBATE it AT 37 FOR 300;
      SENSE OPTICAL it INTO RESULT[i][j][k];
    ENDFOR
  ENDFOR
ENDFOR
END
)";
}
