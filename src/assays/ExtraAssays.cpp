//===- ExtraAssays.cpp - Additional realistic assays ----------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/assays/ExtraAssays.h"

#include "aqua/support/StringUtils.h"

using namespace aqua;
using namespace aqua::assays;
using namespace aqua::ir;

AssayGraph aqua::assays::buildBradfordProtein(int StandardPoints,
                                              int SampleReplicates) {
  AssayGraph G;
  NodeId Bsa = G.addInput("BSA_standard");
  NodeId Diluent = G.addInput("diluent");
  NodeId Dye = G.addInput("dye_reagent");
  NodeId Sample = G.addInput("sample");

  // Standard curve: 1:(2^i - 1) dilutions (1:1, 1:3, 1:7, ...), each
  // mixed 1:50 into the dye.
  std::int64_t Parts = 1;
  for (int I = 1; I <= StandardPoints; ++I) {
    NodeId Dil = G.addMix(format("std_dil%d", I),
                          {{Bsa, 1}, {Diluent, Parts}}, 15.0);
    NodeId Rxn = G.addMix(format("std_rxn%d", I), {{Dil, 1}, {Dye, 50}},
                          300.0);
    NodeId Sense =
        G.addUnary(NodeKind::Sense, format("sense_Std_%d", I), Rxn);
    G.node(Sense).Params.Flavor = "OD";
    Parts = Parts * 2 + 1;
  }
  for (int I = 1; I <= SampleReplicates; ++I) {
    NodeId Rxn = G.addMix(format("smp_rxn%d", I), {{Sample, 1}, {Dye, 50}},
                          300.0);
    NodeId Sense =
        G.addUnary(NodeKind::Sense, format("sense_Smp_%d", I), Rxn);
    G.node(Sense).Params.Flavor = "OD";
  }
  return G;
}

AssayGraph aqua::assays::buildPcrMasterMix(int Reactions) {
  AssayGraph G;
  NodeId Buffer = G.addInput("pcr_buffer");
  NodeId Dntps = G.addInput("dNTPs");
  NodeId Primers = G.addInput("primers");
  NodeId Polymerase = G.addInput("polymerase");
  NodeId Water = G.addInput("water");
  NodeId Template = G.addInput("template");

  // The cocktail: 10 buffer : 8 dNTPs : 4 primers : 1 polymerase : 27
  // water (a typical 2x master mix profile).
  NodeId Master = G.addMix("master_mix",
                           {{Buffer, 10},
                            {Dntps, 8},
                            {Primers, 4},
                            {Polymerase, 1},
                            {Water, 27}},
                           60.0);
  for (int I = 1; I <= Reactions; ++I) {
    NodeId Rxn = G.addMix(format("rxn%d", I), {{Master, 9}, {Template, 1}},
                          30.0);
    NodeId Cycle = G.addUnary(NodeKind::Incubate,
                              format("thermocycle%d", I), Rxn);
    G.node(Cycle).Params.TempC = 95.0;
    G.node(Cycle).Params.Seconds = 5400.0;
    NodeId Sense =
        G.addUnary(NodeKind::Sense, format("sense_Ct_%d", I), Cycle);
    G.node(Sense).Params.Flavor = "FL";
  }
  return G;
}

AssayGraph aqua::assays::buildMicPanel(int Steps) {
  AssayGraph G;
  NodeId Drug = G.addInput("antibiotic");
  NodeId Broth = G.addInput("broth");
  NodeId Inoculum = G.addInput("inoculum");

  // Two-fold serial dilution chain: each step feeds the next, so every
  // intermediate has two uses (the next dilution and its own reaction).
  NodeId Prev = Drug;
  for (int I = 1; I <= Steps; ++I) {
    NodeId Dil =
        G.addMix(format("dil%d", I), {{Prev, 1}, {Broth, 1}}, 10.0);
    NodeId Well = G.addMix(format("well%d", I), {{Dil, 1}, {Inoculum, 1}},
                           20.0);
    NodeId Grown = G.addUnary(NodeKind::Incubate,
                              format("grow%d", I), Well);
    G.node(Grown).Params.TempC = 37.0;
    G.node(Grown).Params.Seconds = 3600.0;
    NodeId Sense =
        G.addUnary(NodeKind::Sense, format("sense_MIC_%d", I), Grown);
    G.node(Sense).Params.Flavor = "OD";
    Prev = Dil;
  }
  return G;
}

AssayGraph aqua::assays::buildImmunoassay() {
  AssayGraph G;
  NodeId Sample = G.addInput("serum");
  NodeId Binding = G.addInput("binding_buffer");
  NodeId Elution = G.addInput("elution_buffer");
  NodeId Conjugate = G.addInput("conjugate");
  NodeId Substrate = G.addInput("substrate");

  NodeId Bind1 = G.addMix("bind1", {{Sample, 1}, {Binding, 1}}, 60.0);
  NodeId Capture = G.addUnary(NodeKind::Separate, "captured", Bind1);
  G.node(Capture).UnknownVolume = true;
  G.node(Capture).Params.Flavor = "AF";
  G.node(Capture).Params.Matrix = "capture_antibody";
  G.node(Capture).Params.Pusher = "wash_buffer";
  G.node(Capture).Params.Seconds = 600.0;

  NodeId Eluted = G.addMix("eluted", {{Capture, 1}, {Elution, 2}}, 120.0);
  NodeId Labeled =
      G.addMix("labeled", {{Eluted, 5}, {Conjugate, 1}}, 300.0);
  NodeId Detect = G.addUnary(NodeKind::Separate, "detected", Labeled);
  G.node(Detect).UnknownVolume = true;
  G.node(Detect).Params.Flavor = "AF";
  G.node(Detect).Params.Matrix = "detect_antibody";
  G.node(Detect).Params.Pusher = "wash_buffer";
  G.node(Detect).Params.Seconds = 600.0;

  NodeId Developed =
      G.addMix("developed", {{Detect, 1}, {Substrate, 3}}, 300.0);
  NodeId Sense = G.addUnary(NodeKind::Sense, "sense_Titer_1", Developed);
  G.node(Sense).Params.Flavor = "OD";
  return G;
}

const char *aqua::assays::bradfordSource() {
  return R"(ASSAY bradford START
fluid BSA_standard, diluent, dye_reagent, sample;
fluid dil[6];
VAR i, parts, Std[6], Smp[3];
parts = 1;
FOR i FROM 1 TO 6 START
  dil[i] = MIX BSA_standard AND diluent IN RATIOS 1 : parts FOR 15;
  MIX dil[i] AND dye_reagent IN RATIOS 1 : 50 FOR 300;
  SENSE OPTICAL it INTO Std[i];
  parts = parts * 2 + 1;
ENDFOR
FOR i FROM 1 TO 3 START
  MIX sample AND dye_reagent IN RATIOS 1 : 50 FOR 300;
  SENSE OPTICAL it INTO Smp[i];
ENDFOR
END
)";
}
