//===- AssayGraph.cpp - Assay DAG intermediate form --------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/ir/AssayGraph.h"

#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <numeric>
#include <queue>

using namespace aqua;
using namespace aqua::ir;

const char *aqua::ir::nodeKindName(NodeKind K) {
  switch (K) {
  case NodeKind::Input:
    return "input";
  case NodeKind::Mix:
    return "mix";
  case NodeKind::Incubate:
    return "incubate";
  case NodeKind::Sense:
    return "sense";
  case NodeKind::Separate:
    return "separate";
  case NodeKind::Output:
    return "output";
  case NodeKind::Excess:
    return "excess";
  }
  AQUA_UNREACHABLE("bad NodeKind");
}

NodeId AssayGraph::addNode(NodeKind Kind, std::string Name) {
  Node N;
  N.Kind = Kind;
  N.Name = std::move(Name);
  Nodes.push_back(std::move(N));
  return static_cast<NodeId>(Nodes.size()) - 1;
}

EdgeId AssayGraph::addEdge(NodeId Src, NodeId Dst, Rational Fraction) {
  assert(Src >= 0 && Src < numNodeSlots() && "bad source node");
  assert(Dst >= 0 && Dst < numNodeSlots() && "bad destination node");
  assert(!Nodes[Src].Dead && !Nodes[Dst].Dead && "edge touches dead node");
  Edge E;
  E.Src = Src;
  E.Dst = Dst;
  E.Fraction = Fraction;
  Edges.push_back(E);
  EdgeId Id = static_cast<EdgeId>(Edges.size()) - 1;
  Nodes[Src].Out.push_back(Id);
  Nodes[Dst].In.push_back(Id);
  return Id;
}

NodeId AssayGraph::addMix(std::string Name, const std::vector<MixPart> &Parts,
                          double Seconds) {
  assert(Parts.size() >= 2 && "a mix needs at least two sources");
  std::int64_t Total = 0;
  for (const MixPart &P : Parts) {
    assert(P.Parts > 0 && "mix parts must be positive");
    Total += P.Parts;
  }
  NodeId N = addNode(NodeKind::Mix, std::move(Name));
  Nodes[N].Params.Seconds = Seconds;
  for (const MixPart &P : Parts)
    addEdge(P.Source, N, Rational(P.Parts, Total));
  return N;
}

NodeId AssayGraph::addUnary(NodeKind Kind, std::string Name, NodeId Src) {
  NodeId N = addNode(Kind, std::move(Name));
  addEdge(Src, N, Rational(1));
  return N;
}

void AssayGraph::removeEdge(EdgeId E) {
  Edge &Ed = Edges[E];
  if (Ed.Dead)
    return;
  Ed.Dead = true;
  auto Unlink = [E](std::vector<EdgeId> &List) {
    List.erase(std::remove(List.begin(), List.end(), E), List.end());
  };
  Unlink(Nodes[Ed.Src].Out);
  Unlink(Nodes[Ed.Dst].In);
}

void AssayGraph::removeNode(NodeId N) {
  Node &Nd = Nodes[N];
  if (Nd.Dead)
    return;
  // Copy: removeEdge mutates the adjacency lists.
  std::vector<EdgeId> Incident = Nd.In;
  Incident.insert(Incident.end(), Nd.Out.begin(), Nd.Out.end());
  for (EdgeId E : Incident)
    removeEdge(E);
  Nd.Dead = true;
}

void AssayGraph::setEdgeSource(EdgeId E, NodeId NewSrc) {
  Edge &Ed = Edges[E];
  assert(!Ed.Dead && "rewiring a dead edge");
  assert(!Nodes[NewSrc].Dead && "rewiring onto a dead node");
  auto &OldOut = Nodes[Ed.Src].Out;
  OldOut.erase(std::remove(OldOut.begin(), OldOut.end(), E), OldOut.end());
  Ed.Src = NewSrc;
  Nodes[NewSrc].Out.push_back(E);
}

int AssayGraph::numNodes() const {
  return static_cast<int>(std::count_if(
      Nodes.begin(), Nodes.end(), [](const Node &N) { return !N.Dead; }));
}

int AssayGraph::numEdges() const {
  return static_cast<int>(std::count_if(
      Edges.begin(), Edges.end(), [](const Edge &E) { return !E.Dead; }));
}

std::vector<NodeId> AssayGraph::liveNodes() const {
  std::vector<NodeId> Result;
  for (NodeId N = 0; N < numNodeSlots(); ++N)
    if (!Nodes[N].Dead)
      Result.push_back(N);
  return Result;
}

std::vector<EdgeId> AssayGraph::liveEdges() const {
  std::vector<EdgeId> Result;
  for (EdgeId E = 0; E < numEdgeSlots(); ++E)
    if (!Edges[E].Dead)
      Result.push_back(E);
  return Result;
}

std::vector<EdgeId> AssayGraph::inEdges(NodeId N) const {
  std::vector<EdgeId> Result;
  for (EdgeId E : Nodes[N].In)
    if (!Edges[E].Dead)
      Result.push_back(E);
  return Result;
}

std::vector<EdgeId> AssayGraph::outEdges(NodeId N) const {
  std::vector<EdgeId> Result;
  for (EdgeId E : Nodes[N].Out)
    if (!Edges[E].Dead)
      Result.push_back(E);
  return Result;
}

std::vector<NodeId> AssayGraph::topologicalOrder() const {
  // Kahn's algorithm with a min-heap so the smallest-id ready node comes
  // first: on frontend-built graphs (where creation order is already
  // topological) this reproduces program order, which keeps generated AIS
  // in the paper's statement order and minimizes value lifetimes.
  std::vector<int> Pending(numNodeSlots(), 0);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>>
      Ready;
  for (NodeId N = 0; N < numNodeSlots(); ++N) {
    if (Nodes[N].Dead)
      continue;
    Pending[N] = static_cast<int>(inEdges(N).size());
    if (Pending[N] == 0)
      Ready.push(N);
  }
  std::vector<NodeId> Order;
  while (!Ready.empty()) {
    NodeId N = Ready.top();
    Ready.pop();
    Order.push_back(N);
    for (EdgeId E : outEdges(N))
      if (--Pending[Edges[E].Dst] == 0)
        Ready.push(Edges[E].Dst);
  }
  assert(static_cast<int>(Order.size()) == numNodes() &&
         "cycle in assay graph (run verify())");
  return Order;
}

std::vector<NodeId> AssayGraph::backwardSlice(NodeId Target) const {
  std::vector<char> Seen(numNodeSlots(), 0);
  std::vector<NodeId> Stack{Target};
  Seen[Target] = 1;
  std::vector<NodeId> Slice;
  while (!Stack.empty()) {
    NodeId N = Stack.back();
    Stack.pop_back();
    Slice.push_back(N);
    for (EdgeId E : inEdges(N)) {
      NodeId Src = Edges[E].Src;
      if (!Seen[Src]) {
        Seen[Src] = 1;
        Stack.push_back(Src);
      }
    }
  }
  std::sort(Slice.begin(), Slice.end());
  return Slice;
}

Status AssayGraph::verify() const {
  // Acyclicity via Kahn's algorithm.
  {
    std::vector<int> Pending(numNodeSlots(), 0);
    std::vector<NodeId> Ready;
    int Live = 0;
    for (NodeId N = 0; N < numNodeSlots(); ++N) {
      if (Nodes[N].Dead)
        continue;
      ++Live;
      Pending[N] = static_cast<int>(inEdges(N).size());
      if (Pending[N] == 0)
        Ready.push_back(N);
    }
    size_t Done = 0;
    for (size_t I = 0; I < Ready.size(); ++I, ++Done)
      for (EdgeId E : outEdges(Ready[I]))
        if (--Pending[Edges[E].Dst] == 0)
          Ready.push_back(Edges[E].Dst);
    if (static_cast<int>(Done) != Live)
      return Status::error("assay graph contains a cycle");
  }

  for (EdgeId E : liveEdges()) {
    const Edge &Ed = Edges[E];
    if (Nodes[Ed.Src].Dead || Nodes[Ed.Dst].Dead)
      return Status::error(format("edge %d touches a dead node", E));
    if (Ed.Fraction <= Rational(0) || Ed.Fraction > Rational(1))
      return Status::error(
          format("edge %d fraction %s outside (0, 1]", E,
                 Ed.Fraction.str().c_str()));
  }

  for (NodeId N : liveNodes()) {
    const Node &Nd = Nodes[N];
    std::vector<EdgeId> In = inEdges(N);
    switch (Nd.Kind) {
    case NodeKind::Input:
      if (!In.empty())
        return Status::error(
            format("input node '%s' has in-edges", Nd.Name.c_str()));
      break;
    case NodeKind::Mix: {
      if (In.size() < 2)
        return Status::error(
            format("mix node '%s' has fewer than two sources",
                   Nd.Name.c_str()));
      Rational Sum(0);
      for (EdgeId E : In)
        Sum += Edges[E].Fraction;
      if (Sum != Rational(1))
        return Status::error(
            format("mix node '%s' in-edge fractions sum to %s, not 1",
                   Nd.Name.c_str(), Sum.str().c_str()));
      break;
    }
    case NodeKind::Incubate:
    case NodeKind::Sense:
    case NodeKind::Separate:
    case NodeKind::Output:
    case NodeKind::Excess:
      if (In.size() != 1)
        return Status::error(
            format("%s node '%s' must have exactly one in-edge",
                   nodeKindName(Nd.Kind), Nd.Name.c_str()));
      if (Edges[In[0]].Fraction != Rational(1))
        return Status::error(
            format("%s node '%s' in-edge fraction must be 1",
                   nodeKindName(Nd.Kind), Nd.Name.c_str()));
      break;
    }
    if (Nd.OutFraction <= Rational(0) || Nd.OutFraction > Rational(1))
      return Status::error(
          format("node '%s' output fraction %s outside (0, 1]",
                 Nd.Name.c_str(), Nd.OutFraction.str().c_str()));
    if (Nd.Kind == NodeKind::Excess) {
      if (Nd.ExcessShare <= Rational(0) || Nd.ExcessShare >= Rational(1))
        return Status::error(
            format("excess node '%s' share %s outside (0, 1)",
                   Nd.Name.c_str(), Nd.ExcessShare.str().c_str()));
      if (!outEdges(N).empty())
        return Status::error(
            format("excess node '%s' must be a leaf", Nd.Name.c_str()));
    }
  }
  return Status::success();
}

std::string AssayGraph::str() const {
  std::string Out;
  for (NodeId N : liveNodes()) {
    const Node &Nd = Nodes[N];
    Out += format("n%-3d %-9s %s", N, nodeKindName(Nd.Kind), Nd.Name.c_str());
    if (Nd.UnknownVolume)
      Out += " [unknown-volume]";
    if (Nd.OutFraction != Rational(1))
      Out += format(" [yield %s]", Nd.OutFraction.str().c_str());
    std::vector<EdgeId> In = inEdges(N);
    if (!In.empty()) {
      Out += "  <- ";
      for (size_t I = 0; I < In.size(); ++I) {
        const Edge &E = Edges[In[I]];
        if (I != 0)
          Out += ", ";
        Out += format("n%d(%s)", E.Src, E.Fraction.str().c_str());
      }
    }
    Out += "\n";
  }
  return Out;
}

std::string AssayGraph::dot() const {
  std::string Out = "digraph assay {\n  rankdir=TB;\n";
  for (NodeId N : liveNodes()) {
    const Node &Nd = Nodes[N];
    const char *Shape = Nd.Kind == NodeKind::Input      ? "invhouse"
                        : Nd.Kind == NodeKind::Excess   ? "octagon"
                        : Nd.Kind == NodeKind::Separate ? "trapezium"
                                                        : "box";
    Out += format("  n%d [label=\"%s\\n%s\", shape=%s];\n", N,
                  Nd.Name.c_str(), nodeKindName(Nd.Kind), Shape);
  }
  for (EdgeId E : liveEdges()) {
    const Edge &Ed = Edges[E];
    Out += format("  n%d -> n%d [label=\"%s\"];\n", Ed.Src, Ed.Dst,
                  Ed.Fraction.str().c_str());
  }
  Out += "}\n";
  return Out;
}
