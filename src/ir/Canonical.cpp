//===- Canonical.cpp - Canonical form & fingerprinting -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/ir/Canonical.h"

#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <bit>
#include <cmath>

using namespace aqua;
using namespace aqua::ir;

namespace {

/// splitmix64 finalizer: a fast full-avalanche 64-bit mixer.
std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Order-dependent combine of a running hash with one word.
std::uint64_t combine(std::uint64_t H, std::uint64_t V) {
  return mix64(H ^ (V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2)));
}

std::uint64_t hashBits(double V) {
  if (V == 0.0)
    V = 0.0; // Collapse -0.0 onto +0.0.
  return std::bit_cast<std::uint64_t>(V);
}

std::uint64_t hashString(std::string_view S) {
  // FNV-1a, then avalanched.
  std::uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return mix64(H ^ S.size());
}

/// The insertion-order-free local signature of a node: everything volume
/// management and code generation can observe about it in isolation.
std::uint64_t localSignature(const Node &N) {
  std::uint64_t H = mix64(static_cast<std::uint64_t>(N.Kind) + 1);
  H = combine(H, hashString(N.Name));
  H = combine(H, static_cast<std::uint64_t>(N.OutFraction.numerator()));
  H = combine(H, static_cast<std::uint64_t>(N.OutFraction.denominator()));
  H = combine(H, N.UnknownVolume ? 3 : 5);
  H = combine(H, N.NoExcess ? 7 : 11);
  H = combine(H, static_cast<std::uint64_t>(N.ExcessShare.numerator()));
  H = combine(H, static_cast<std::uint64_t>(N.ExcessShare.denominator()));
  H = combine(H, hashBits(N.Params.Seconds));
  H = combine(H, hashBits(N.Params.TempC));
  H = combine(H, hashString(N.Params.Flavor));
  H = combine(H, hashString(N.Params.Matrix));
  H = combine(H, hashString(N.Params.Pusher));
  return H;
}

std::uint64_t hashFractionWith(std::uint64_t NeighborHash, const Rational &F) {
  std::uint64_t H = NeighborHash;
  H = combine(H, static_cast<std::uint64_t>(F.numerator()));
  H = combine(H, static_cast<std::uint64_t>(F.denominator()));
  return H;
}

} // namespace

//===----------------------------------------------------------------------===//
// FingerprintHasher
//===----------------------------------------------------------------------===//

std::string Fingerprint::str() const {
  return format("%016llx%016llx", static_cast<unsigned long long>(Hi),
                static_cast<unsigned long long>(Lo));
}

FingerprintHasher::FingerprintHasher()
    : A(0x6a09e667f3bcc908ULL), B(0xbb67ae8584caa73bULL) {}

FingerprintHasher &FingerprintHasher::add(std::uint64_t V) {
  A = combine(A, V);
  B = combine(B, ~V);
  return *this;
}

FingerprintHasher &FingerprintHasher::add(double V) {
  return add(hashBits(V));
}

FingerprintHasher &FingerprintHasher::add(const Rational &V) {
  add(static_cast<std::uint64_t>(V.numerator()));
  return add(static_cast<std::uint64_t>(V.denominator()));
}

FingerprintHasher &FingerprintHasher::add(std::string_view S) {
  return add(hashString(S));
}

Fingerprint FingerprintHasher::finish() const {
  // One more avalanche so trailing adds influence every output bit.
  return Fingerprint{mix64(A ^ (B << 1)), mix64(B ^ (A >> 1))};
}

//===----------------------------------------------------------------------===//
// Canonicalization
//===----------------------------------------------------------------------===//

CanonicalForm aqua::ir::canonicalize(const AssayGraph &G) {
  CanonicalForm C;
  C.NodeRank.assign(G.numNodeSlots(), -1);
  C.EdgeRank.assign(G.numEdgeSlots(), -1);
  C.NodeHash.assign(G.numNodeSlots(), 0);

  const std::vector<NodeId> Live = G.liveNodes();
  const std::vector<EdgeId> LiveEdges = G.liveEdges();

  // Round 0: purely local signatures.
  for (NodeId N : Live)
    C.NodeHash[N] = localSignature(G.node(N));

  // Weisfeiler--Lehman refinement: absorb sorted neighborhood hashes.
  // ceil(log2(N)) + 2 rounds let a label propagate across any path of the
  // DAG's diameter in a balanced graph and separate chain positions.
  int Rounds = 2;
  for (std::size_t S = Live.size(); S > 1; S >>= 1)
    ++Rounds;
  std::vector<std::uint64_t> Next(C.NodeHash.size(), 0);
  std::vector<std::uint64_t> Neighborhood;
  for (int R = 0; R < Rounds; ++R) {
    for (NodeId N : Live) {
      std::uint64_t H = combine(C.NodeHash[N], 0x517cc1b727220a95ULL);
      Neighborhood.clear();
      for (EdgeId E : G.inEdges(N))
        Neighborhood.push_back(
            hashFractionWith(C.NodeHash[G.edge(E).Src], G.edge(E).Fraction));
      std::sort(Neighborhood.begin(), Neighborhood.end());
      for (std::uint64_t V : Neighborhood)
        H = combine(H, V);
      H = combine(H, 0x2545f4914f6cdd1dULL); // In/out separator.
      Neighborhood.clear();
      for (EdgeId E : G.outEdges(N))
        Neighborhood.push_back(
            hashFractionWith(C.NodeHash[G.edge(E).Dst], G.edge(E).Fraction));
      std::sort(Neighborhood.begin(), Neighborhood.end());
      for (std::uint64_t V : Neighborhood)
        H = combine(H, V);
      Next[N] = H;
    }
    for (NodeId N : Live)
      C.NodeHash[N] = Next[N];
  }

  // Canonical node order: by final hash, with the node name and kind as
  // readability tie-breakers (ties after that are automorphic in practice;
  // any order yields an isomorphic canonical graph).
  std::vector<NodeId> Order = Live;
  std::sort(Order.begin(), Order.end(), [&](NodeId X, NodeId Y) {
    if (C.NodeHash[X] != C.NodeHash[Y])
      return C.NodeHash[X] < C.NodeHash[Y];
    if (G.node(X).Name != G.node(Y).Name)
      return G.node(X).Name < G.node(Y).Name;
    return G.node(X).Kind < G.node(Y).Kind;
  });
  for (int Rank = 0; Rank < static_cast<int>(Order.size()); ++Rank)
    C.NodeRank[Order[Rank]] = Rank;

  // Canonical edge order: by (src rank, dst rank, fraction). Parallel
  // edges with equal fractions are interchangeable.
  std::vector<EdgeId> EdgeOrder = LiveEdges;
  std::sort(EdgeOrder.begin(), EdgeOrder.end(), [&](EdgeId X, EdgeId Y) {
    const Edge &EX = G.edge(X), &EY = G.edge(Y);
    if (C.NodeRank[EX.Src] != C.NodeRank[EY.Src])
      return C.NodeRank[EX.Src] < C.NodeRank[EY.Src];
    if (C.NodeRank[EX.Dst] != C.NodeRank[EY.Dst])
      return C.NodeRank[EX.Dst] < C.NodeRank[EY.Dst];
    return EX.Fraction < EY.Fraction;
  });
  for (int Rank = 0; Rank < static_cast<int>(EdgeOrder.size()); ++Rank)
    C.EdgeRank[EdgeOrder[Rank]] = Rank;

  // The fingerprint hashes the sorted multiset of node hashes and edge
  // hashes -- no insertion order, no slot ids, no dead slots.
  FingerprintHasher FH;
  FH.add(std::uint64_t(Live.size()));
  FH.add(std::uint64_t(LiveEdges.size()));
  std::vector<std::uint64_t> NodeHashes;
  NodeHashes.reserve(Live.size());
  for (NodeId N : Live)
    NodeHashes.push_back(C.NodeHash[N]);
  std::sort(NodeHashes.begin(), NodeHashes.end());
  for (std::uint64_t H : NodeHashes)
    FH.add(H);
  std::vector<std::uint64_t> EdgeHashes;
  EdgeHashes.reserve(LiveEdges.size());
  for (EdgeId E : LiveEdges) {
    std::uint64_t H = combine(C.NodeHash[G.edge(E).Src], 0x9ddfea08eb382d69ULL);
    H = combine(H, C.NodeHash[G.edge(E).Dst]);
    H = hashFractionWith(H, G.edge(E).Fraction);
    EdgeHashes.push_back(H);
  }
  std::sort(EdgeHashes.begin(), EdgeHashes.end());
  for (std::uint64_t H : EdgeHashes)
    FH.add(H);
  C.Hash = FH.finish();
  return C;
}

AssayGraph aqua::ir::buildCanonicalGraph(const AssayGraph &G,
                                         const CanonicalForm &C) {
  // Invert the rank maps.
  std::vector<NodeId> NodeAt(G.numNodes(), InvalidNode);
  for (NodeId N = 0; N < G.numNodeSlots(); ++N)
    if (C.NodeRank[N] >= 0)
      NodeAt[C.NodeRank[N]] = N;
  std::vector<EdgeId> EdgeAt(G.numEdges(), -1);
  for (EdgeId E = 0; E < G.numEdgeSlots(); ++E)
    if (C.EdgeRank[E] >= 0)
      EdgeAt[C.EdgeRank[E]] = E;

  AssayGraph Out;
  for (NodeId Old : NodeAt) {
    const Node &N = G.node(Old);
    NodeId New = Out.addNode(N.Kind, N.Name);
    Node &Copy = Out.node(New);
    Copy.OutFraction = N.OutFraction;
    Copy.UnknownVolume = N.UnknownVolume;
    Copy.NoExcess = N.NoExcess;
    Copy.ExcessShare = N.ExcessShare;
    Copy.Params = N.Params;
  }
  for (EdgeId Old : EdgeAt) {
    const Edge &E = G.edge(Old);
    Out.addEdge(C.NodeRank[E.Src], C.NodeRank[E.Dst], E.Fraction);
  }
  return Out;
}

Fingerprint aqua::ir::fingerprintGraph(const AssayGraph &G) {
  return canonicalize(G).Hash;
}
