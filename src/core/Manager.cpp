//===- Manager.cpp - Volume-management hierarchy -------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Manager.h"

#include "aqua/core/Cascading.h"
#include "aqua/core/Replication.h"
#include "aqua/obs/Log.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"
#include "aqua/support/StringUtils.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

/// Global-registry instruments, resolved once.
struct ManagerMetrics {
  obs::Counter &Runs = obs::metrics().counter("core.manage.runs");
  obs::Counter &Infeasible = obs::metrics().counter("core.manage.infeasible");
  obs::Counter &Iterations = obs::metrics().counter("core.manage.iterations");
  obs::Counter &Cascades = obs::metrics().counter("core.manage.cascades");
  obs::Counter &Replications =
      obs::metrics().counter("core.manage.replications");
  obs::Counter &LPFallbacks =
      obs::metrics().counter("core.manage.lp_fallbacks");
};

ManagerMetrics &met() {
  static ManagerMetrics M;
  return M;
}

/// Finishes a successful result: rounding plus diagnostics.
void finishResult(ManagerResult &R, const MachineSpec &Spec,
                  SolveMethod Method, VolumeAssignment Volumes) {
  R.Feasible = true;
  R.Method = Method;
  R.Volumes = std::move(Volumes);
  R.MinDispenseNl = R.Volumes.minDispenseNl(R.Graph);
  R.Rounded = roundToLeastCount(R.Graph, R.Volumes, Spec);
}

/// Least-count granularity refinement: while the mean rounding error
/// exceeds the target, replicate the fullest multi-use node -- splitting
/// its uses raises every dispensed volume, making each metered transfer a
/// larger multiple of the least count. Works for both hierarchy levels:
/// each step re-enters DAGSolve-then-LP and is kept only if it stays
/// feasible and actually improves the error.
void refineRoundingError(ManagerResult &R, const MachineSpec &Spec,
                         const ManagerOptions &Opts) {
  if (Opts.TargetMeanRoundErrorPct < 0.0 || !Opts.AllowReplication)
    return;

  // One solve through the first two hierarchy levels.
  auto SolveOnce = [&](const AssayGraph &G, SolveMethod &Method,
                       VolumeAssignment &Volumes) -> bool {
    DagSolveResult DS = dagSolve(G, Spec, Opts.DagOptions);
    if (DS.Feasible) {
      Method = SolveMethod::DagSolve;
      Volumes = std::move(DS.Volumes);
      return true;
    }
    if (!Opts.UseLPFallback)
      return false;
    LPVolumeResult LP = solveRVolLP(G, Spec, {}, Opts.LPOptions);
    if (LP.Solution.Status != lp::SolveStatus::Optimal ||
        !LP.Volumes.feasible(G, Spec))
      return false;
    Method = SolveMethod::LP;
    Volumes = std::move(LP.Volumes);
    R.LpBasis = LP.Info.OptBasis;
    R.LpShapeHash = LP.Info.ShapeHash;
    R.LpWarmStarted = LP.Info.WarmStarted;
    return true;
  };

  for (int Step = 0; Step < Opts.MaxErrorRefineSteps; ++Step) {
    if (R.Rounded.MeanRatioErrorPct <= Opts.TargetMeanRoundErrorPct)
      return;
    // The fullest node with enough uses to split: replicating it buys the
    // most headroom.
    NodeId Critical = InvalidNode;
    double Fullest = 0.0;
    for (NodeId N : R.Graph.liveNodes()) {
      if (R.Graph.outEdges(N).size() < 2 ||
          R.Graph.node(N).Kind == NodeKind::Excess)
        continue;
      if (R.Volumes.NodeVolumeNl[N] > Fullest) {
        Fullest = R.Volumes.NodeVolumeNl[N];
        Critical = N;
      }
    }
    if (Critical == InvalidNode)
      return;

    AssayGraph Backup = R.Graph;
    std::string CriticalName = R.Graph.node(Critical).Name;
    Expected<std::vector<NodeId>> Reps =
        replicateNode(R.Graph, Critical, 2, Spec);
    if (!Reps.ok()) {
      R.Graph = std::move(Backup);
      return;
    }
    SolveMethod Method = SolveMethod::DagSolve;
    VolumeAssignment Volumes;
    if (!SolveOnce(R.Graph, Method, Volumes)) {
      R.Graph = std::move(Backup);
      return;
    }
    IntegerAssignment NextRounded = roundToLeastCount(R.Graph, Volumes, Spec);
    if (NextRounded.MeanRatioErrorPct >= R.Rounded.MeanRatioErrorPct) {
      R.Graph = std::move(Backup);
      return;
    }
    R.Log += format("refine %d: replicated '%s'; mean rounding error "
                    "%.2f%% -> %.2f%%\n",
                    Step, CriticalName.c_str(), R.Rounded.MeanRatioErrorPct,
                    NextRounded.MeanRatioErrorPct);
    ++R.ReplicationsApplied;
    R.Method = Method;
    R.Volumes = std::move(Volumes);
    R.MinDispenseNl = R.Volumes.minDispenseNl(R.Graph);
    R.Rounded = std::move(NextRounded);
  }
}

/// Collects live mixes whose skew exceeds the threshold and which may
/// legally be cascaded (k-ary extreme mixes are binarized first).
std::vector<NodeId> findExtremeMixes(const AssayGraph &G,
                                     std::int64_t SkewThreshold) {
  std::vector<NodeId> Result;
  for (NodeId N : G.liveNodes()) {
    const Node &Nd = G.node(N);
    if (Nd.Kind != NodeKind::Mix || Nd.NoExcess)
      continue;
    if (mixSkew(G, N) > Rational(SkewThreshold))
      Result.push_back(N);
  }
  return Result;
}

} // namespace

ManagerResult aqua::core::manageVolumes(const AssayGraph &G,
                                        const MachineSpec &Spec,
                                        const ManagerOptions &Opts) {
  obs::SpanGuard Span("core.manage", "core");
  Span.arg("nodes", static_cast<std::uint64_t>(G.liveNodes().size()));
  met().Runs.add();
  ManagerResult R;
  R.Graph = G;

  for (int Iter = 0; Iter < Opts.MaxIterations; ++Iter) {
    met().Iterations.add();
    // ----- Level 1: DAGSolve (linear time).
    DagSolveResult DS = dagSolve(R.Graph, Spec, Opts.DagOptions);
    if (DS.Feasible) {
      R.Log += format("iter %d: DAGSolve feasible (min dispense %s nl)\n",
                      Iter, formatTrimmed(DS.MinDispenseNl, 4).c_str());
      finishResult(R, Spec, SolveMethod::DagSolve, std::move(DS.Volumes));
      refineRoundingError(R, Spec, Opts);
      return R;
    }
    R.Log += format("iter %d: DAGSolve underflow (min dispense %s nl at "
                    "edge %d)\n",
                    Iter, formatTrimmed(DS.MinDispenseNl, 4).c_str(),
                    DS.MinEdge);

    // ----- Level 2: LP on the unconstrained Figure 3 formulation, which
    // can find solutions DAGSolve's artificial constraints exclude.
    if (Opts.UseLPFallback) {
      LPVolumeResult LP = solveRVolLP(R.Graph, Spec, {}, Opts.LPOptions);
      if (LP.Solution.Status == lp::SolveStatus::Optimal &&
          LP.Volumes.feasible(R.Graph, Spec)) {
        R.Log += format("iter %d: LP feasible (min dispense %s nl)\n", Iter,
                        formatTrimmed(LP.Volumes.minDispenseNl(R.Graph), 4)
                            .c_str());
        met().LPFallbacks.add();
        R.LpBasis = LP.Info.OptBasis;
        R.LpShapeHash = LP.Info.ShapeHash;
        R.LpWarmStarted = LP.Info.WarmStarted;
        finishResult(R, Spec, SolveMethod::LP, std::move(LP.Volumes));
        refineRoundingError(R, Spec, Opts);
        return R;
      }
      R.Log += format("iter %d: LP %s\n", Iter,
                      lp::solveStatusName(LP.Solution.Status));
    }

    // ----- Level 3: transforms, then re-enter the hierarchy.
    bool Transformed = false;

    if (Opts.AllowCascading) {
      std::vector<NodeId> Extreme =
          findExtremeMixes(R.Graph, Opts.CascadeSkewThreshold);
      for (NodeId M : Extreme) {
        std::vector<EdgeId> In = R.Graph.inEdges(M);
        if (In.size() > 2) {
          // A k-ary extreme mix: split into binary mixes first; the
          // extreme binary stage is cascaded on the next iteration.
          Expected<std::vector<NodeId>> BI = binarizeMix(R.Graph, M);
          if (BI.ok()) {
            R.Log += format("iter %d: binarized %zu-input mix '%s'\n", Iter,
                            In.size(), R.Graph.node(M).Name.c_str());
            Transformed = true;
          } else {
            R.Log += format("iter %d: binarize of '%s' failed: %s\n", Iter,
                            R.Graph.node(M).Name.c_str(),
                            BI.message().c_str());
          }
          continue;
        }
        EdgeId SmallE = In[0];
        if (R.Graph.edge(In[1]).Fraction < R.Graph.edge(SmallE).Fraction)
          SmallE = In[1];
        Rational F = R.Graph.edge(SmallE).Fraction;
        std::int64_t P = F.numerator(), T = F.denominator();
        int Stages = chooseCascadeStages(P, T - P, Opts.CascadeSkewThreshold,
                                         Opts.MaxCascadeStages);
        if (Stages < 2)
          continue;
        Expected<CascadeInfo> CI = cascadeMix(R.Graph, M, Stages);
        if (!CI.ok()) {
          R.Log += format("iter %d: cascade of '%s' failed: %s\n", Iter,
                          R.Graph.node(M).Name.c_str(),
                          CI.message().c_str());
          continue;
        }
        R.Log += format("iter %d: cascaded '%s' (%lld:%lld) into %d stages\n",
                        Iter, R.Graph.node(M).Name.c_str(),
                        static_cast<long long>(P),
                        static_cast<long long>(T - P), Stages);
        ++R.CascadesApplied;
        met().Cascades.add();
        Transformed = true;
      }
    }

    if (!Transformed && Opts.AllowReplication &&
        DS.MaxVnormNode != InvalidNode) {
      // Numerous uses: split the critical (capacity-pinned) node's uses
      // across replicas; on the next iteration the now-critical
      // predecessor may be replicated in turn ("another level").
      NodeId Critical = DS.MaxVnormNode;
      Expected<std::vector<NodeId>> Reps =
          replicateNode(R.Graph, Critical, 2, Spec);
      if (Reps.ok()) {
        R.Log += format("iter %d: replicated '%s' into 2 instances\n", Iter,
                        R.Graph.node(Critical).Name.c_str());
        ++R.ReplicationsApplied;
        met().Replications.add();
        Transformed = true;
      } else {
        R.Log += format("iter %d: replication of '%s' failed: %s\n", Iter,
                        R.Graph.node(Critical).Name.c_str(),
                        Reps.message().c_str());
      }
    }

    if (!Transformed) {
      R.Log += format("iter %d: no transform applicable; giving up "
                      "(regeneration backstop applies at run time)\n",
                      Iter);
      break;
    }
  }

  R.Feasible = false;
  met().Infeasible.add();
  R.Log += format("hierarchy exhausted (iteration budget %d); no static "
                  "assignment (regeneration backstop applies at run time)\n",
                  Opts.MaxIterations);
  AQUA_LOG_WARN("core",
                "hierarchy exhausted (iteration budget %d); no static "
                "assignment (regeneration backstop applies at run time)",
                Opts.MaxIterations);
  return R;
}
