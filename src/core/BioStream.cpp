//===- BioStream.cpp - BioStream 1:1 mixing baseline ----------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/BioStream.h"

#include "aqua/support/StringUtils.h"

#include <cmath>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

Expected<BioStreamInfo> aqua::core::biostreamMix(AssayGraph &G, NodeId M,
                                                 int Bits) {
  using RetTy = Expected<BioStreamInfo>;
  if (Bits < 1 || Bits > 24)
    return RetTy::error("biostream precision must be 1..24 bits");
  // By value: addNode below may grow the node table and invalidate
  // references into it.
  const Node MN = G.node(M);
  if (MN.Kind != NodeKind::Mix)
    return RetTy::error(format("node '%s' is not a mix", MN.Name.c_str()));
  std::vector<EdgeId> In = G.inEdges(M);
  if (In.size() != 2)
    return RetTy::error("biostream rewriting needs a two-input mix");

  EdgeId SmallE = In[0], LargeE = In[1];
  if (G.edge(SmallE).Fraction > G.edge(LargeE).Fraction)
    std::swap(SmallE, LargeE);
  NodeId A = G.edge(SmallE).Src; // "1" ingredient.
  NodeId B = G.edge(LargeE).Src; // "0" ingredient.
  if (G.node(A).NoExcess || G.node(B).NoExcess || MN.NoExcess)
    return RetTy::error("biostream mixing discards fluid; disallowed for "
                        "no-excess fluids");

  BioStreamInfo Info;
  Info.Target = G.edge(SmallE).Fraction;

  // Quantize the target to Bits binary digits and reduce.
  std::int64_t Denom = std::int64_t(1) << Bits;
  std::int64_t m = static_cast<std::int64_t>(
      std::llround(Info.Target.toDouble() * static_cast<double>(Denom)));
  if (m <= 0 || m >= Denom)
    return RetTy::error(
        format("target ratio %s is not representable in %d bits",
               Info.Target.str().c_str(), Bits));
  Info.Achieved = Rational(m, Denom); // Reduces trailing zero bits.
  Info.ErrorPct = std::fabs(Info.Achieved.toDouble() -
                            Info.Target.toDouble()) /
                  Info.Target.toDouble() * 100.0;

  // Derive the 1:1 ingredient sequence backward from the target:
  // c = (prev + s)/2 with s in {0,1}, so prev = 2c - s.
  Rational C = Info.Achieved;
  std::vector<int> Seq; // Ingredient per merge, derived last-to-first.
  while (!C.isZero() && C != Rational(1)) {
    Rational Twice = C * Rational(2);
    int S = Twice > Rational(1) ? 1 : 0;
    Seq.push_back(S);
    C = Twice - Rational(S);
  }
  int Start = C == Rational(1) ? 1 : 0;

  // Build the chain forward; the last merge reuses node M.
  G.removeEdge(SmallE);
  G.removeEdge(LargeE);
  double Seconds = MN.Params.Seconds;
  NodeId Cur = Start ? A : B;
  for (size_t I = Seq.size(); I-- > 0;) {
    bool Final = I == 0;
    NodeId Pure = Seq[I] ? A : B;
    NodeId Stage;
    if (Final) {
      Stage = M;
    } else {
      Stage = G.addNode(NodeKind::Mix,
                        format("%s.bs%zu", MN.Name.c_str(), Seq.size() - I));
      G.node(Stage).Params.Seconds = Seconds;
    }
    if (Cur == Pure)
      return RetTy::error("degenerate 1:1 merge of a fluid with itself");
    G.addEdge(Cur, Stage, Rational(1, 2));
    G.addEdge(Pure, Stage, Rational(1, 2));
    if (!Final) {
      // Half of every intermediate is carried forward; the other half is
      // discarded (the BioStream model).
      NodeId X = G.addNode(NodeKind::Excess,
                           format("%s.bsx%zu", MN.Name.c_str(),
                                  Seq.size() - I));
      G.node(X).ExcessShare = Rational(1, 2);
      G.addEdge(Stage, X, Rational(1));
      Info.ExcessNodes.push_back(X);
    }
    Info.Stages.push_back(Stage);
    Cur = Stage;
  }
  return Info;
}
