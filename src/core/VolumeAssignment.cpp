//===- VolumeAssignment.cpp - Volume assignment result -----------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/VolumeAssignment.h"

#include "aqua/support/StringUtils.h"

#include <limits>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

double VolumeAssignment::minDispenseNl(const AssayGraph &G) const {
  double Min = std::numeric_limits<double>::infinity();
  for (EdgeId E : G.liveEdges())
    Min = std::min(Min, EdgeVolumeNl[E]);
  return Min;
}

double VolumeAssignment::maxNodeVolumeNl(const AssayGraph &G) const {
  double Max = 0.0;
  for (NodeId N : G.liveNodes())
    Max = std::max(Max, NodeVolumeNl[N]);
  return Max;
}

bool VolumeAssignment::feasible(const AssayGraph &G,
                                const MachineSpec &Spec) const {
  constexpr double Tol = 1e-9;
  if (minDispenseNl(G) < Spec.LeastCountNl - Tol)
    return false;
  for (NodeId N : G.liveNodes()) {
    // Input-side volume is the sum of in-edge volumes (what the functional
    // unit must hold); input nodes hold their own node volume.
    double InVol = 0.0;
    std::vector<EdgeId> In = G.inEdges(N);
    if (In.empty()) {
      InVol = NodeVolumeNl[N];
    } else {
      for (EdgeId E : In)
        InVol += EdgeVolumeNl[E];
    }
    if (InVol > Spec.MaxCapacityNl + Tol)
      return false;
  }
  return true;
}

std::string VolumeAssignment::str(const AssayGraph &G) const {
  std::string Out;
  for (NodeId N : G.liveNodes())
    Out += format("n%-3d %-9s %-16s %10s nl\n", N,
                  nodeKindName(G.node(N).Kind), G.node(N).Name.c_str(),
                  formatTrimmed(NodeVolumeNl[N], 3).c_str());
  for (EdgeId E : G.liveEdges()) {
    const Edge &Ed = G.edge(E);
    Out += format("e%-3d n%d(%s) -> n%d(%s)  %10s nl\n", E, Ed.Src,
                  G.node(Ed.Src).Name.c_str(), Ed.Dst,
                  G.node(Ed.Dst).Name.c_str(),
                  formatTrimmed(EdgeVolumeNl[E], 3).c_str());
  }
  return Out;
}
