//===- Verify.cpp - Volume-assignment verification -------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Verify.h"

#include "aqua/support/StringUtils.h"

#include <cmath>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

std::vector<Violation>
aqua::core::verifyAssignment(const AssayGraph &G, const VolumeAssignment &V,
                             const MachineSpec &Spec,
                             const VerifyOptions &Opts) {
  std::vector<Violation> Out;
  auto Report = [&Out](int Class, NodeId N, EdgeId E, double Mag,
                       std::string Msg) {
    Out.push_back(Violation{Class, N, E, Mag, std::move(Msg)});
  };

  if (V.NodeVolumeNl.size() != static_cast<size_t>(G.numNodeSlots()) ||
      V.EdgeVolumeNl.size() != static_cast<size_t>(G.numEdgeSlots())) {
    Report(0, InvalidNode, -1, 0.0,
           "assignment vectors do not match the graph's slot counts");
    return Out;
  }

  const double Tol = Opts.ToleranceNl;

  // ----- Class 1: minimum volume on every transfer.
  for (EdgeId E : G.liveEdges()) {
    double Vol = V.EdgeVolumeNl[E];
    if (Vol < 0.0)
      Report(0, InvalidNode, E, -Vol,
             format("edge %d has negative volume %.4f nl", E, Vol));
    else if (Vol < Spec.LeastCountNl - Tol)
      Report(1, InvalidNode, E, Spec.LeastCountNl - Vol,
             format("edge %d (%s -> %s) dispenses %.4f nl, below the "
                    "least count %.4f nl",
                    E, G.node(G.edge(E).Src).Name.c_str(),
                    G.node(G.edge(E).Dst).Name.c_str(), Vol,
                    Spec.LeastCountNl));
  }

  for (NodeId N : G.liveNodes()) {
    const Node &Nd = G.node(N);
    std::vector<EdgeId> In = G.inEdges(N);

    // ----- Class 2: maximum capacity (input side).
    double InVol = 0.0;
    for (EdgeId E : In)
      InVol += V.EdgeVolumeNl[E];
    if (In.empty())
      InVol = V.NodeVolumeNl[N];
    if (InVol > Spec.MaxCapacityNl + Tol)
      Report(2, N, -1, InVol - Spec.MaxCapacityNl,
             format("node '%s' holds %.4f nl, above the capacity %.4f nl",
                    Nd.Name.c_str(), InVol, Spec.MaxCapacityNl));

    // ----- Class 3: non-deficit.
    double Used = 0.0;
    for (EdgeId E : G.outEdges(N))
      Used += V.EdgeVolumeNl[E];
    if (Used > V.NodeVolumeNl[N] + Tol)
      Report(3, N, -1, Used - V.NodeVolumeNl[N],
             format("node '%s' is used for %.4f nl but holds only %.4f nl",
                    Nd.Name.c_str(), Used, V.NodeVolumeNl[N]));

    // ----- Class 4: mix ratios.
    if (Nd.Kind == NodeKind::Mix && InVol > 0.0) {
      for (EdgeId E : In) {
        double Achieved = V.EdgeVolumeNl[E] / InVol;
        double Exact = G.edge(E).Fraction.toDouble();
        double Rel = std::fabs(Achieved - Exact) / Exact;
        if (Rel > Opts.RatioTolerance)
          Report(4, N, E, Rel,
                 format("mix '%s': achieved fraction %.6f vs assay "
                        "fraction %.6f (%.2f%% off)",
                        Nd.Name.c_str(), Achieved, Exact, Rel * 100.0));
      }
    }

    // ----- Class 5: output relative to input.
    if (!In.empty() && !Nd.UnknownVolume) {
      double Expected = Nd.OutFraction.toDouble() * InVol;
      if (std::fabs(V.NodeVolumeNl[N] - Expected) > Tol + 1e-9 * Expected)
        Report(5, N, -1, std::fabs(V.NodeVolumeNl[N] - Expected),
               format("node '%s' outputs %.4f nl; yield says %.4f nl",
                      Nd.Name.c_str(), V.NodeVolumeNl[N], Expected));
    }
  }

  // ----- Class 6 (optional): output balance.
  if (Opts.OutputBalancePct >= 0.0) {
    NodeId Ref = InvalidNode;
    for (NodeId N : G.liveNodes()) {
      if (!G.isLeaf(N) || G.node(N).Kind == NodeKind::Excess)
        continue;
      if (Ref == InvalidNode) {
        Ref = N;
        continue;
      }
      double Lo = (1.0 - Opts.OutputBalancePct / 100.0) * V.NodeVolumeNl[Ref];
      double Hi = (1.0 + Opts.OutputBalancePct / 100.0) * V.NodeVolumeNl[Ref];
      double Vol = V.NodeVolumeNl[N];
      if (Vol < Lo - Tol || Vol > Hi + Tol)
        Report(6, N, -1, Vol < Lo ? Lo - Vol : Vol - Hi,
               format("output '%s' (%.4f nl) outside +-%.0f%% of '%s' "
                      "(%.4f nl)",
                      G.node(N).Name.c_str(), Vol, Opts.OutputBalancePct,
                      G.node(Ref).Name.c_str(), V.NodeVolumeNl[Ref]));
    }
  }

  return Out;
}

std::string
aqua::core::violationsToString(const std::vector<Violation> &Violations) {
  if (Violations.empty())
    return "  (no violations)\n";
  std::string Out;
  for (const Violation &V : Violations)
    Out += format("  [class %d] %s\n", V.ConstraintClass, V.Message.c_str());
  return Out;
}
