//===- Partition.cpp - Statically-unknown volumes ------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Partition.h"

#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <map>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

namespace {

/// Minimal union-find over node slots.
class UnionFind {
public:
  explicit UnionFind(int N) : Parent(N) {
    for (int I = 0; I < N; ++I)
      Parent[I] = I;
  }
  int find(int X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void merge(int A, int B) { Parent[find(A)] = find(B); }

private:
  std::vector<int> Parent;
};

} // namespace

Expected<PartitionPlan>
aqua::core::buildPartitionPlan(const AssayGraph &G,
                               [[maybe_unused]] const MachineSpec &Spec) {
  if (Status S = G.verify(); !S.ok())
    return Expected<PartitionPlan>::error("invalid assay graph: " +
                                          S.message());

  PartitionPlan Plan;
  Plan.Graph = G;
  AssayGraph &PG = Plan.Graph;

  // ----- Execution waves: crossing an unknown-volume node's output bumps
  // the wave, because everything beyond it dispenses only after the
  // measurement.
  std::vector<int> Wave(PG.numNodeSlots(), 0);
  for (NodeId N : PG.topologicalOrder())
    for (EdgeId E : PG.inEdges(N)) {
      NodeId Src = PG.edge(E).Src;
      int W = Wave[Src] + (PG.node(Src).UnknownVolume ? 1 : 0);
      Wave[N] = std::max(Wave[N], W);
    }

  // ----- Cut set: a produced node with a use in a later wave cannot wait
  // for that use's volume to become known, so all its out-edges are cut and
  // its output is split conservatively across its N uses (Figure 8).
  std::vector<char> CutAllOut(PG.numNodeSlots(), 0);
  for (NodeId N : PG.liveNodes()) {
    if (PG.node(N).Kind == NodeKind::Input)
      continue;
    for (EdgeId E : PG.outEdges(N))
      if (Wave[PG.edge(E).Dst] > Wave[N])
        CutAllOut[N] = 1;
  }

  // ----- Connected components, with cut edges and input-node out-edges
  // excluded so that partitions don't merge through split fluids. One
  // exception: an input whose consumers all dispense at wave 0 and are not
  // themselves cut is a purely compile-time fluid -- merging through it
  // keeps the static part of the assay a single partition (a fully static
  // assay like glucose must come out as exactly one partition).
  UnionFind UF(PG.numNodeSlots() + 8 * PG.numEdgeSlots() + 64);
  for (EdgeId E : PG.liveEdges()) {
    const Edge &Ed = PG.edge(E);
    if (CutAllOut[Ed.Src])
      continue;
    if (PG.node(Ed.Src).Kind == NodeKind::Input) {
      bool AllStaticConsumers = true;
      for (EdgeId OE : PG.outEdges(Ed.Src)) {
        NodeId Dst = PG.edge(OE).Dst;
        if (Wave[Dst] != 0 || CutAllOut[Dst])
          AllStaticConsumers = false;
      }
      if (!AllStaticConsumers)
        continue;
    }
    UF.merge(Ed.Src, Ed.Dst);
  }

  // ----- Rewire cut produced nodes through constrained inputs, one per
  // consumer partition (the paper's m/N refinement).
  for (NodeId N : PG.liveNodes()) {
    if (!CutAllOut[N])
      continue;
    std::vector<EdgeId> Outs = PG.outEdges(N);
    std::int64_t Uses = static_cast<std::int64_t>(Outs.size());
    std::map<int, std::vector<EdgeId>> ByComp;
    for (EdgeId E : Outs)
      ByComp[UF.find(PG.edge(E).Dst)].push_back(E);
    for (auto &[Comp, Group] : ByComp) {
      (void)Comp;
      NodeId CI = PG.addNode(NodeKind::Input, PG.node(N).Name + "'");
      for (EdgeId E : Group) {
        PG.setEdgeSource(E, CI);
        UF.merge(CI, PG.edge(E).Dst);
      }
      PartitionPlan::ConstrainedInput In;
      In.Node = CI;
      In.Source = N;
      In.Share =
          Rational(static_cast<std::int64_t>(Group.size()), Uses);
      In.FromInputPort = false;
      Plan.Inputs.push_back(In);
    }
  }

  // ----- Input fluids: an input used by a single partition simply belongs
  // to it; one spanning several partitions is split by use count
  // (buffer3a -> two 50 nl constrained inputs in glycomics).
  for (NodeId N : PG.liveNodes()) {
    if (PG.node(N).Kind != NodeKind::Input)
      continue;
    std::vector<EdgeId> Outs = PG.outEdges(N);
    if (Outs.empty())
      continue;
    std::map<int, std::vector<EdgeId>> ByComp;
    for (EdgeId E : Outs)
      ByComp[UF.find(PG.edge(E).Dst)].push_back(E);
    if (ByComp.size() <= 1) {
      UF.merge(N, PG.edge(Outs[0]).Dst);
      continue;
    }
    std::int64_t Uses = static_cast<std::int64_t>(Outs.size());
    for (auto &[Comp, Group] : ByComp) {
      (void)Comp;
      NodeId CI = PG.addNode(NodeKind::Input,
                             format("%s/%zu", PG.node(N).Name.c_str(),
                                    Group.size()));
      for (EdgeId E : Group) {
        PG.setEdgeSource(E, CI);
        UF.merge(CI, PG.edge(E).Dst);
      }
      PartitionPlan::ConstrainedInput In;
      In.Node = CI;
      In.Source = N;
      In.Share = Rational(static_cast<std::int64_t>(Group.size()), Uses);
      In.FromInputPort = true;
      Plan.Inputs.push_back(In);
    }
    PG.removeNode(N);
  }

  // ----- Compile-time Vnorms over the whole partitioned graph; each
  // partition's leaves independently normalize to 1.
  computeVnorms(PG, DagSolveOptions{}, Plan.Vnorms);

  // ----- Assemble partitions ordered by wave.
  std::map<int, int> CompToPart;
  Plan.NodePartition.assign(PG.numNodeSlots(), -1);
  std::vector<PartitionPlan::Part> Parts;
  for (NodeId N : PG.liveNodes()) {
    int Comp = UF.find(N);
    auto [It, Fresh] = CompToPart.try_emplace(Comp, Parts.size());
    if (Fresh)
      Parts.push_back(PartitionPlan::Part{});
    PartitionPlan::Part &P = Parts[It->second];
    P.Members.push_back(N);
    if (N < static_cast<int>(Wave.size()))
      P.Wave = std::max(P.Wave, Wave[N]);
    Rational InV = nodeInputVnorm(PG, N, Plan.Vnorms);
    P.MaxInputVnorm = max(P.MaxInputVnorm, InV);
    Plan.NodePartition[N] = It->second;
  }
  // Constrained-input nodes created after the wave pass inherit their
  // consumers' wave; recompute each part's wave from original members only
  // (done above: new nodes have N >= Wave.size()).
  for (size_t I = 0; I < Plan.Inputs.size(); ++I) {
    int PartIdx = Plan.NodePartition[Plan.Inputs[I].Node];
    Parts[PartIdx].InputRefs.push_back(static_cast<int>(I));
  }

  // Order partitions so every constrained input's producing partition
  // executes first. Wave order usually achieves this, but same-wave
  // partitions can feed one another (a cut fluid consumed by a sibling
  // component), so we topologically sort the partition dependency graph
  // with wave as the tie-break; a dependency cycle (only possible between
  // mutually-feeding same-wave partitions) falls back to wave order and
  // is resolved at run time by the executor's measured-before-consumed
  // check.
  std::vector<int> Order;
  {
    size_t Count = Parts.size();
    std::vector<std::vector<int>> Succ(Count);
    std::vector<int> Pending(Count, 0);
    for (const auto &CI : Plan.Inputs) {
      if (CI.FromInputPort)
        continue;
      int Src = Plan.NodePartition[CI.Source];
      int Dst = Plan.NodePartition[CI.Node];
      if (Src == Dst)
        continue; // Same-partition input: scale-invariant, no ordering.
      Succ[Src].push_back(Dst);
      ++Pending[Dst];
    }
    // Kahn with min-(wave, id) selection for determinism.
    std::vector<char> Emitted(Count, 0);
    while (Order.size() < Count) {
      int Best = -1;
      for (size_t I = 0; I < Count; ++I) {
        if (Emitted[I] || Pending[I] > 0)
          continue;
        if (Best < 0 || Parts[I].Wave < Parts[Best].Wave)
          Best = static_cast<int>(I);
      }
      if (Best < 0)
        break; // Cycle: fall back to wave order for the rest.
      Emitted[Best] = 1;
      Order.push_back(Best);
      for (int S : Succ[Best])
        --Pending[S];
    }
    for (size_t I = 0; I < Count; ++I)
      if (!Emitted[I])
        Order.push_back(static_cast<int>(I));
  }
  std::vector<int> NewIndex(Parts.size());
  for (size_t I = 0; I < Order.size(); ++I)
    NewIndex[Order[I]] = static_cast<int>(I);
  std::vector<PartitionPlan::Part> Sorted(Parts.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Sorted[I] = std::move(Parts[Order[I]]);
  Plan.Parts = std::move(Sorted);
  for (NodeId N = 0; N < PG.numNodeSlots(); ++N)
    if (Plan.NodePartition[N] >= 0)
      Plan.NodePartition[N] = NewIndex[Plan.NodePartition[N]];

  return Plan;
}

VolumeAssignment
aqua::core::dispensePartition(const PartitionPlan &Plan, int PartIndex,
                              const std::vector<double> &AvailableNl,
                              const MachineSpec &Spec) {
  assert(PartIndex >= 0 &&
         PartIndex < static_cast<int>(Plan.Parts.size()) &&
         "bad partition index");
  const PartitionPlan::Part &P = Plan.Parts[PartIndex];
  const AssayGraph &PG = Plan.Graph;

  // Capacity-driven scale, then clamp by every constrained input's
  // available/Vnorm ratio (Section 3.5: "we compute the minimum ratio of
  // each input's Vnorm and the available input volume").
  double Scale = P.MaxInputVnorm.isZero()
                     ? 0.0
                     : Spec.MaxCapacityNl / P.MaxInputVnorm.toDouble();
  for (int Ref : P.InputRefs) {
    const PartitionPlan::ConstrainedInput &CI = Plan.Inputs[Ref];
    // A constrained input whose source lives in this same partition is
    // scale-invariant: both sides scale together, so the constraint
    // Vnorm(CI) <= Share * Vnorm(Source) either always holds or never
    // does (the latter means regeneration territory: dispense nothing).
    if (!CI.FromInputPort &&
        Plan.NodePartition[CI.Source] == PartIndex) {
      if (Plan.Vnorms.NodeVnorm[CI.Node] >
          CI.Share * Plan.Vnorms.NodeVnorm[CI.Source])
        Scale = 0.0;
      continue;
    }
    double Avail = Ref < static_cast<int>(AvailableNl.size())
                       ? AvailableNl[Ref]
                       : -1.0;
    if (Avail < 0.0) {
      assert(CI.FromInputPort &&
             "produced-source constrained input needs a measured volume");
      Avail = CI.Share.toDouble() * Spec.MaxCapacityNl;
    }
    double V = Plan.Vnorms.NodeVnorm[CI.Node].toDouble();
    if (V > 0.0)
      Scale = std::min(Scale, Avail / V);
  }

  VolumeAssignment A;
  A.NodeVolumeNl.assign(PG.numNodeSlots(), 0.0);
  A.EdgeVolumeNl.assign(PG.numEdgeSlots(), 0.0);
  for (NodeId N : P.Members) {
    A.NodeVolumeNl[N] = Plan.Vnorms.NodeVnorm[N].toDouble() * Scale;
    for (EdgeId E : PG.inEdges(N))
      A.EdgeVolumeNl[E] = Plan.Vnorms.EdgeVnorm[E].toDouble() * Scale;
  }
  return A;
}

std::string PartitionPlan::str() const {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    const Part &P = Parts[I];
    Out += format("partition %zu (wave %d, max input Vnorm %s):\n", I,
                  P.Wave, P.MaxInputVnorm.str().c_str());
    for (NodeId N : P.Members)
      Out += format("  n%-3d %-9s %-20s Vnorm %s\n", N,
                    nodeKindName(Graph.node(N).Kind),
                    Graph.node(N).Name.c_str(),
                    Vnorms.NodeVnorm[N].str().c_str());
    for (int Ref : P.InputRefs) {
      const ConstrainedInput &CI = Inputs[Ref];
      Out += format("  constrained input n%d '%s' <- %s of %s%s\n", CI.Node,
                    Graph.node(CI.Node).Name.c_str(), CI.Share.str().c_str(),
                    CI.Source != InvalidNode
                        ? Graph.node(CI.Source).Name.c_str()
                        : "?",
                    CI.FromInputPort ? " (input port)" : " (measured)");
    }
  }
  return Out;
}
