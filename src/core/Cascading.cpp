//===- Cascading.cpp - Extreme-ratio cascading --------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Cascading.h"

#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

std::vector<std::int64_t> aqua::core::cascadeBoundaries(std::int64_t Small,
                                                        std::int64_t Large,
                                                        int Stages) {
  assert(Small >= 1 && Large > Small && Stages >= 1 && "bad cascade request");
  std::int64_t Total = Small + Large;
  std::vector<std::int64_t> Bounds;
  Bounds.push_back(Small);
  // Near-geometric boundaries: a_i = Small * (Total/Small)^(i/k), rounded
  // and kept strictly increasing. A perfect k-th power yields equal stages.
  double Factor = static_cast<double>(Total) / static_cast<double>(Small);
  for (int I = 1; I < Stages; ++I) {
    double Ideal = static_cast<double>(Small) *
                   std::pow(Factor, static_cast<double>(I) / Stages);
    std::int64_t A = static_cast<std::int64_t>(std::llround(Ideal));
    A = std::clamp<std::int64_t>(A, Bounds.back() + 1,
                                 Total - (Stages - I));
    Bounds.push_back(A);
  }
  Bounds.push_back(Total);
  return Bounds;
}

int aqua::core::chooseCascadeStages(std::int64_t Small, std::int64_t Large,
                                    std::int64_t MaxStageSkew, int MaxStages) {
  assert(MaxStageSkew >= 2 && "stage skew bound too tight");
  double Factor = static_cast<double>(Small + Large) /
                  static_cast<double>(Small);
  for (int K = 1; K <= MaxStages; ++K) {
    double StageFactor = std::pow(Factor, 1.0 / K);
    if (StageFactor - 1.0 <= static_cast<double>(MaxStageSkew))
      return K;
  }
  return MaxStages;
}

Rational aqua::core::mixSkew(const AssayGraph &G, NodeId M) {
  std::vector<EdgeId> In = G.inEdges(M);
  if (In.size() < 2)
    return Rational(1);
  Rational Min = G.edge(In[0]).Fraction;
  Rational Max = Min;
  for (EdgeId E : In) {
    Min = min(Min, G.edge(E).Fraction);
    Max = max(Max, G.edge(E).Fraction);
  }
  return Max / Min;
}

Expected<std::vector<NodeId>> aqua::core::binarizeMix(AssayGraph &G,
                                                      NodeId M) {
  using RetTy = Expected<std::vector<NodeId>>;
  // By value: addNode below may grow the node table and invalidate
  // references into it.
  const Node MN = G.node(M);
  if (MN.Kind != NodeKind::Mix)
    return RetTy::error(format("node '%s' is not a mix", MN.Name.c_str()));
  std::vector<EdgeId> In = G.inEdges(M);
  if (In.size() <= 2)
    return RetTy::error(
        format("mix '%s' is already binary", MN.Name.c_str()));

  struct Part {
    NodeId Source;
    Rational Share; // Of the final mixture.
  };
  std::vector<Part> Parts;
  for (EdgeId E : In)
    Parts.push_back(Part{G.edge(E).Src, G.edge(E).Fraction});
  for (EdgeId E : In)
    G.removeEdge(E);

  double Seconds = MN.Params.Seconds;
  std::vector<NodeId> Created;
  int Counter = 0;
  // Huffman-style: repeatedly merge the two smallest shares, so the most
  // extreme contribution ends up isolated in one binary mix.
  while (Parts.size() > 2) {
    std::sort(Parts.begin(), Parts.end(), [](const Part &A, const Part &B) {
      return A.Share < B.Share;
    });
    Part A = Parts[0], B = Parts[1];
    Parts.erase(Parts.begin(), Parts.begin() + 2);
    Rational Sum = A.Share + B.Share;
    NodeId C = G.addNode(NodeKind::Mix,
                         format("%s.bin%d", MN.Name.c_str(), ++Counter));
    G.node(C).Params.Seconds = Seconds;
    G.addEdge(A.Source, C, A.Share / Sum);
    G.addEdge(B.Source, C, B.Share / Sum);
    Created.push_back(C);
    Parts.push_back(Part{C, Sum});
  }
  G.addEdge(Parts[0].Source, M, Parts[0].Share);
  G.addEdge(Parts[1].Source, M, Parts[1].Share);
  return Created;
}

Expected<CascadeInfo> aqua::core::cascadeMix(AssayGraph &G, NodeId M,
                                             int Stages) {
  if (Stages < 2)
    return Expected<CascadeInfo>::error("cascade needs at least two stages");
  // By value: addNode below may grow the node table and invalidate
  // references into it.
  const Node MN = G.node(M);
  if (MN.Kind != NodeKind::Mix)
    return Expected<CascadeInfo>::error(
        format("node '%s' is not a mix", MN.Name.c_str()));
  std::vector<EdgeId> In = G.inEdges(M);
  if (In.size() != 2)
    return Expected<CascadeInfo>::error(
        format("cascading requires a two-input mix; '%s' has %zu inputs",
               MN.Name.c_str(), In.size()));

  EdgeId SmallE = In[0], LargeE = In[1];
  if (G.edge(SmallE).Fraction > G.edge(LargeE).Fraction)
    std::swap(SmallE, LargeE);
  NodeId S = G.edge(SmallE).Src;
  NodeId L = G.edge(LargeE).Src;
  if (G.node(S).NoExcess || G.node(L).NoExcess || MN.NoExcess)
    return Expected<CascadeInfo>::error(
        format("fluid in mix '%s' is marked no-excess; cascading disallowed",
               MN.Name.c_str()));

  // Reduced integer parts p : (T - p) from the exact small fraction p/T.
  Rational FSmall = G.edge(SmallE).Fraction;
  std::int64_t P = FSmall.numerator();
  std::int64_t T = FSmall.denominator();
  if (T - P <= P)
    return Expected<CascadeInfo>::error(
        format("mix '%s' ratio %lld:%lld is not skewed enough to cascade",
               MN.Name.c_str(), static_cast<long long>(P),
               static_cast<long long>(T - P)));

  std::vector<std::int64_t> Bounds = cascadeBoundaries(P, T - P, Stages);

  CascadeInfo Info;
  double Seconds = MN.Params.Seconds;
  G.removeEdge(SmallE);
  G.removeEdge(LargeE);

  NodeId Prev = S;
  std::int64_t PrevParts = Bounds[0];
  for (int I = 1; I < Stages; ++I) {
    std::int64_t A = Bounds[I];
    NodeId C = G.addNode(NodeKind::Mix,
                         format("%s.casc%d", MN.Name.c_str(), I));
    G.node(C).Params.Seconds = Seconds;
    G.addEdge(Prev, C, Rational(PrevParts, A));
    G.addEdge(L, C, Rational(A - PrevParts, A));
    Info.StageMixes.push_back(C);

    // Excess: when every cascade volume equals the final mix volume, stage
    // i+1 consumes a_i/a_{i+1} of this intermediate; the rest is discarded
    // -- a fraction known a priori (Section 3.4.1).
    std::int64_t Next = Bounds[I + 1];
    NodeId X = G.addNode(NodeKind::Excess,
                         format("%s.excess%d", MN.Name.c_str(), I));
    G.node(X).ExcessShare = Rational(Next - A, Next);
    G.addEdge(C, X, Rational(1));
    Info.ExcessNodes.push_back(X);

    Prev = C;
    PrevParts = A;
  }

  // Final stage reuses the original node so downstream edges stay intact.
  G.addEdge(Prev, M, Rational(PrevParts, T));
  G.addEdge(L, M, Rational(T - PrevParts, T));
  Info.StageMixes.push_back(M);
  return Info;
}
