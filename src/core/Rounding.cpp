//===- Rounding.cpp - RVol to IVol rounding -----------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Rounding.h"

#include <cmath>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

IntegerAssignment aqua::core::roundToLeastCount(const AssayGraph &G,
                                                const VolumeAssignment &RVol,
                                                const MachineSpec &Spec) {
  IntegerAssignment IVol;
  IVol.NodeUnits.assign(G.numNodeSlots(), 0);
  IVol.EdgeUnits.assign(G.numEdgeSlots(), 0);

  for (EdgeId E : G.liveEdges()) {
    double Units = Spec.toUnits(RVol.EdgeVolumeNl[E]);
    IVol.EdgeUnits[E] = static_cast<std::int64_t>(std::llround(Units));
    if (IVol.EdgeUnits[E] < 1)
      IVol.Underflow = true;
  }

  std::int64_t Cap = Spec.capacityUnits();
  for (NodeId N : G.topologicalOrder()) {
    const Node &Nd = G.node(N);
    std::vector<EdgeId> In = G.inEdges(N);
    if (In.empty()) {
      // Input node: round its own drawn volume.
      IVol.NodeUnits[N] = static_cast<std::int64_t>(
          std::llround(Spec.toUnits(RVol.NodeVolumeNl[N])));
    } else {
      std::int64_t Sum = 0;
      for (EdgeId E : In)
        Sum += IVol.EdgeUnits[E];
      if (Sum > Cap)
        IVol.Overflow = true;
      // Output volume: yield fraction of the (integer) input, rounded.
      if (Nd.OutFraction == Rational(1) || Nd.UnknownVolume) {
        IVol.NodeUnits[N] = Sum;
      } else {
        IVol.NodeUnits[N] = (Nd.OutFraction * Rational(Sum)).roundNearest();
      }
    }
    if (IVol.NodeUnits[N] > Cap)
      IVol.Overflow = true;

    // Conservation: trim rounded-up uses so the consumers' integer demand
    // never exceeds the producer's integer volume. Excess-node edges soak
    // up slack implicitly, so only real uses are counted.
    std::vector<EdgeId> Uses;
    std::int64_t Demand = 0;
    for (EdgeId E : G.outEdges(N)) {
      if (G.node(G.edge(E).Dst).Kind == NodeKind::Excess)
        continue;
      Uses.push_back(E);
      Demand += IVol.EdgeUnits[E];
    }
    while (Demand > IVol.NodeUnits[N]) {
      EdgeId Best = -1;
      double BestSurplus = -1e18;
      for (EdgeId E : Uses) {
        if (IVol.EdgeUnits[E] <= 1)
          continue;
        double Surplus = static_cast<double>(IVol.EdgeUnits[E]) -
                         Spec.toUnits(RVol.EdgeVolumeNl[E]);
        if (Surplus > BestSurplus) {
          BestSurplus = Surplus;
          Best = E;
        }
      }
      if (Best < 0) {
        IVol.Underflow = true;
        break;
      }
      --IVol.EdgeUnits[Best];
      --Demand;
    }
  }

  auto [MaxErr, MeanErr] = mixRatioErrorPct(G, IVol);
  IVol.MaxRatioErrorPct = MaxErr;
  IVol.MeanRatioErrorPct = MeanErr;
  return IVol;
}

VolumeAssignment aqua::core::integerToNl(const AssayGraph &G,
                                         const IntegerAssignment &IVol,
                                         const MachineSpec &Spec) {
  VolumeAssignment A;
  A.NodeVolumeNl.assign(G.numNodeSlots(), 0.0);
  A.EdgeVolumeNl.assign(G.numEdgeSlots(), 0.0);
  for (NodeId N : G.liveNodes())
    A.NodeVolumeNl[N] =
        static_cast<double>(IVol.NodeUnits[N]) * Spec.LeastCountNl;
  for (EdgeId E : G.liveEdges())
    A.EdgeVolumeNl[E] =
        static_cast<double>(IVol.EdgeUnits[E]) * Spec.LeastCountNl;
  return A;
}

std::pair<double, double>
aqua::core::mixRatioErrorPct(const AssayGraph &G,
                             const IntegerAssignment &IVol) {
  double MaxErr = 0.0;
  double SumErr = 0.0;
  int Count = 0;
  for (NodeId N : G.liveNodes()) {
    if (G.node(N).Kind != NodeKind::Mix)
      continue;
    std::vector<EdgeId> In = G.inEdges(N);
    std::int64_t Total = 0;
    for (EdgeId E : In)
      Total += IVol.EdgeUnits[E];
    if (Total == 0)
      continue;
    for (EdgeId E : In) {
      double Achieved =
          static_cast<double>(IVol.EdgeUnits[E]) / static_cast<double>(Total);
      double Exact = G.edge(E).Fraction.toDouble();
      double Err = std::fabs(Achieved - Exact) / Exact * 100.0;
      MaxErr = std::max(MaxErr, Err);
      SumErr += Err;
      ++Count;
    }
  }
  return {MaxErr, Count ? SumErr / Count : 0.0};
}
