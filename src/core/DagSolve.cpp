//===- DagSolve.cpp - Linear-time volume assignment ---------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/DagSolve.h"

#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"
#include "aqua/support/Fatal.h"

#include <algorithm>
#include <limits>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

/// Returns the node's input-side relative volume: output Vnorm divided by
/// the output fraction (a separation holding 100 units must have been fed
/// 100/f units). Unknown-volume nodes are treated as yield-1 because their
/// true yield is measured at run time (Section 3.5).
static Rational inputVnorm(const Node &Nd, const Rational &OutVnorm) {
  if (Nd.UnknownVolume || Nd.Kind == NodeKind::Input)
    return OutVnorm;
  if (Nd.OutFraction == Rational(1))
    return OutVnorm;
  return OutVnorm / Nd.OutFraction;
}

Rational aqua::core::nodeInputVnorm(const AssayGraph &G, NodeId N,
                                    const DagSolveResult &Vnorms) {
  return inputVnorm(G.node(N), Vnorms.NodeVnorm[N]);
}

void aqua::core::computeVnorms(const AssayGraph &G, const DagSolveOptions &Opts,
                               DagSolveResult &Result) {
  Result.NodeVnorm.assign(G.numNodeSlots(), Rational(0));
  Result.EdgeVnorm.assign(G.numEdgeSlots(), Rational(0));

  // Figure 4 line 2: leaf (output) nodes get Vnorm 1, or their configured
  // weight. Excess leaves are skipped here; their Vnorm derives from their
  // source below.
  for (NodeId N : G.liveNodes()) {
    const Node &Nd = G.node(N);
    if (Nd.Kind == NodeKind::Excess || !G.isLeaf(N))
      continue;
    Rational Weight(1);
    for (const auto &[Out, W] : Opts.OutputWeights)
      if (Out == N)
        Weight = W;
    Result.NodeVnorm[N] = Weight;
  }

  // Figure 4 lines 3-7: reverse topological order. Each node's Vnorm is the
  // sum of its out-edge Vnorms (flow conservation); each in-edge is the mix
  // fraction times the node's input-side Vnorm.
  std::vector<NodeId> Order = G.topologicalOrder();
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    NodeId N = *It;
    const Node &Nd = G.node(N);
    if (Nd.Kind == NodeKind::Excess)
      continue; // Derived from the source, below.

    std::vector<EdgeId> Outs = G.outEdges(N);
    if (!Outs.empty()) {
      Rational Sum(0);
      Rational ExcessShare(0);
      for (EdgeId E : Outs) {
        const Node &Dst = G.node(G.edge(E).Dst);
        if (Dst.Kind == NodeKind::Excess)
          ExcessShare += Dst.ExcessShare;
        else
          Sum += Result.EdgeVnorm[E];
      }
      // Section 3.4.1: a node feeding excess nodes produces
      // Sum / (1 - share); the discarded fraction is known a priori.
      if (ExcessShare.isZero()) {
        Result.NodeVnorm[N] = Sum;
      } else {
        if (ExcessShare >= Rational(1))
          reportFatalError("excess shares at a node sum to >= 1");
        Result.NodeVnorm[N] = Sum / (Rational(1) - ExcessShare);
      }
      // Now that the source is known, fill in the excess edges and nodes.
      for (EdgeId E : Outs) {
        NodeId DstId = G.edge(E).Dst;
        const Node &Dst = G.node(DstId);
        if (Dst.Kind != NodeKind::Excess)
          continue;
        Rational V = Dst.ExcessShare * Result.NodeVnorm[N];
        Result.EdgeVnorm[E] = V;
        Result.NodeVnorm[DstId] = V;
      }
    }
    // else: leaf, already seeded above.

    Rational InVnorm = inputVnorm(Nd, Result.NodeVnorm[N]);
    for (EdgeId E : G.inEdges(N))
      Result.EdgeVnorm[E] = G.edge(E).Fraction * InVnorm;
  }

  // Figure 4 line 8: the maximum Vnorm. The binding constraint is the
  // input-side volume (what the functional unit holds during the
  // operation), which is >= the output volume.
  Result.MaxVnorm = Rational(0);
  Result.MaxVnormNode = InvalidNode;
  for (NodeId N : G.liveNodes()) {
    Rational InV = inputVnorm(G.node(N), Result.NodeVnorm[N]);
    if (InV > Result.MaxVnorm) {
      Result.MaxVnorm = InV;
      Result.MaxVnormNode = N;
    }
  }
}

VolumeAssignment aqua::core::dispenseVolumes(const AssayGraph &G,
                                             const DagSolveResult &Vnorms,
                                             double NlPerVnorm) {
  VolumeAssignment A;
  A.NodeVolumeNl.assign(G.numNodeSlots(), 0.0);
  A.EdgeVolumeNl.assign(G.numEdgeSlots(), 0.0);
  for (NodeId N : G.liveNodes())
    A.NodeVolumeNl[N] = Vnorms.NodeVnorm[N].toDouble() * NlPerVnorm;
  for (EdgeId E : G.liveEdges())
    A.EdgeVolumeNl[E] = Vnorms.EdgeVnorm[E].toDouble() * NlPerVnorm;
  return A;
}

DagSolveResult aqua::core::dagSolve(const AssayGraph &G,
                                    const MachineSpec &Spec,
                                    const DagSolveOptions &Opts) {
  AQUA_TRACE_SPAN("core.dagsolve", "core");
  struct DagMetrics {
    obs::Counter &Runs = obs::metrics().counter("core.dagsolve.runs");
    obs::Counter &Infeasible =
        obs::metrics().counter("core.dagsolve.infeasible");
  };
  static DagMetrics Met;
  Met.Runs.add();

  DagSolveResult Result;
  computeVnorms(G, Opts, Result);

  if (Result.MaxVnorm.isZero()) {
    // Degenerate graph (no live nodes, or all volumes zero).
    Result.Feasible = false;
    Met.Infeasible.add();
    return Result;
  }

  // Figure 4 lines 9-11: dispense. By default the largest (input-side)
  // Vnorm gets the machine maximum; the §3.5 loop strategy instead pins a
  // chosen node to a caller-specified volume.
  double NlPerVnorm;
  if (Opts.PinnedNode) {
    Rational Pin = Result.NodeVnorm[*Opts.PinnedNode];
    if (Pin.isZero()) {
      Result.Feasible = false;
      Met.Infeasible.add();
      return Result;
    }
    NlPerVnorm = Opts.PinnedVolumeNl / Pin.toDouble();
  } else {
    NlPerVnorm = Spec.MaxCapacityNl / Result.MaxVnorm.toDouble();
  }
  Result.Volumes = dispenseVolumes(G, Result, NlPerVnorm);

  // Feasibility: every dispensed edge meets the least count; every node's
  // input-side volume fits in the hardware.
  constexpr double Tol = 1e-9;
  Result.MinDispenseNl = std::numeric_limits<double>::infinity();
  Result.MinEdge = -1;
  for (EdgeId E : G.liveEdges()) {
    double V = Result.Volumes.EdgeVolumeNl[E];
    if (V < Result.MinDispenseNl) {
      Result.MinDispenseNl = V;
      Result.MinEdge = E;
    }
  }
  bool Under = Result.MinEdge >= 0 &&
               Result.MinDispenseNl < Spec.LeastCountNl - Tol;
  bool Over = false;
  for (NodeId N : G.liveNodes()) {
    double InVol = inputVnorm(G.node(N), Result.NodeVnorm[N]).toDouble() *
                   NlPerVnorm;
    if (InVol > Spec.MaxCapacityNl + Tol)
      Over = true;
  }
  Result.Feasible = !Under && !Over;
  if (!Result.Feasible)
    Met.Infeasible.add();
  return Result;
}
