//===- Formulation.cpp - ILP/LP formulation of IVol/RVol ----------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Formulation.h"

#include "aqua/support/StringUtils.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace aqua::lp;

Formulation aqua::core::buildVolumeModel(const AssayGraph &G,
                                         const MachineSpec &Spec,
                                         const FormulationOptions &Opts) {
  Formulation F;
  F.EdgeVar.assign(G.numEdgeSlots(), -1);
  F.NodeVar.assign(G.numNodeSlots(), -1);
  Model &M = F.Model;
  M.setMaximize(true);

  const double Unit = Opts.UnitNl;
  const double LeastCount = Spec.LeastCountNl / Unit;
  const double Capacity = Spec.MaxCapacityNl / Unit;

  // --- Variables. Class 1 (minimum volume) is carried as the lower bound
  // of every edge variable but counted as a constraint per the paper.
  for (EdgeId E : G.liveEdges()) {
    const Edge &Ed = G.edge(E);
    F.EdgeVar[E] = M.addVar(format("e%d_%s_to_%s", E,
                                   G.node(Ed.Src).Name.c_str(),
                                   G.node(Ed.Dst).Name.c_str()),
                            LeastCount, Infinity);
    ++F.CountedConstraints; // Class 1.
  }
  for (NodeId N : G.liveNodes()) {
    F.NodeVar[N] = M.addVar(format("n%d_%s", N, G.node(N).Name.c_str()), 0.0,
                            Infinity);
  }

  // Constrained-input upper bounds (Section 3.5).
  for (const auto &[N, UbNl] : Opts.NodeUpperBoundNl)
    if (F.NodeVar[N] >= 0)
      M.tightenUpper(F.NodeVar[N], UbNl / Unit);

  for (NodeId N : G.liveNodes()) {
    const Node &Nd = G.node(N);
    std::vector<EdgeId> In = G.inEdges(N);
    std::vector<EdgeId> Out = G.outEdges(N);

    // --- Class 2: maximum capacity. For producing nodes the functional
    // unit holds the sum of the in-edge volumes; input nodes hold their own
    // drawn volume in a reservoir.
    if (In.empty()) {
      M.addRow(format("cap_n%d", N), RowKind::LE, Capacity,
               {Term{F.NodeVar[N], 1.0}});
    } else {
      std::vector<Term> Terms;
      Terms.reserve(In.size());
      for (EdgeId E : In)
        Terms.push_back(Term{F.EdgeVar[E], 1.0});
      M.addRow(format("cap_n%d", N), RowKind::LE, Capacity, std::move(Terms));
    }
    ++F.CountedConstraints;

    // --- Class 3: non-deficit (sum of uses <= volume). With the ablation
    // option this becomes DAGSolve's flow-conservation equality.
    if (!Out.empty()) {
      std::vector<Term> Terms;
      Terms.reserve(Out.size() + 1);
      for (EdgeId E : Out)
        Terms.push_back(Term{F.EdgeVar[E], 1.0});
      Terms.push_back(Term{F.NodeVar[N], -1.0});
      M.addRow(format("nodeficit_n%d", N),
               Opts.FlowConservation ? RowKind::EQ : RowKind::LE, 0.0,
               std::move(Terms));
      ++F.CountedConstraints;
    }

    // --- Class 4: ratio constraints for mixes: each in-edge proportional
    // to the first (k-1 equality rows for k inputs).
    if (Nd.Kind == NodeKind::Mix && In.size() >= 2) {
      EdgeId Ref = In[0];
      double FRef = G.edge(Ref).Fraction.toDouble();
      for (size_t I = 1; I < In.size(); ++I) {
        double FI = G.edge(In[I]).Fraction.toDouble();
        // FRef * x_i - FI * x_ref = 0.
        M.addRow(format("ratio_n%d_%zu", N, I), RowKind::EQ, 0.0,
                 {Term{F.EdgeVar[In[I]], FRef}, Term{F.EdgeVar[Ref], -FI}});
        ++F.CountedConstraints;
      }
    }

    // --- Class 5: node output relative to input. Unknown-volume nodes use
    // yield 1 at compile time; their true yield is measured at run time.
    if (!In.empty()) {
      double Yield =
          Nd.UnknownVolume ? 1.0 : Nd.OutFraction.toDouble();
      std::vector<Term> Terms;
      Terms.reserve(In.size() + 1);
      Terms.push_back(Term{F.NodeVar[N], 1.0});
      for (EdgeId E : In)
        Terms.push_back(Term{F.EdgeVar[E], -Yield});
      M.addRow(format("yield_n%d", N), RowKind::EQ, 0.0, std::move(Terms));
      ++F.CountedConstraints;
    }
  }

  // --- Objective and class 6: outputs. Excess nodes are deliberate waste:
  // they are neither maximized nor balanced.
  std::vector<NodeId> Outputs;
  for (NodeId N : G.liveNodes())
    if (G.isLeaf(N) && G.node(N).Kind != NodeKind::Excess)
      Outputs.push_back(N);
  for (NodeId N : Outputs)
    M.setObjCoef(F.NodeVar[N], 1.0);

  if (Outputs.size() >= 2 && (Opts.OutputBalance || Opts.EqualOutputs)) {
    NodeId Ref = Outputs[0];
    for (size_t I = 1; I < Outputs.size(); ++I) {
      VarId O = F.NodeVar[Outputs[I]];
      VarId R = F.NodeVar[Ref];
      if (Opts.EqualOutputs) {
        M.addRow(format("eqout_%zu", I), RowKind::EQ, 0.0,
                 {Term{O, 1.0}, Term{R, -1.0}});
        ++F.CountedConstraints;
        continue;
      }
      double Lo = 1.0 - Opts.OutputBalancePct / 100.0;
      double Hi = 1.0 + Opts.OutputBalancePct / 100.0;
      // Lo*ref <= out <= Hi*ref.
      M.addRow(format("ballo_%zu", I), RowKind::GE, 0.0,
               {Term{O, 1.0}, Term{R, -Lo}});
      M.addRow(format("balhi_%zu", I), RowKind::LE, 0.0,
               {Term{O, 1.0}, Term{R, -Hi}});
      F.CountedConstraints += 2;
    }
  }

  return F;
}

VolumeAssignment aqua::core::extractAssignment(const AssayGraph &G,
                                               const Formulation &F,
                                               const lp::Solution &Sol,
                                               const FormulationOptions &Opts) {
  VolumeAssignment A;
  A.NodeVolumeNl.assign(G.numNodeSlots(), 0.0);
  A.EdgeVolumeNl.assign(G.numEdgeSlots(), 0.0);
  if (Sol.Values.empty())
    return A;
  for (NodeId N : G.liveNodes())
    A.NodeVolumeNl[N] = Sol.Values[F.NodeVar[N]] * Opts.UnitNl;
  for (EdgeId E : G.liveEdges())
    A.EdgeVolumeNl[E] = Sol.Values[F.EdgeVar[E]] * Opts.UnitNl;
  return A;
}

LPVolumeResult aqua::core::solveRVolLP(const AssayGraph &G,
                                       const MachineSpec &Spec,
                                       const FormulationOptions &FOpts,
                                       const lp::SolverOptions &SOpts) {
  LPVolumeResult R;
  Formulation F = buildVolumeModel(G, Spec, FOpts);
  R.CountedConstraints = F.CountedConstraints;
  R.Solution = lp::solve(F.Model, SOpts, &R.Info);
  R.Volumes = extractAssignment(G, F, R.Solution, FOpts);
  return R;
}
