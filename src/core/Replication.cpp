//===- Replication.cpp - Static replication -----------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Replication.h"

#include "aqua/support/StringUtils.h"

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

Expected<std::vector<NodeId>>
aqua::core::replicateNode(AssayGraph &G, NodeId N, int Copies,
                          const MachineSpec &Spec) {
  using RetTy = Expected<std::vector<NodeId>>;
  if (Copies < 2)
    return RetTy::error("replication needs at least two copies");
  // By value: addNode below may grow the node table and invalidate
  // references into it.
  const Node Nd = G.node(N);
  if (Nd.Kind == NodeKind::Excess)
    return RetTy::error("cannot replicate an excess node");
  std::vector<EdgeId> Outs = G.outEdges(N);
  if (static_cast<int>(Outs.size()) < Copies)
    return RetTy::error(
        format("node '%s' has only %zu uses; cannot split across %d replicas",
               Nd.Name.c_str(), Outs.size(), Copies));

  // Resource check: replication adds nodes (and, for inputs, reservoirs).
  int NewNodes = Copies - 1;
  if (G.numNodes() + NewNodes > Spec.Limits.MaxNodes)
    return RetTy::error("replication exceeds the PLoC's operation budget");
  if (Nd.Kind == NodeKind::Input) {
    int Inputs = 0;
    for (NodeId L : G.liveNodes())
      if (G.node(L).Kind == NodeKind::Input)
        ++Inputs;
    if (Inputs + NewNodes > Spec.Limits.MaxInputs)
      return RetTy::error("replication exceeds the PLoC's input reservoirs");
  }

  std::vector<NodeId> Replicas{N};
  for (int C = 1; C < Copies; ++C) {
    NodeId R = G.addNode(Nd.Kind, format("%s.rep%d", Nd.Name.c_str(), C));
    Node &RN = G.node(R);
    RN.OutFraction = Nd.OutFraction;
    RN.UnknownVolume = Nd.UnknownVolume;
    RN.NoExcess = Nd.NoExcess;
    RN.Params = Nd.Params;
    // Clone the in-edges: replicas share the original's sources, which is
    // what increases the predecessors' use counts.
    for (EdgeId E : G.inEdges(N))
      G.addEdge(G.edge(E).Src, R, G.edge(E).Fraction);
    Replicas.push_back(R);
  }

  // Distribute the original uses round-robin across the replicas.
  for (size_t I = 0; I < Outs.size(); ++I)
    G.setEdgeSource(Outs[I], Replicas[I % Replicas.size()]);
  return Replicas;
}
