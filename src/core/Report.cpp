//===- Report.cpp - Volume-management reporting ----------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/core/Report.h"

#include "aqua/support/StringUtils.h"

#include <algorithm>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;

VolumeReport aqua::core::buildVolumeReport(const AssayGraph &G,
                                           const VolumeAssignment &V) {
  VolumeReport R;
  for (NodeId N : G.liveNodes()) {
    const Node &Nd = G.node(N);
    if (Nd.Kind == NodeKind::Excess)
      continue;

    FluidUsage U;
    U.Node = N;
    U.Name = Nd.Name;
    U.ProducedNl = V.NodeVolumeNl[N];
    for (EdgeId E : G.outEdges(N)) {
      if (G.node(G.edge(E).Dst).Kind == NodeKind::Excess) {
        U.ExcessNl += V.EdgeVolumeNl[E];
      } else {
        ++U.Uses;
        U.ConsumedNl += V.EdgeVolumeNl[E];
      }
    }
    // A leaf's volume is the delivered product, not leftover residue.
    U.LeftoverNl = G.isLeaf(N)
                       ? 0.0
                       : std::max(0.0, U.ProducedNl - U.ConsumedNl -
                                           U.ExcessNl);

    if (Nd.Kind == NodeKind::Input)
      R.TotalInputNl += U.ProducedNl;
    if (G.isLeaf(N))
      R.TotalOutputNl += U.ProducedNl;
    R.TotalExcessNl += U.ExcessNl;
    R.TotalLeftoverNl += U.LeftoverNl;
    R.Fluids.push_back(std::move(U));
  }
  return R;
}

std::string VolumeReport::str() const {
  std::string Out = format("  %-22s %5s %10s %10s %9s %9s %6s\n", "fluid",
                           "uses", "produced", "consumed", "excess",
                           "leftover", "util");
  for (const FluidUsage &U : Fluids)
    Out += format("  %-22s %5d %8.2f nl %8.2f nl %6.2f nl %6.2f nl %5.0f%%\n",
                  U.Name.c_str(), U.Uses, U.ProducedNl, U.ConsumedNl,
                  U.ExcessNl, U.LeftoverNl, U.utilization() * 100.0);
  Out += format("  totals: input %.2f nl, outputs %.2f nl, excess %.2f nl, "
                "leftover %.2f nl\n",
                TotalInputNl, TotalOutputNl, TotalExcessNl, TotalLeftoverNl);
  return Out;
}
