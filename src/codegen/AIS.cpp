//===- AIS.cpp - AquaCore Instruction Set ---------------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/codegen/AIS.h"

#include "aqua/support/StringUtils.h"

using namespace aqua;
using namespace aqua::codegen;

std::string Loc::str() const {
  std::string Base;
  switch (Kind) {
  case LocKind::None:
    return "<none>";
  case LocKind::Reservoir:
    return format("s%d", Index);
  case LocKind::InputPort:
    return format("ip%d", Index);
  case LocKind::OutputPort:
    return format("op%d", Index);
  case LocKind::Mixer:
    Base = format("mixer%d", Index);
    break;
  case LocKind::Heater:
    Base = format("heater%d", Index);
    break;
  case LocKind::Sensor:
    Base = format("sensor%d", Index);
    break;
  case LocKind::Separator:
    Base = format("separator%d", Index);
    break;
  }
  switch (Sub) {
  case SubPort::None:
    return Base;
  case SubPort::Matrix:
    return Base + ".matrix";
  case SubPort::Pusher:
    return Base + ".pusher";
  case SubPort::Out1:
    return Base + ".out1";
  }
  AQUA_UNREACHABLE("bad SubPort");
}

const char *aqua::codegen::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Input:
    return "input";
  case Opcode::Move:
    return "move";
  case Opcode::MoveAbs:
    return "move-abs";
  case Opcode::Mix:
    return "mix";
  case Opcode::Incubate:
    return "incubate";
  case Opcode::SeparateAF:
    return "separate.AF";
  case Opcode::SeparateLC:
    return "separate.LC";
  case Opcode::SenseOD:
    return "sense.OD";
  case Opcode::SenseFL:
    return "sense.FL";
  case Opcode::Concentrate:
    return "concentrate";
  case Opcode::Output:
    return "output";
  }
  AQUA_UNREACHABLE("bad Opcode");
}

std::string Instruction::str() const {
  switch (Op) {
  case Opcode::Input:
    return format("input %s, %s%s%s", Dst.str().c_str(), Src.str().c_str(),
                  Note.empty() ? "" : " ;", Note.c_str());
  case Opcode::Move:
    if (RelParts > 0)
      return format("move %s, %s, %lld", Dst.str().c_str(),
                    Src.str().c_str(), static_cast<long long>(RelParts));
    return format("move %s, %s", Dst.str().c_str(), Src.str().c_str());
  case Opcode::MoveAbs:
    return format("move-abs %s, %s, %s", Dst.str().c_str(),
                  Src.str().c_str(), formatTrimmed(VolumeNl, 4).c_str());
  case Opcode::Mix:
    return format("mix %s, %s", Dst.str().c_str(),
                  formatTrimmed(Seconds, 1).c_str());
  case Opcode::Incubate:
    return format("incubate %s, %s, %s", Dst.str().c_str(),
                  formatTrimmed(TempC, 1).c_str(),
                  formatTrimmed(Seconds, 1).c_str());
  case Opcode::SeparateAF:
  case Opcode::SeparateLC:
    return format("%s %s, %s", opcodeName(Op), Dst.str().c_str(),
                  formatTrimmed(Seconds, 1).c_str());
  case Opcode::SenseOD:
  case Opcode::SenseFL:
    return format("%s %s, %s", opcodeName(Op), Dst.str().c_str(),
                  Note.c_str());
  case Opcode::Concentrate:
    return format("concentrate %s, %s, %s", Dst.str().c_str(),
                  formatTrimmed(TempC, 1).c_str(),
                  formatTrimmed(Seconds, 1).c_str());
  case Opcode::Output:
    return format("output %s, %s", Dst.str().c_str(), Src.str().c_str());
  }
  AQUA_UNREACHABLE("bad Opcode");
}

std::string AISProgram::str() const {
  std::string Out;
  for (const Instruction &I : Instrs) {
    Out += I.str();
    Out += "\n";
  }
  return Out;
}
