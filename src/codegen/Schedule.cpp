//===- Schedule.cpp - Wet-path operation scheduling ------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/codegen/Schedule.h"

#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <map>
#include <queue>

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::ir;

namespace {

/// The unit kind an operation occupies (None for inputs/excess, which
/// need no functional unit).
LocKind unitKindFor(const Node &Nd) {
  switch (Nd.Kind) {
  case NodeKind::Mix:
    return LocKind::Mixer;
  case NodeKind::Incubate:
    return LocKind::Heater;
  case NodeKind::Sense:
    return LocKind::Sensor;
  case NodeKind::Separate:
    return Nd.Params.Flavor == "CONC" ? LocKind::Heater
                                      : LocKind::Separator;
  case NodeKind::Input:
  case NodeKind::Output:
  case NodeKind::Excess:
    return LocKind::None;
  }
  AQUA_UNREACHABLE("bad NodeKind");
}

/// Wet duration of one operation: operand transfers plus the operation
/// itself (mirrors the simulator's timing model).
double durationFor(const AssayGraph &G, NodeId N, double MoveSeconds) {
  const Node &Nd = G.node(N);
  switch (Nd.Kind) {
  case NodeKind::Input:
    return MoveSeconds; // Port fill.
  case NodeKind::Excess:
    return 0.0; // Discard happens with the producer's bookkeeping.
  case NodeKind::Output:
    return MoveSeconds;
  case NodeKind::Sense:
    return MoveSeconds * static_cast<double>(G.inEdges(N).size()) + 1.0;
  case NodeKind::Mix:
  case NodeKind::Incubate:
    return MoveSeconds * static_cast<double>(G.inEdges(N).size()) +
           Nd.Params.Seconds;
  case NodeKind::Separate: {
    // Matrix and pusher loads are transfers too.
    int Loads = static_cast<int>(G.inEdges(N).size());
    if (!Nd.Params.Matrix.empty())
      ++Loads;
    if (!Nd.Params.Pusher.empty())
      ++Loads;
    return MoveSeconds * Loads + Nd.Params.Seconds;
  }
  }
  AQUA_UNREACHABLE("bad NodeKind");
}

} // namespace

Expected<Schedule> aqua::codegen::scheduleAssay(const AssayGraph &G,
                                                const ScheduleOptions &Opts) {
  if (Status S = G.verify(); !S.ok())
    return Expected<Schedule>::error("invalid assay graph: " + S.message());

  Schedule Sched;
  std::vector<NodeId> Topo = G.topologicalOrder();

  // Durations and the critical-path priority (longest path to a sink).
  std::vector<double> Duration(G.numNodeSlots(), 0.0);
  std::vector<double> Priority(G.numNodeSlots(), 0.0);
  for (NodeId N : Topo) {
    Duration[N] = durationFor(G, N, Opts.MoveSeconds);
    Sched.SerialSeconds += Duration[N];
  }
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    NodeId N = *It;
    double Best = 0.0;
    for (EdgeId E : G.outEdges(N))
      Best = std::max(Best, Priority[G.edge(E).Dst]);
    Priority[N] = Duration[N] + Best;
    Sched.CriticalPathSeconds =
        std::max(Sched.CriticalPathSeconds, Priority[N]);
  }

  // Unit pools: next-free time per instance.
  auto PoolSize = [&](LocKind Kind) {
    switch (Kind) {
    case LocKind::Mixer:
      return Opts.Layout.Mixers;
    case LocKind::Heater:
      return Opts.Layout.Heaters;
    case LocKind::Sensor:
      return Opts.Layout.Sensors;
    case LocKind::Separator:
      return Opts.Layout.Separators;
    default:
      return 0;
    }
  };
  std::map<LocKind, std::vector<double>> FreeAt;
  for (LocKind Kind : {LocKind::Mixer, LocKind::Heater, LocKind::Sensor,
                       LocKind::Separator}) {
    if (PoolSize(Kind) <= 0)
      return Expected<Schedule>::error(
          "machine has no instance of a required unit kind");
    FreeAt[Kind].assign(PoolSize(Kind), 0.0);
  }

  // List scheduling: ready ops by (priority desc, id asc).
  std::vector<int> Pending(G.numNodeSlots(), 0);
  std::vector<double> ReadyAt(G.numNodeSlots(), 0.0);
  auto Cmp = [&](NodeId A, NodeId B) {
    if (Priority[A] != Priority[B])
      return Priority[A] < Priority[B]; // Max-heap on priority.
    return A > B;
  };
  std::priority_queue<NodeId, std::vector<NodeId>, decltype(Cmp)> Ready(Cmp);
  for (NodeId N : Topo) {
    Pending[N] = static_cast<int>(G.inEdges(N).size());
    if (Pending[N] == 0)
      Ready.push(N);
  }

  std::vector<double> EndTime(G.numNodeSlots(), 0.0);
  int Scheduled = 0;
  while (!Ready.empty()) {
    NodeId N = Ready.top();
    Ready.pop();
    ++Scheduled;

    LocKind Kind = unitKindFor(G.node(N));
    ScheduledOp Op;
    Op.Node = N;
    Op.UnitKind = Kind;
    double Start = ReadyAt[N];
    if (Kind != LocKind::None) {
      // Earliest-free instance.
      std::vector<double> &Pool = FreeAt[Kind];
      size_t BestUnit = 0;
      for (size_t I = 1; I < Pool.size(); ++I)
        if (Pool[I] < Pool[BestUnit])
          BestUnit = I;
      Start = std::max(Start, Pool[BestUnit]);
      Pool[BestUnit] = Start + Duration[N];
      Op.UnitIndex = static_cast<int>(BestUnit) + 1;
    }
    Op.StartSec = Start;
    Op.EndSec = Start + Duration[N];
    EndTime[N] = Op.EndSec;
    Sched.MakespanSeconds = std::max(Sched.MakespanSeconds, Op.EndSec);
    Sched.Ops.push_back(Op);

    for (EdgeId E : G.outEdges(N)) {
      NodeId Dst = G.edge(E).Dst;
      ReadyAt[Dst] = std::max(ReadyAt[Dst], Op.EndSec);
      if (--Pending[Dst] == 0)
        Ready.push(Dst);
    }
  }
  if (Scheduled != G.numNodes())
    return Expected<Schedule>::error("cycle in assay graph");
  return Sched;
}

std::string Schedule::str(const AssayGraph &G) const {
  std::string Out =
      format("makespan %.0f s, serial %.0f s, critical path %.0f s, "
             "speedup %.2fx\n",
             MakespanSeconds, SerialSeconds, CriticalPathSeconds, speedup());
  for (const ScheduledOp &Op : Ops) {
    std::string Unit =
        Op.UnitKind == LocKind::None
            ? std::string("-")
            : Loc{Op.UnitKind, Op.UnitIndex, SubPort::None}.str();
    Out += format("  %8.0f .. %8.0f  %-10s %s\n", Op.StartSec, Op.EndSec,
                  Unit.c_str(), G.node(Op.Node).Name.c_str());
  }
  return Out;
}
