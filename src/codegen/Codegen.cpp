//===- Codegen.cpp - Assay DAG to AIS lowering ----------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/codegen/Codegen.h"

#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <map>
#include <numeric>

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::ir;

namespace {

/// Relative part counts for a node's in-edges: the smallest integer vector
/// proportional to the exact fractions (1:8 stays 1:8).
std::vector<std::int64_t> relativeParts(const AssayGraph &G,
                                        const std::vector<EdgeId> &In) {
  // Common denominator, then divide by the gcd.
  std::int64_t Lcm = 1;
  for (EdgeId E : In) {
    std::int64_t Den = G.edge(E).Fraction.denominator();
    Lcm = std::lcm(Lcm, Den);
  }
  std::vector<std::int64_t> Parts;
  Parts.reserve(In.size());
  std::int64_t Gcd = 0;
  for (EdgeId E : In) {
    const Rational &F = G.edge(E).Fraction;
    std::int64_t P = F.numerator() * (Lcm / F.denominator());
    Parts.push_back(P);
    Gcd = std::gcd(Gcd, P);
  }
  if (Gcd > 1)
    for (std::int64_t &P : Parts)
      P /= Gcd;
  return Parts;
}

/// The code generator: a linear walk over the DAG in topological order with
/// reservoir allocation and unit parking.
class Generator {
public:
  Generator(const AssayGraph &G, const MachineLayout &Layout,
            const CodegenOptions &Opts)
      : G(G), Layout(Layout), Opts(Opts) {}

  Expected<AISProgram> run();

private:
  bool fail(std::string Msg) {
    if (Diag.empty())
      Diag = std::move(Msg);
    return false;
  }

  // ----- Resource management ---------------------------------------------

  bool allocReservoir(int &Out) {
    for (int I = 1; I <= Layout.Reservoirs; ++I) {
      if (!ResBusy[I]) {
        ResBusy[I] = true;
        Out = I;
        Prog.UsedReservoirs = std::max(Prog.UsedReservoirs, I);
        return true;
      }
    }
    return fail("assay exceeds the machine's reservoirs");
  }
  void freeReservoir(int I) { ResBusy[I] = false; }

  /// Picks an instance of \p Kind, spilling a parked value if needed.
  bool chooseUnit(LocKind Kind, Loc &Out);
  /// Moves the value parked in \p Unit to a fresh reservoir.
  bool spill(const Loc &Unit);

  std::vector<NodeId> &occupants(LocKind Kind) {
    switch (Kind) {
    case LocKind::Mixer:
      return MixerOcc;
    case LocKind::Heater:
      return HeaterOcc;
    case LocKind::Sensor:
      return SensorOcc;
    case LocKind::Separator:
      return SeparatorOcc;
    default:
      AQUA_UNREACHABLE("not a parkable unit kind");
    }
  }
  int unitCount(LocKind Kind) const {
    switch (Kind) {
    case LocKind::Mixer:
      return Layout.Mixers;
    case LocKind::Heater:
      return Layout.Heaters;
    case LocKind::Sensor:
      return Layout.Sensors;
    case LocKind::Separator:
      return Layout.Separators;
    default:
      AQUA_UNREACHABLE("not a parkable unit kind");
    }
  }
  void noteUnitUse(LocKind Kind, int Index) {
    switch (Kind) {
    case LocKind::Mixer:
      Prog.UsedMixers = std::max(Prog.UsedMixers, Index);
      break;
    case LocKind::Heater:
      Prog.UsedHeaters = std::max(Prog.UsedHeaters, Index);
      break;
    case LocKind::Sensor:
      Prog.UsedSensors = std::max(Prog.UsedSensors, Index);
      break;
    case LocKind::Separator:
      Prog.UsedSeparators = std::max(Prog.UsedSeparators, Index);
      break;
    default:
      break;
    }
  }

  // ----- Emission ---------------------------------------------------------

  void emit(Instruction I, EdgeId MeteredEdge = -1) {
    Prog.Instrs.push_back(std::move(I));
    EdgeOf.push_back(MeteredEdge);
  }
  void emitMoveAll(Loc Dst, Loc Src, NodeId N) {
    Instruction I;
    I.Op = Opcode::Move;
    I.Dst = Dst;
    I.Src = Src;
    I.Node = N;
    emit(std::move(I));
  }

  bool emitInputs();
  bool emitNode(NodeId N);
  bool emitOperandMoves(NodeId N, const Loc &Unit);
  void consumeUse(NodeId Src);
  bool placeResult(NodeId N, Loc Unit);

  const AssayGraph &G;
  const MachineLayout &Layout;
  const CodegenOptions &Opts;
  AISProgram Prog;
  std::vector<EdgeId> EdgeOf; // Parallel to Prog.Instrs; see EdgeOfInstr.
  std::string Diag;

  std::vector<char> ResBusy = std::vector<char>(256, 0);
  std::vector<NodeId> MixerOcc, HeaterOcc, SensorOcc, SeparatorOcc;
  std::map<NodeId, Loc> ValueLoc;
  std::map<NodeId, int> UsesLeft; // Non-excess consumers remaining.
  std::map<std::string, Loc> AuxFluidRes; // Matrix/pusher reservoirs.
  int NextInputPort = 1;
};

bool Generator::chooseUnit(LocKind Kind, Loc &Out) {
  std::vector<NodeId> &Occ = occupants(Kind);
  int Count = unitCount(Kind);
  if (static_cast<int>(Occ.size()) < Count)
    Occ.resize(Count, InvalidNode);
  for (int I = 0; I < Count; ++I) {
    if (Occ[I] == InvalidNode) {
      Out = Loc{Kind, I + 1, SubPort::None};
      noteUnitUse(Kind, I + 1);
      return true;
    }
  }
  // All instances hold parked values: spill the first one.
  Loc Victim{Kind, 1, SubPort::None};
  if (!spill(Victim))
    return false;
  Out = Victim;
  return true;
}

bool Generator::spill(const Loc &Unit) {
  std::vector<NodeId> &Occ = occupants(Unit.Kind);
  NodeId Parked = Occ[Unit.Index - 1];
  assert(Parked != InvalidNode && "spilling an empty unit");
  int Res;
  if (!allocReservoir(Res))
    return false;
  Loc Src = ValueLoc[Parked];
  emitMoveAll(Loc{LocKind::Reservoir, Res, SubPort::None}, Src, Parked);
  ValueLoc[Parked] = Loc{LocKind::Reservoir, Res, SubPort::None};
  Occ[Unit.Index - 1] = InvalidNode;
  return true;
}

bool Generator::emitInputs() {
  // Assay input fluids, then the auxiliary matrix/pusher fluids named by
  // separations, in first-appearance order.
  for (NodeId N : G.liveNodes()) {
    if (G.node(N).Kind != NodeKind::Input)
      continue;
    int Res;
    if (!allocReservoir(Res))
      return false;
    if (NextInputPort > Layout.InputPorts)
      return fail("assay exceeds the machine's input ports");
    Instruction I;
    I.Op = Opcode::Input;
    I.Dst = Loc{LocKind::Reservoir, Res, SubPort::None};
    I.Src = Loc{LocKind::InputPort, NextInputPort++, SubPort::None};
    I.Note = G.node(N).Name;
    I.Node = N;
    emit(std::move(I));
    ValueLoc[N] = I.Dst;
    int RealUses = 0;
    for (EdgeId E : G.outEdges(N))
      if (G.node(G.edge(E).Dst).Kind != NodeKind::Excess)
        ++RealUses;
    UsesLeft[N] = RealUses;
  }
  for (NodeId N : G.liveNodes()) {
    const Node &Nd = G.node(N);
    if (Nd.Kind != NodeKind::Separate)
      continue;
    for (const std::string *Name : {&Nd.Params.Matrix, &Nd.Params.Pusher}) {
      if (Name->empty() || AuxFluidRes.count(*Name))
        continue;
      int Res;
      if (!allocReservoir(Res))
        return false;
      if (NextInputPort > Layout.InputPorts)
        return fail("assay exceeds the machine's input ports");
      Instruction I;
      I.Op = Opcode::Input;
      I.Dst = Loc{LocKind::Reservoir, Res, SubPort::None};
      I.Src = Loc{LocKind::InputPort, NextInputPort++, SubPort::None};
      I.Note = *Name;
      I.Node = N;
      emit(std::move(I));
      AuxFluidRes[*Name] = I.Dst;
    }
  }
  Prog.UsedInputPorts = NextInputPort - 1;
  return true;
}

void Generator::consumeUse(NodeId Src) {
  if (--UsesLeft[Src] > 0)
    return;
  // Last real use consumed. Leftover (excess) volume is delivered to the
  // waste output port so the location is explicitly cleared. Besides
  // explicit excess edges, managed mode can strand residue in a location:
  // rounding lets a node's production exceed the sum of its metered
  // out-moves, inputs are topped up to capacity, and a separation's
  // run-time yield is not compile-time-known. Any such residue would
  // contaminate the next value parked in the reused unit or reservoir.
  Loc L = ValueLoc[Src];
  bool HasExcess = false;
  for (EdgeId E : G.outEdges(Src))
    if (G.node(G.edge(E).Dst).Kind == NodeKind::Excess)
      HasExcess = true;
  if (!HasExcess && Opts.Mode == VolumeMode::Managed && Opts.Volumes) {
    const Node &Nd = G.node(Src);
    if (Nd.Kind == NodeKind::Input || Nd.Kind == NodeKind::Separate) {
      HasExcess = true;
    } else {
      double In = 0.0, Out = 0.0;
      for (EdgeId E : G.inEdges(Src))
        In += Opts.Volumes->EdgeVolumeNl[E];
      for (EdgeId E : G.outEdges(Src))
        if (G.node(G.edge(E).Dst).Kind != NodeKind::Excess)
          Out += Opts.Volumes->EdgeVolumeNl[E];
      HasExcess = In - Out > 1e-9;
    }
  }
  if (HasExcess) {
    Instruction I;
    I.Op = Opcode::Output;
    I.Dst = Loc{LocKind::OutputPort, 1, SubPort::None};
    I.Src = L;
    I.Node = Src;
    emit(std::move(I));
  }
  if (L.Kind == LocKind::Reservoir) {
    freeReservoir(L.Index);
  } else if (L.Kind == LocKind::Mixer || L.Kind == LocKind::Heater ||
             L.Kind == LocKind::Sensor || L.Kind == LocKind::Separator) {
    occupants(L.Kind)[L.Index - 1] = InvalidNode;
  }
}

bool Generator::emitOperandMoves(NodeId N, const Loc &Unit) {
  std::vector<EdgeId> In = G.inEdges(N);
  std::vector<std::int64_t> Parts;
  if (Opts.Mode == VolumeMode::Relative && In.size() > 1)
    Parts = relativeParts(G, In);
  for (size_t I = 0; I < In.size(); ++I) {
    const Edge &E = G.edge(In[I]);
    Instruction MI;
    MI.Dst = Unit;
    MI.Src = ValueLoc[E.Src];
    MI.Node = N;
    EdgeId MeteredEdge = -1;
    if (Opts.Mode == VolumeMode::Managed) {
      MI.Op = Opcode::MoveAbs;
      MI.VolumeNl = Opts.Volumes->EdgeVolumeNl[In[I]];
      MeteredEdge = In[I];
    } else {
      MI.Op = Opcode::Move;
      MI.RelParts = Parts.empty() ? 0 : Parts[I];
    }
    emit(std::move(MI), MeteredEdge);
    consumeUse(E.Src);
  }
  return true;
}

bool Generator::placeResult(NodeId N, Loc Unit) {
  int RealUses = 0;
  for (EdgeId E : G.outEdges(N))
    if (G.node(G.edge(E).Dst).Kind != NodeKind::Excess)
      ++RealUses;
  UsesLeft[N] = RealUses;

  // True separations deposit their effluent on the unit's out1 sub-port;
  // concentration (flavor CONC) runs on a heater and leaves the retained
  // fluid in the unit's main location.
  if (G.node(N).Kind == NodeKind::Separate && G.node(N).Params.Flavor != "CONC")
    Unit.Sub = SubPort::Out1;

  if (RealUses == 0) {
    // A leaf. Senses consume their fluid; other leaves are assay products
    // delivered to an output port.
    if (G.node(N).Kind != NodeKind::Sense) {
      Instruction I;
      I.Op = Opcode::Output;
      I.Dst = Loc{LocKind::OutputPort, 1, SubPort::None};
      I.Src = Unit;
      I.Node = N;
      emit(std::move(I));
    }
    occupants(Unit.Kind)[Unit.Index - 1] = InvalidNode;
    return true;
  }
  if (RealUses == 1) {
    // Storage-less forwarding: the single consumer will pull straight from
    // the unit.
    ValueLoc[N] = Unit;
    occupants(Unit.Kind)[Unit.Index - 1] = N;
    return true;
  }
  // Multiple uses: spill to a reservoir (register allocation).
  int Res;
  if (!allocReservoir(Res))
    return false;
  Loc Dst{LocKind::Reservoir, Res, SubPort::None};
  emitMoveAll(Dst, Unit, N);
  ValueLoc[N] = Dst;
  occupants(Unit.Kind)[Unit.Index - 1] = InvalidNode;
  return true;
}

bool Generator::emitNode(NodeId N) {
  const Node &Nd = G.node(N);
  switch (Nd.Kind) {
  case NodeKind::Input:
  case NodeKind::Excess:
    return true; // Inputs pre-loaded; excess handled at the source.

  case NodeKind::Mix: {
    Loc Unit;
    if (!chooseUnit(LocKind::Mixer, Unit))
      return false;
    if (!emitOperandMoves(N, Unit))
      return false;
    Instruction I;
    I.Op = Opcode::Mix;
    I.Dst = Unit;
    I.Seconds = Nd.Params.Seconds;
    I.Node = N;
    emit(std::move(I));
    return placeResult(N, Unit);
  }

  case NodeKind::Incubate: {
    Loc Unit;
    if (!chooseUnit(LocKind::Heater, Unit))
      return false;
    if (!emitOperandMoves(N, Unit))
      return false;
    Instruction I;
    I.Op = Opcode::Incubate;
    I.Dst = Unit;
    I.TempC = Nd.Params.TempC;
    I.Seconds = Nd.Params.Seconds;
    I.Node = N;
    emit(std::move(I));
    return placeResult(N, Unit);
  }

  case NodeKind::Separate: {
    if (Nd.Params.Flavor == "CONC") {
      // Concentration runs on a heater.
      Loc Unit;
      if (!chooseUnit(LocKind::Heater, Unit))
        return false;
      if (!emitOperandMoves(N, Unit))
        return false;
      Instruction I;
      I.Op = Opcode::Concentrate;
      I.Dst = Unit;
      I.TempC = Nd.Params.TempC;
      I.Seconds = Nd.Params.Seconds;
      I.Node = N;
      emit(std::move(I));
      return placeResult(N, Unit);
    }
    Loc Unit;
    if (!chooseUnit(LocKind::Separator, Unit))
      return false;
    // Load the matrix and pusher, then the fluid, then separate.
    if (!Nd.Params.Matrix.empty()) {
      Loc Sub = Unit;
      Sub.Sub = SubPort::Matrix;
      emitMoveAll(Sub, AuxFluidRes[Nd.Params.Matrix], N);
    }
    if (!Nd.Params.Pusher.empty()) {
      Loc Sub = Unit;
      Sub.Sub = SubPort::Pusher;
      emitMoveAll(Sub, AuxFluidRes[Nd.Params.Pusher], N);
    }
    if (!emitOperandMoves(N, Unit))
      return false;
    Instruction I;
    I.Op = Nd.Params.Flavor == "LC" ? Opcode::SeparateLC : Opcode::SeparateAF;
    I.Dst = Unit;
    I.Seconds = Nd.Params.Seconds;
    I.Node = N;
    emit(std::move(I));
    return placeResult(N, Unit);
  }

  case NodeKind::Sense: {
    Loc Unit;
    if (!chooseUnit(LocKind::Sensor, Unit))
      return false;
    if (!emitOperandMoves(N, Unit))
      return false;
    Instruction I;
    I.Op = Nd.Params.Flavor == "FL" ? Opcode::SenseFL : Opcode::SenseOD;
    I.Dst = Unit;
    I.Node = N;
    I.Note = startsWith(Nd.Name, "sense_") ? Nd.Name.substr(6) : Nd.Name;
    emit(std::move(I));
    return placeResult(N, Unit);
  }

  case NodeKind::Output:
    return emitOperandMoves(N, Loc{LocKind::OutputPort, 1, SubPort::None});
  }
  AQUA_UNREACHABLE("bad NodeKind");
}

Expected<AISProgram> Generator::run() {
  if (Status S = G.verify(); !S.ok())
    return Expected<AISProgram>::error("invalid assay graph: " + S.message());
  if (Opts.Mode == VolumeMode::Managed &&
      (!Opts.Volumes ||
       Opts.Volumes->EdgeVolumeNl.size() !=
           static_cast<size_t>(G.numEdgeSlots())))
    return Expected<AISProgram>::error(
        "managed code generation needs a volume assignment for this graph");

  if (!emitInputs())
    return Expected<AISProgram>::error(Diag);
  for (NodeId N : G.topologicalOrder())
    if (!emitNode(N))
      return Expected<AISProgram>::error(Diag);
  if (Opts.EdgeOfInstr)
    *Opts.EdgeOfInstr = std::move(EdgeOf);
  return Expected<AISProgram>(std::move(Prog));
}

} // namespace

Expected<AISProgram> aqua::codegen::generateAIS(const AssayGraph &G,
                                                const MachineLayout &Layout,
                                                const CodegenOptions &Opts) {
  Generator Gen(G, Layout, Opts);
  return Gen.run();
}
