//===- AISParser.cpp - AIS text parser ------------------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/codegen/AISParser.h"

#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <cstdlib>

using namespace aqua;
using namespace aqua::codegen;

namespace {

/// Splits an instruction line into mnemonic and comma-separated operands.
struct Line {
  std::string Mnemonic;
  std::vector<std::string> Operands;
  std::string Comment;
};

Line splitLine(std::string_view Text) {
  Line L;
  // Trailing comment: " ;note".
  size_t Semi = Text.find(';');
  if (Semi != std::string_view::npos) {
    L.Comment = std::string(trim(Text.substr(Semi + 1)));
    Text = Text.substr(0, Semi);
  }
  Text = trim(Text);
  size_t Space = Text.find(' ');
  if (Space == std::string_view::npos) {
    L.Mnemonic = std::string(Text);
    return L;
  }
  L.Mnemonic = std::string(Text.substr(0, Space));
  for (const std::string &Op : split(Text.substr(Space + 1), ','))
    L.Operands.emplace_back(trim(Op));
  return L;
}

bool parseNumber(const std::string &Text, double &Out) {
  char *End = nullptr;
  Out = std::strtod(Text.c_str(), &End);
  return End && *End == '\0' && !Text.empty();
}

} // namespace

Loc aqua::codegen::parseLoc(std::string_view Text) {
  Loc L;
  auto Suffix = [&](std::string_view Prefix, LocKind Kind) -> bool {
    if (!startsWith(Text, Prefix))
      return false;
    std::string_view Rest = Text.substr(Prefix.size());
    // Optional sub-port.
    size_t Dot = Rest.find('.');
    std::string_view Num = Dot == std::string_view::npos
                               ? Rest
                               : Rest.substr(0, Dot);
    if (Num.empty() ||
        !std::all_of(Num.begin(), Num.end(),
                     [](char C) { return C >= '0' && C <= '9'; }))
      return false;
    L.Kind = Kind;
    L.Index = std::atoi(std::string(Num).c_str());
    if (Dot != std::string_view::npos) {
      std::string_view Sub = Rest.substr(Dot + 1);
      if (Sub == "matrix")
        L.Sub = SubPort::Matrix;
      else if (Sub == "pusher")
        L.Sub = SubPort::Pusher;
      else if (Sub == "out1")
        L.Sub = SubPort::Out1;
      else
        return false;
    }
    return true;
  };
  // Longest prefixes first ("separator" before "s").
  if (Suffix("separator", LocKind::Separator) ||
      Suffix("mixer", LocKind::Mixer) || Suffix("heater", LocKind::Heater) ||
      Suffix("sensor", LocKind::Sensor) || Suffix("ip", LocKind::InputPort) ||
      Suffix("op", LocKind::OutputPort) || Suffix("s", LocKind::Reservoir))
    return L;
  return Loc{};
}

Expected<AISProgram> aqua::codegen::parseAIS(std::string_view Text) {
  using RetTy = Expected<AISProgram>;
  AISProgram Prog;
  int LineNo = 0;

  auto NoteResource = [&Prog](const Loc &L) {
    switch (L.Kind) {
    case LocKind::Reservoir:
      Prog.UsedReservoirs = std::max(Prog.UsedReservoirs, L.Index);
      break;
    case LocKind::Mixer:
      Prog.UsedMixers = std::max(Prog.UsedMixers, L.Index);
      break;
    case LocKind::Heater:
      Prog.UsedHeaters = std::max(Prog.UsedHeaters, L.Index);
      break;
    case LocKind::Sensor:
      Prog.UsedSensors = std::max(Prog.UsedSensors, L.Index);
      break;
    case LocKind::Separator:
      Prog.UsedSeparators = std::max(Prog.UsedSeparators, L.Index);
      break;
    case LocKind::InputPort:
      Prog.UsedInputPorts = std::max(Prog.UsedInputPorts, L.Index);
      break;
    default:
      break;
    }
  };

  for (const std::string &Raw : split(Text, '\n')) {
    ++LineNo;
    std::string_view Trimmed = trim(Raw);
    if (Trimmed.empty() || Trimmed[0] == ';')
      continue;
    Line L = splitLine(Trimmed);
    auto Err = [&](const char *Msg) {
      return RetTy::error(format("line %d: %s", LineNo, Msg));
    };

    Instruction I;
    I.Note = L.Comment;

    auto NeedOps = [&](size_t Min, size_t Max) {
      return L.Operands.size() >= Min && L.Operands.size() <= Max;
    };
    auto Dst = [&](int Idx) { return parseLoc(L.Operands[Idx]); };

    if (L.Mnemonic == "input") {
      if (!NeedOps(2, 2))
        return Err("input needs 2 operands");
      I.Op = Opcode::Input;
      I.Dst = Dst(0);
      I.Src = Dst(1);
    } else if (L.Mnemonic == "move" || L.Mnemonic == "move-abs") {
      if (!NeedOps(2, 3))
        return Err("move needs 2 or 3 operands");
      I.Op = L.Mnemonic == "move" ? Opcode::Move : Opcode::MoveAbs;
      I.Dst = Dst(0);
      I.Src = Dst(1);
      if (L.Operands.size() == 3) {
        double V;
        if (!parseNumber(L.Operands[2], V))
          return Err("malformed volume operand");
        if (I.Op == Opcode::Move)
          I.RelParts = static_cast<std::int64_t>(V);
        else
          I.VolumeNl = V;
      } else if (I.Op == Opcode::MoveAbs) {
        return Err("move-abs needs an absolute volume");
      }
    } else if (L.Mnemonic == "mix") {
      if (!NeedOps(2, 2) || !parseNumber(L.Operands[1], I.Seconds))
        return Err("mix needs a unit and a duration");
      I.Op = Opcode::Mix;
      I.Dst = Dst(0);
    } else if (L.Mnemonic == "incubate" || L.Mnemonic == "concentrate") {
      if (!NeedOps(3, 3) || !parseNumber(L.Operands[1], I.TempC) ||
          !parseNumber(L.Operands[2], I.Seconds))
        return Err("incubate/concentrate needs unit, temp, duration");
      I.Op = L.Mnemonic == "incubate" ? Opcode::Incubate
                                      : Opcode::Concentrate;
      I.Dst = Dst(0);
    } else if (L.Mnemonic == "separate.AF" || L.Mnemonic == "separate.LC") {
      if (!NeedOps(2, 2) || !parseNumber(L.Operands[1], I.Seconds))
        return Err("separate needs a unit and a duration");
      I.Op = L.Mnemonic == "separate.AF" ? Opcode::SeparateAF
                                         : Opcode::SeparateLC;
      I.Dst = Dst(0);
    } else if (L.Mnemonic == "sense.OD" || L.Mnemonic == "sense.FL") {
      if (!NeedOps(2, 2))
        return Err("sense needs a unit and a result name");
      I.Op = L.Mnemonic == "sense.OD" ? Opcode::SenseOD : Opcode::SenseFL;
      I.Dst = Dst(0);
      I.Note = L.Operands[1];
    } else if (L.Mnemonic == "output") {
      if (!NeedOps(2, 2))
        return Err("output needs 2 operands");
      I.Op = Opcode::Output;
      I.Dst = Dst(0);
      I.Src = Dst(1);
    } else {
      return Err("unknown mnemonic");
    }

    if (!I.Dst.valid())
      return Err("malformed destination operand");
    if ((I.Op == Opcode::Input || I.Op == Opcode::Move ||
         I.Op == Opcode::MoveAbs || I.Op == Opcode::Output) &&
        !I.Src.valid())
      return Err("malformed source operand");
    NoteResource(I.Dst);
    NoteResource(I.Src);
    Prog.Instrs.push_back(std::move(I));
  }
  return Prog;
}
