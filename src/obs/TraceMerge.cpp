//===- TraceMerge.cpp - Stitch per-process trace shards -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/TraceMerge.h"

#include "aqua/support/Json.h"
#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include <dirent.h>

using namespace aqua;
using namespace aqua::obs;

namespace {

void appendQuoted(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void appendNumber(std::string &Out, double V) {
  char Buf[64];
  // Timestamps/durations/counts round-trip as integers; anything else
  // keeps full double precision.
  if (std::nearbyint(V) == V && std::fabs(V) < 9.2e18)
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  else
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

/// Re-serializes a parsed value verbatim.
void writeValue(const json::Value &V, std::string &Out) {
  switch (V.kind()) {
  case json::Value::Kind::Null:
    Out += "null";
    break;
  case json::Value::Kind::Bool:
    Out += V.boolean() ? "true" : "false";
    break;
  case json::Value::Kind::Number:
    appendNumber(Out, V.number());
    break;
  case json::Value::Kind::String:
    appendQuoted(Out, V.str());
    break;
  case json::Value::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const json::Value &E : V.array()) {
      if (!First)
        Out += ", ";
      First = false;
      writeValue(E, Out);
    }
    Out += ']';
    break;
  }
  case json::Value::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Key, Member] : V.members()) {
      if (!First)
        Out += ", ";
      First = false;
      appendQuoted(Out, Key);
      Out += ": ";
      writeValue(Member, Out);
    }
    Out += '}';
    break;
  }
  }
}

struct MergedEvent {
  std::uint64_t TsPrime = 0;
  std::string Json;
};

const char *trackName(std::uint64_t Track) {
  switch (Track) {
  case 1:
    return "aqua pipeline";
  case 2:
    return "simulated fluidics";
  case 3:
    return "fleet simulation";
  default:
    return "aqua";
  }
}

} // namespace

Expected<MergedTrace> aqua::obs::mergeShards(
    const std::vector<std::string> &ShardDocs) {
  if (ShardDocs.empty())
    return Status::error("mergeShards: no shards");

  struct Shard {
    json::Value Doc;
    std::uint64_t OsPid = 0;
    std::uint64_t Epoch = 0;
    std::uint64_t Dropped = 0;
  };

  std::vector<Shard> Shards;
  Shards.reserve(ShardDocs.size());
  std::uint64_t MinEpoch = ~0ULL;
  for (std::size_t I = 0; I < ShardDocs.size(); ++I) {
    Expected<json::Value> Doc = json::parse(ShardDocs[I]);
    if (!Doc)
      return Status::error(
          format("shard %zu: %s", I, Doc.message().c_str()));
    Shard S;
    S.Doc = std::move(*Doc);
    const json::Value *Header = S.Doc.find("aquaShard");
    if (!Header || Header->kind() != json::Value::Kind::Object)
      return Status::error(format("shard %zu: missing aquaShard header", I));
    const json::Value *Pid = Header->find("pid");
    const json::Value *Epoch = Header->find("epochWallMicros");
    if (!Pid || !Epoch)
      return Status::error(format("shard %zu: incomplete aquaShard header", I));
    S.OsPid = Pid->u64();
    S.Epoch = Epoch->u64();
    S.Dropped = static_cast<std::uint64_t>(Header->numberOr("droppedEvents", 0));
    MinEpoch = std::min(MinEpoch, S.Epoch);
    Shards.push_back(std::move(S));
  }

  std::vector<MergedEvent> Events;
  // (merged pid) -> display name, for the metadata records.
  std::map<std::uint64_t, std::string> Tracks;
  std::uint64_t TotalDropped = 0;

  for (std::size_t I = 0; I < Shards.size(); ++I) {
    const Shard &S = Shards[I];
    TotalDropped += S.Dropped;
    std::uint64_t Shift = S.Epoch - MinEpoch;
    const json::Value *List = S.Doc.find("traceEvents");
    if (!List || List->kind() != json::Value::Kind::Array)
      return Status::error(format("shard %zu: missing traceEvents", I));
    for (const json::Value &E : List->array()) {
      if (E.kind() != json::Value::Kind::Object)
        return Status::error(format("shard %zu: non-object event", I));
      // Shards carry their own process_name metadata; the merge re-derives
      // track names from (os pid, track), so drop the per-shard records.
      if (E.strOr("ph", "") == "M")
        continue;
      const json::Value *Ts = E.find("ts");
      const json::Value *Track = E.find("pid");
      if (!Ts || !Track)
        return Status::error(format("shard %zu: event without ts/pid", I));
      std::uint64_t TsPrime = Ts->u64() + Shift;
      std::uint64_t Merged = S.OsPid * 4 + (Track->u64() > 0 ? Track->u64() - 1 : 0);
      Tracks.emplace(Merged, format("pid %llu: %s",
                                    static_cast<unsigned long long>(S.OsPid),
                                    trackName(Track->u64())));

      // Re-emit the event verbatim, with ts shifted and pid remapped.
      std::string Out = "{";
      bool First = true;
      for (const auto &[Key, Member] : E.members()) {
        if (!First)
          Out += ", ";
        First = false;
        appendQuoted(Out, Key);
        Out += ": ";
        if (Key == "ts")
          appendNumber(Out, static_cast<double>(TsPrime));
        else if (Key == "pid")
          appendNumber(Out, static_cast<double>(Merged));
        else
          writeValue(Member, Out);
      }
      Out += '}';
      Events.push_back({TsPrime, std::move(Out)});
    }
  }

  // One shared timeline: order by re-anchored timestamp (stable, so ties
  // keep shard order -- in particular an 's' stays ahead of its 'f' when
  // both land on the same microsecond).
  std::stable_sort(Events.begin(), Events.end(),
                   [](const MergedEvent &A, const MergedEvent &B) {
                     return A.TsPrime < B.TsPrime;
                   });

  MergedTrace Result;
  Result.ShardCount = Shards.size();
  Result.DroppedEvents = TotalDropped;
  Result.EventCount = Events.size();

  std::string &Out = Result.Json;
  Out = "{\n  \"displayTimeUnit\": \"ms\",\n";
  Out += format("  \"aquaMerged\": {\"shards\": %zu, \"droppedEvents\": %llu},\n",
                Shards.size(),
                static_cast<unsigned long long>(TotalDropped));
  Out += "  \"traceEvents\": [";
  bool First = true;
  for (const auto &[Pid, Name] : Tracks) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    Out += format("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %llu, "
                  "\"tid\": 0, \"args\": {\"name\": ",
                  static_cast<unsigned long long>(Pid));
    appendQuoted(Out, Name);
    Out += "}}";
  }
  for (const MergedEvent &E : Events) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    Out += E.Json;
  }
  Out += "\n  ]\n}\n";
  return Result;
}

Expected<std::vector<std::string>> aqua::obs::listShardPaths(
    const std::string &Dir) {
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return Status::error(format("cannot open directory %s", Dir.c_str()));
  std::vector<std::string> Paths;
  const std::string Suffix = ".shard.json";
  while (dirent *Entry = readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name.size() > Suffix.size() &&
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) == 0)
      Paths.push_back(Dir + "/" + Name);
  }
  closedir(D);
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}
