//===- Snapshot.cpp - Live metrics snapshot writer ------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/Snapshot.h"

#include "aqua/obs/Metrics.h"
#include "aqua/support/StringUtils.h"

#include <chrono>
#include <cstdio>

#include <unistd.h>

using namespace aqua;
using namespace aqua::obs;

namespace {

struct SnapshotMetrics {
  obs::Counter &Writes = obs::metrics().counter("obs.snapshot.writes");
  obs::Counter &Errors = obs::metrics().counter("obs.snapshot.errors");
};

SnapshotMetrics &snapMet() {
  static SnapshotMetrics M;
  return M;
}

} // namespace

std::string aqua::obs::metricsSnapshotPath(const std::string &Dir) {
  return format("%s/metrics.snap-%d.json", Dir.c_str(),
                static_cast<int>(getpid()));
}

bool aqua::obs::writeMetricsSnapshot(const std::string &Dir,
                                     std::uint64_t Seq) {
  SnapshotMetrics &M = snapMet();
  std::uint64_t WallMicros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();

  std::string Doc =
      format("{\n\"schema\": \"aqua.metrics.snap.v1\",\n\"pid\": %d,\n"
             "\"seq\": %llu,\n\"wallMicros\": %llu,\n\"metrics\": ",
             static_cast<int>(getpid()),
             static_cast<unsigned long long>(Seq),
             static_cast<unsigned long long>(WallMicros));
  Doc += metrics().json();
  Doc += "}\n";

  // Unique temp per call: a signal-path flush can race the background
  // writer, and two writers sharing one temp file would tear it.
  static std::atomic<std::uint64_t> TmpSerial{0};
  std::string Path = metricsSnapshotPath(Dir);
  std::string Tmp =
      Path + format(".tmp.%llu",
                    static_cast<unsigned long long>(
                        TmpSerial.fetch_add(1, std::memory_order_relaxed)));
  std::FILE *F = std::fopen(Tmp.c_str(), "w");
  if (!F) {
    M.Errors.add();
    return false;
  }
  std::size_t Written = std::fwrite(Doc.data(), 1, Doc.size(), F);
  bool Ok = (Written == Doc.size());
  Ok = (std::fclose(F) == 0) && Ok;
  if (!Ok || std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    M.Errors.add();
    return false;
  }
  M.Writes.add();
  return true;
}

SnapshotWriter::SnapshotWriter(std::string Dir, unsigned IntervalMs)
    : Dir(std::move(Dir)), IntervalMs(IntervalMs ? IntervalMs : 1) {}

SnapshotWriter::~SnapshotWriter() { stop(); }

void SnapshotWriter::start() {
  if (Worker.joinable())
    return;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = false;
  }
  Worker = std::thread([this] { run(); });
}

void SnapshotWriter::stop() {
  if (!Worker.joinable())
    return;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Cv.notify_all();
  Worker.join();
}

std::uint64_t SnapshotWriter::writes() const {
  return Seq.load(std::memory_order_relaxed);
}

void SnapshotWriter::run() {
  for (;;) {
    (void)writeMetricsSnapshot(Dir, Seq.load(std::memory_order_relaxed));
    Seq.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> Lock(Mutex);
    if (Cv.wait_for(Lock, std::chrono::milliseconds(IntervalMs),
                    [this] { return Stopping; })) {
      Lock.unlock();
      // Final flush so the file reflects the process's last state.
      (void)writeMetricsSnapshot(Dir, Seq.load(std::memory_order_relaxed));
      Seq.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}
