//===- Metrics.cpp - Thread-safe metrics registry -------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// JSON schema (aqua.metrics.v1):
//
//   {
//     "schema": "aqua.metrics.v1",
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <number>, ... },
//     "histograms": {
//       "<name>": { "count": <uint>, "sum": <number>,
//                   "buckets": [ { "le": <number|"inf">, "count": <uint> } ] }
//     }
//   }
//
// Keys are sorted (std::map iteration), numbers use %.9g, and non-finite
// doubles clamp to null -- the same rules as bench/BenchUtil.h's reporter,
// so the artifacts diff cleanly. tests/obs/MetricsTest.cpp locks the
// pre-registered schema against a golden file.
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>

using namespace aqua;
using namespace aqua::obs;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)) {
  if (Bounds.empty())
    Bounds = defaultLatencyBucketsSec();
  assert(std::is_sorted(Bounds.begin(), Bounds.end()) &&
         "histogram bounds must be sorted");
  Buckets = std::make_unique<std::atomic<std::uint64_t>[]>(Bounds.size() + 1);
  for (std::size_t I = 0; I <= Bounds.size(); ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double X) {
  // First bound >= X: bucket I tallies observations with X <= Bounds[I],
  // matching the exported "le" labels.
  std::size_t I =
      std::lower_bound(Bounds.begin(), Bounds.end(), X) - Bounds.begin();
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  double Old = Sum.load(std::memory_order_relaxed);
  while (!Sum.compare_exchange_weak(Old, Old + X, std::memory_order_relaxed))
    ;
}

void Histogram::reset() {
  for (std::size_t I = 0; I <= Bounds.size(); ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0.0, std::memory_order_relaxed);
}

std::vector<double> aqua::obs::defaultLatencyBucketsSec() {
  return {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
          1e-1, 3e-1, 1.0,  3.0,  10.0};
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      std::vector<double> UpperBounds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(std::move(UpperBounds));
  return *Slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counterValues() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::map<std::string, std::uint64_t> Out;
  for (const auto &[Name, C] : Counters)
    Out[Name] = C->value();
  return Out;
}

namespace {

void appendQuoted(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

/// JSON has no infinity/nan literals; clamp to null.
void appendNumber(std::string &Out, double V) {
  if (!(V == V) || V == std::numeric_limits<double>::infinity() ||
      V == -std::numeric_limits<double>::infinity()) {
    Out += "null";
    return;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
}

void appendUint(std::string &Out, std::uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(V));
  Out += Buf;
}

} // namespace

std::string MetricsRegistry::json() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out = "{\n  \"schema\": \"aqua.metrics.v1\",\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    appendQuoted(Out, Name);
    Out += ": ";
    appendUint(Out, C->value());
  }
  Out += "\n  },\n  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    appendQuoted(Out, Name);
    Out += ": ";
    appendNumber(Out, G->value());
  }
  Out += "\n  },\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    appendQuoted(Out, Name);
    Out += ": {\"count\": ";
    appendUint(Out, H->count());
    Out += ", \"sum\": ";
    appendNumber(Out, H->sum());
    Out += ", \"buckets\": [";
    const std::vector<double> &Bounds = H->bounds();
    for (std::size_t I = 0; I <= Bounds.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "{\"le\": ";
      if (I < Bounds.size())
        appendNumber(Out, Bounds[I]);
      else
        Out += "\"inf\"";
      Out += ", \"count\": ";
      appendUint(Out, H->bucketCount(I));
      Out += '}';
    }
    Out += "]}";
  }
  Out += "\n  }\n}\n";
  return Out;
}

bool MetricsRegistry::writeJsonFile(const std::string &Path) const {
  std::string Doc = json();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write metrics to %s\n",
                 Path.c_str());
    return false;
  }
  std::fwrite(Doc.data(), 1, Doc.size(), F);
  std::fclose(F);
  return true;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

MetricsRegistry &aqua::obs::metrics() {
  static MetricsRegistry R;
  return R;
}

void aqua::obs::preregisterPipelineMetrics(MetricsRegistry &R) {
  // Compilation service (CompileService.cpp, SolveCache.cpp).
  for (const char *Name :
       {"service.requests.submitted", "service.requests.completed",
        "service.requests.failed", "service.cache.hits",
        "service.cache.misses", "service.cache.insertions",
        "service.cache.evictions", "service.cache.hits_l2",
        "service.cache.seqlock_retries", "service.cache.decoded_hits",
        "service.canon_memo_hits", "service.singleflight.joins",
        "service.warm_miss_hits", "service.shed_total",
        "service.shed.queue_full", "service.shed.deadline"})
    R.counter(Name);
  R.gauge("service.queue_depth");
  R.histogram("service.queue_wait_sec");
  R.histogram("service.latency_sec");
  R.histogram("service.solve_sec");

  // Persistent solve store (store/SolveStore.cpp).
  for (const char *Name :
       {"store.appends", "store.appended_bytes", "store.gets", "store.hits",
        "store.corrupt_records", "store.torn_tails", "store.refreshes",
        "store.refresh_skips", "store.compactions", "store.index_probes",
        "store.index_fallback_scans", "store.index_builds",
        "store.index_loads"})
    R.counter(Name);

  // Volume-management hierarchy (Manager.cpp, DagSolve.cpp).
  for (const char *Name :
       {"core.manage.runs", "core.manage.infeasible",
        "core.manage.iterations", "core.manage.cascades",
        "core.manage.replications", "core.manage.lp_fallbacks",
        "core.dagsolve.runs", "core.dagsolve.infeasible"})
    R.counter(Name);

  // LP/ILP engines (RevisedSimplex.cpp, Cuts.cpp, BranchAndBound.cpp,
  // Solver.cpp).
  for (const char *Name :
       {"lp.pivots", "lp.refactorizations", "lp.cold_solves",
        "lp.warm_reopts", "lp.warm_fast_path", "lp.warm_cold_fallbacks",
        "lp.pricing_full_recomputes", "lp.pricing_drift_repairs",
        "lp.devex_resets", "lp.ftran_hypersparse", "lp.ftran_dense",
        "lp.warm_dual_inherits", "lp.warm_shape_repairs",
        "lp.cuts_generated", "lp.cuts_active", "lp.cut_rounds",
        "lp.bb.solves", "lp.bb.nodes", "lp.bb.pruned", "lp.bb.incumbents",
        "lp.bb.numeric_fallbacks", "ilp.pseudocost_inits",
        "ilp.strong_branches", "ilp.restarts"})
    R.counter(Name);
  R.histogram("lp.bb.nodes_per_worker",
              {1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 100000});

  // AquaCore simulator (Simulator.cpp). The volume gauges accumulate
  // nanoliters and feed the paper's Table 2 volume/waste columns.
  for (const char *Name :
       {"sim.runs", "sim.instructions", "sim.regenerations",
        "sim.underflows", "sim.overflows", "sim.sub_least_count_moves"})
    R.counter(Name);
  for (const char *Name :
       {"sim.volume.input_nl", "sim.volume.delivered_nl",
        "sim.volume.waste_nl"})
    R.gauge(Name);

  // Bytecode VM and fleet simulation (vm/VM.cpp, vm/Compiler.cpp,
  // vm/Fleet.cpp). The vm.* counters mirror sim.* so engine comparisons
  // line up column for column.
  for (const char *Name :
       {"vm.runs", "vm.instructions", "vm.regenerations", "vm.underflows",
        "vm.overflows", "vm.sub_least_count_moves", "vm.compile.programs",
        "vm.compile.instrs", "vm.fleet.chips", "vm.fleet.chips_failed",
        "vm.fleet.segments", "vm.fleet.online_remanages",
        "vm.fleet.partition_reruns", "vm.fleet.segment_recompiles"})
    R.counter(Name);
  for (const char *Name :
       {"vm.volume.input_nl", "vm.volume.delivered_nl", "vm.volume.waste_nl",
        "vm.fleet.makespan_sec", "vm.fleet.reservoir_wait_sec"})
    R.gauge(Name);

  // Leveled logging (Log.cpp).
  for (const char *Name : {"obs.log.debug", "obs.log.info", "obs.log.warn",
                           "obs.log.error", "obs.log.suppressed"})
    R.counter(Name);

  // Tracer ring health (Trace.cpp): dropped > 0 means the exported trace
  // window silently truncated older events.
  for (const char *Name : {"obs.trace.recorded", "obs.trace.dropped"})
    R.counter(Name);
  R.gauge("obs.trace.ring_occupancy");

  // Live telemetry (Snapshot.cpp, FlightRecorder.cpp) and per-request
  // digests (CompileService.cpp).
  for (const char *Name : {"obs.snapshot.writes", "obs.snapshot.errors",
                           "obs.flight.dropped", "service.request_digests"})
    R.counter(Name);
}
