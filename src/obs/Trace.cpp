//===- Trace.cpp - Span tracer with Chrome-trace export -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace aqua;
using namespace aqua::obs;

std::atomic<bool> Tracer::Enabled{[] {
  const char *Env = std::getenv("AQUA_TRACE");
  return Env && Env[0] == '1';
}()};

Tracer::Tracer(std::size_t Capacity)
    : Capacity(std::max<std::size_t>(16, Capacity)) {
  Ring.reserve(this->Capacity);
}

Tracer &Tracer::global() {
  static Tracer T;
  return T;
}

std::uint64_t Tracer::nowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               Epoch)
      .count();
}

std::uint32_t Tracer::threadId() {
  static std::atomic<std::uint32_t> Next{1};
  thread_local std::uint32_t Id =
      Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

void Tracer::record(TraceEvent E) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Ring.size() < Capacity) {
    Ring.push_back(std::move(E));
  } else {
    // Wraparound: Recorded % Capacity is the oldest slot once full.
    Ring[Recorded % Capacity] = std::move(E);
  }
  ++Recorded;
}

void Tracer::instant(std::string Name, const char *Cat) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.Phase = 'i';
  E.TsMicros = nowMicros();
  E.Tid = threadId();
  record(std::move(E));
}

void Tracer::complete(std::string Name, const char *Cat,
                      std::uint64_t TsMicros, std::uint64_t DurMicros,
                      std::uint32_t Pid, std::uint32_t Tid) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.Phase = 'X';
  E.TsMicros = TsMicros;
  E.DurMicros = DurMicros;
  E.Pid = Pid;
  E.Tid = Tid;
  record(std::move(E));
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Ring.size();
}

std::uint64_t Tracer::recordedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Recorded;
}

std::uint64_t Tracer::droppedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Recorded > Ring.size() ? Recorded - Ring.size() : 0;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Ring.clear();
  Recorded = 0;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<TraceEvent> Out;
  Out.reserve(Ring.size());
  if (Ring.size() < Capacity) {
    Out = Ring;
  } else {
    std::size_t Head = Recorded % Capacity; // Oldest slot.
    for (std::size_t I = 0; I < Capacity; ++I)
      Out.push_back(Ring[(Head + I) % Capacity]);
  }
  return Out;
}

namespace {

void appendQuoted(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string metadataLine(std::uint32_t Pid, const char *Name) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %u, "
                "\"tid\": 0, \"args\": {\"name\": \"%s\"}}",
                Pid, Name);
  return Buf;
}

} // namespace

std::string Tracer::json() const {
  std::vector<TraceEvent> Events = snapshot();
  std::uint64_t Dropped = droppedCount();

  std::string Out = "{\n  \"displayTimeUnit\": \"ms\",\n";
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "  \"aquaDroppedEvents\": %llu,\n",
                static_cast<unsigned long long>(Dropped));
  Out += Buf;
  Out += "  \"traceEvents\": [\n";
  Out += metadataLine(PidPipeline, "aqua pipeline (wall clock)");
  Out += ",\n";
  Out += metadataLine(PidSimulated, "simulated fluidics (wet clock)");
  Out += ",\n";
  Out += metadataLine(PidFleet, "fleet simulation (wet clock, row per chip)");
  for (const TraceEvent &E : Events) {
    Out += ",\n    {\"name\": ";
    appendQuoted(Out, E.Name);
    std::snprintf(Buf, sizeof(Buf),
                  ", \"cat\": \"%s\", \"ph\": \"%c\", \"ts\": %llu",
                  E.Cat, E.Phase,
                  static_cast<unsigned long long>(E.TsMicros));
    Out += Buf;
    if (E.Phase == 'X') {
      std::snprintf(Buf, sizeof(Buf), ", \"dur\": %llu",
                    static_cast<unsigned long long>(E.DurMicros));
      Out += Buf;
    }
    if (E.Phase == 'i')
      Out += ", \"s\": \"t\""; // Thread-scoped instant.
    std::snprintf(Buf, sizeof(Buf), ", \"pid\": %u, \"tid\": %u}", E.Pid,
                  E.Tid);
    Out += Buf;
  }
  Out += "\n  ]\n}\n";
  return Out;
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::string Doc = json();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write trace to %s\n", Path.c_str());
    return false;
  }
  std::fwrite(Doc.data(), 1, Doc.size(), F);
  std::fclose(F);
  return true;
}

void SpanGuard::finish() {
  std::uint64_t End = Tracer::nowMicros();
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Phase = 'X';
  E.TsMicros = StartMicros;
  E.DurMicros = End > StartMicros ? End - StartMicros : 0;
  E.Tid = Tracer::threadId();
  Tracer::global().record(std::move(E));
}
