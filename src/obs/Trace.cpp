//===- Trace.cpp - Span tracer with Chrome-trace export -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/Trace.h"

#include "aqua/obs/Metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include <unistd.h>

using namespace aqua;
using namespace aqua::obs;

std::atomic<bool> Tracer::Enabled{[] {
  const char *Env = std::getenv("AQUA_TRACE");
  if (Env && Env[0] == '1')
    return true;
  // A shard directory implies tracing: every process in the tree records
  // and flushes a shard without further flag plumbing.
  const char *Dir = std::getenv("AQUA_TRACE_DIR");
  return Dir && Dir[0] != '\0';
}()};

namespace {

/// Registry instruments mirroring the ring's health, resolved once.
/// obs.trace.dropped is the "your trace is silently truncated" signal the
/// ring's bounded memory otherwise hides.
struct TraceMetrics {
  obs::Counter &Recorded = obs::metrics().counter("obs.trace.recorded");
  obs::Counter &Dropped = obs::metrics().counter("obs.trace.dropped");
  obs::Gauge &Occupancy = obs::metrics().gauge("obs.trace.ring_occupancy");
};

TraceMetrics &traceMet() {
  static TraceMetrics M;
  return M;
}

} // namespace

Tracer::Tracer(std::size_t Capacity)
    : Capacity(std::max<std::size_t>(16, Capacity)) {
  Ring.reserve(this->Capacity);
}

Tracer &Tracer::global() {
  static Tracer T;
  return T;
}

std::uint64_t Tracer::nowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               Epoch)
      .count();
}

std::uint64_t Tracer::wallMicrosAtEpoch() {
  // Wall "now" minus steady elapsed-since-epoch: both reads race against
  // each other by nanoseconds, which is far under the NTP skew between the
  // machines (or processes) whose shards a merge re-anchors.
  std::uint64_t WallNow =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::uint64_t Steady = nowMicros();
  return WallNow > Steady ? WallNow - Steady : 0;
}

std::uint32_t Tracer::threadId() {
  static std::atomic<std::uint32_t> Next{1};
  thread_local std::uint32_t Id =
      Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

void Tracer::record(TraceEvent E) {
  TraceMetrics &M = traceMet();
  M.Recorded.add();
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Ring.size() < Capacity) {
    Ring.push_back(std::move(E));
  } else {
    // Wraparound: Recorded % Capacity is the oldest slot once full.
    Ring[Recorded % Capacity] = std::move(E);
    M.Dropped.add();
  }
  ++Recorded;
  M.Occupancy.set(static_cast<double>(Ring.size()));
}

void Tracer::instant(std::string Name, const char *Cat) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.Phase = 'i';
  E.TsMicros = nowMicros();
  E.Tid = threadId();
  record(std::move(E));
}

void Tracer::complete(std::string Name, const char *Cat,
                      std::uint64_t TsMicros, std::uint64_t DurMicros,
                      std::uint32_t Pid, std::uint32_t Tid) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.Phase = 'X';
  E.TsMicros = TsMicros;
  E.DurMicros = DurMicros;
  E.Pid = Pid;
  E.Tid = Tid;
  record(std::move(E));
}

void Tracer::flowBegin(std::string Name, std::uint64_t Id, const char *Cat) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.Phase = 's';
  E.TsMicros = nowMicros();
  E.Tid = threadId();
  E.FlowId = Id;
  record(std::move(E));
}

void Tracer::flowEnd(std::string Name, std::uint64_t Id, const char *Cat) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.Phase = 'f';
  E.TsMicros = nowMicros();
  E.Tid = threadId();
  E.FlowId = Id;
  record(std::move(E));
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Ring.size();
}

std::uint64_t Tracer::recordedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Recorded;
}

std::uint64_t Tracer::droppedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Recorded > Ring.size() ? Recorded - Ring.size() : 0;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Ring.clear();
  Recorded = 0;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<TraceEvent> Out;
  Out.reserve(Ring.size());
  if (Ring.size() < Capacity) {
    Out = Ring;
  } else {
    std::size_t Head = Recorded % Capacity; // Oldest slot.
    for (std::size_t I = 0; I < Capacity; ++I)
      Out.push_back(Ring[(Head + I) % Capacity]);
  }
  return Out;
}

namespace {

void appendQuoted(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string metadataLine(std::uint32_t Pid, const char *Name) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %u, "
                "\"tid\": 0, \"args\": {\"name\": \"%s\"}}",
                Pid, Name);
  return Buf;
}

/// Serializes one non-metadata event (no leading/trailing separators).
void appendEvent(std::string &Out, const TraceEvent &E) {
  char Buf[160];
  Out += "{\"name\": ";
  appendQuoted(Out, E.Name);
  std::snprintf(Buf, sizeof(Buf),
                ", \"cat\": \"%s\", \"ph\": \"%c\", \"ts\": %llu", E.Cat,
                E.Phase, static_cast<unsigned long long>(E.TsMicros));
  Out += Buf;
  if (E.Phase == 'X') {
    std::snprintf(Buf, sizeof(Buf), ", \"dur\": %llu",
                  static_cast<unsigned long long>(E.DurMicros));
    Out += Buf;
  }
  if (E.Phase == 'i')
    Out += ", \"s\": \"t\""; // Thread-scoped instant.
  if (E.Phase == 's' || E.Phase == 'f') {
    // Flow binding id; hex string keeps the full 64 bits JSON-safe.
    std::snprintf(Buf, sizeof(Buf), ", \"id\": \"0x%llx\"",
                  static_cast<unsigned long long>(E.FlowId));
    Out += Buf;
    if (E.Phase == 'f')
      Out += ", \"bp\": \"e\""; // Bind the arrow to the enclosing slice.
  }
  std::snprintf(Buf, sizeof(Buf), ", \"pid\": %u, \"tid\": %u", E.Pid, E.Tid);
  Out += Buf;
  if (!E.Args.empty()) {
    Out += ", \"args\": {";
    bool First = true;
    for (const TraceArg &A : E.Args) {
      if (!First)
        Out += ", ";
      First = false;
      appendQuoted(Out, A.Key);
      Out += ": ";
      appendQuoted(Out, A.Val);
    }
    Out += '}';
  }
  Out += '}';
}

} // namespace

std::string Tracer::json() const {
  std::vector<TraceEvent> Events = snapshot();
  std::uint64_t Dropped = droppedCount();

  std::string Out = "{\n  \"displayTimeUnit\": \"ms\",\n";
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "  \"aquaDroppedEvents\": %llu,\n",
                static_cast<unsigned long long>(Dropped));
  Out += Buf;
  Out += "  \"traceEvents\": [\n";
  Out += metadataLine(PidPipeline, "aqua pipeline (wall clock)");
  Out += ",\n";
  Out += metadataLine(PidSimulated, "simulated fluidics (wet clock)");
  Out += ",\n";
  Out += metadataLine(PidFleet, "fleet simulation (wet clock, row per chip)");
  for (const TraceEvent &E : Events) {
    Out += ",\n    ";
    appendEvent(Out, E);
  }
  Out += "\n  ]\n}\n";
  return Out;
}

std::string Tracer::shardJson(std::uint32_t OsPid,
                              std::uint64_t EpochWallMicros) const {
  std::vector<TraceEvent> Events = snapshot();
  std::uint64_t Dropped = droppedCount();

  std::string Out = "{\n  \"displayTimeUnit\": \"ms\",\n";
  char Buf[200];
  std::snprintf(Buf, sizeof(Buf),
                "  \"aquaShard\": {\"pid\": %u, \"epochWallMicros\": %llu, "
                "\"droppedEvents\": %llu},\n",
                OsPid, static_cast<unsigned long long>(EpochWallMicros),
                static_cast<unsigned long long>(Dropped));
  Out += Buf;
  Out += "  \"traceEvents\": [\n";
  Out += metadataLine(PidPipeline, "aqua pipeline (wall clock)");
  Out += ",\n";
  Out += metadataLine(PidSimulated, "simulated fluidics (wet clock)");
  Out += ",\n";
  Out += metadataLine(PidFleet, "fleet simulation (wet clock, row per chip)");
  for (const TraceEvent &E : Events) {
    Out += ",\n    ";
    appendEvent(Out, E);
  }
  Out += "\n  ]\n}\n";
  return Out;
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::string Doc = json();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write trace to %s\n", Path.c_str());
    return false;
  }
  std::fwrite(Doc.data(), 1, Doc.size(), F);
  std::fclose(F);
  return true;
}

//===----------------------------------------------------------------------===//
// Request context
//===----------------------------------------------------------------------===//

namespace {

thread_local std::uint64_t ActiveTraceId = 0;

} // namespace

/// splitmix64: a cheap full-avalanche mix.
std::uint64_t aqua::obs::mixId(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

std::uint64_t aqua::obs::dispatchFlowId(std::uint64_t Seed, int Worker,
                                        std::size_t Slot) {
  return mixId(Seed ^ (static_cast<std::uint64_t>(Worker + 1) << 32) ^
               (Slot + 1)) |
         1;
}

std::uint64_t aqua::obs::newTraceId() {
  static std::atomic<std::uint64_t> Counter{0};
  std::uint64_t Seq = Counter.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t Id =
      mixId((static_cast<std::uint64_t>(getpid()) << 40) ^ Seq ^
            (Tracer::wallMicrosAtEpoch() << 20));
  return Id ? Id : 1;
}

std::uint64_t aqua::obs::currentTraceId() { return ActiveTraceId; }

RequestScope::RequestScope(std::uint64_t Id) : Prev(ActiveTraceId) {
  if (Id != 0)
    ActiveTraceId = Id;
}

RequestScope::~RequestScope() { ActiveTraceId = Prev; }

//===----------------------------------------------------------------------===//
// Cross-process trace shards
//===----------------------------------------------------------------------===//

const char *aqua::obs::traceShardDir() {
  const char *Dir = std::getenv("AQUA_TRACE_DIR");
  return (Dir && Dir[0] != '\0') ? Dir : nullptr;
}

bool aqua::obs::flushTraceShard() {
  const char *Dir = traceShardDir();
  if (!Dir)
    return false;
  char Path[512];
  std::snprintf(Path, sizeof(Path), "%s/trace-%d.shard.json", Dir,
                static_cast<int>(getpid()));
  std::string Doc = Tracer::global().shardJson(
      static_cast<std::uint32_t>(getpid()), Tracer::wallMicrosAtEpoch());
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write trace shard to %s\n", Path);
    return false;
  }
  std::fwrite(Doc.data(), 1, Doc.size(), F);
  std::fclose(F);
  return true;
}

void aqua::obs::initProcessTracing() {
  if (!traceShardDir())
    return;
  Tracer::setEnabled(true);
  static bool Registered = [] {
    // Construct the tracer *before* registering the flush: atexit
    // handlers and static destructors share one LIFO stack, so the
    // handler (registered later) runs first, while the tracer is alive.
    (void)Tracer::global();
    std::atexit([] { (void)flushTraceShard(); });
    return true;
  }();
  (void)Registered;
}

//===----------------------------------------------------------------------===//
// SpanGuard
//===----------------------------------------------------------------------===//

void SpanGuard::finish() {
  std::uint64_t End = Tracer::nowMicros();
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Phase = 'X';
  E.TsMicros = StartMicros;
  E.DurMicros = End > StartMicros ? End - StartMicros : 0;
  E.Tid = Tracer::threadId();
  if (Args)
    E.Args = std::move(*Args);
  // A span closed while serving a request carries the request's id, so
  // every row of a request's causal arc is greppable by one value.
  if (std::uint64_t Id = currentTraceId()) {
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "0x%llx",
                  static_cast<unsigned long long>(Id));
    E.Args.push_back({"trace", Buf});
  }
  Tracer::global().record(std::move(E));
}
