//===- Log.cpp - Leveled diagnostics --------------------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/Log.h"

#include "aqua/obs/Metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace aqua;
using namespace aqua::obs;

const char *aqua::obs::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "?";
}

LogLevel aqua::obs::parseLogLevel(const char *Text, LogLevel Fallback) {
  if (!Text)
    return Fallback;
  for (LogLevel L : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                     LogLevel::Error, LogLevel::Off})
    if (!std::strcmp(Text, logLevelName(L)))
      return L;
  return Fallback;
}

std::atomic<int> obs::detail::ActiveLevel{[] {
  return static_cast<int>(parseLogLevel(std::getenv("AQUA_LOG")));
}()};

LogLevel aqua::obs::logLevel() {
  return static_cast<LogLevel>(
      detail::ActiveLevel.load(std::memory_order_relaxed));
}

void aqua::obs::setLogLevel(LogLevel L) {
  detail::ActiveLevel.store(static_cast<int>(L), std::memory_order_relaxed);
}

namespace {

/// Per-level emission counters, resolved once.
Counter &levelCounter(LogLevel L) {
  static Counter &Debug = metrics().counter("obs.log.debug");
  static Counter &Info = metrics().counter("obs.log.info");
  static Counter &Warn = metrics().counter("obs.log.warn");
  static Counter &Error = metrics().counter("obs.log.error");
  switch (L) {
  case LogLevel::Debug:
    return Debug;
  case LogLevel::Info:
    return Info;
  case LogLevel::Warn:
    return Warn;
  default:
    return Error;
  }
}

} // namespace

void aqua::obs::logMessage(LogLevel L, const char *Subsystem,
                           const std::string &Msg) {
  // Re-check under races with setLogLevel: the macro's guard is advisory.
  if (!logEnabled(L)) {
    static Counter &Suppressed = metrics().counter("obs.log.suppressed");
    Suppressed.add();
    return;
  }
  levelCounter(L).add();
  static std::mutex EmitMutex;
  std::lock_guard<std::mutex> Lock(EmitMutex);
  std::fprintf(stderr, "aqua[%s] %s: %s\n", logLevelName(L), Subsystem,
               Msg.c_str());
}
