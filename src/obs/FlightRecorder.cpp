//===- FlightRecorder.cpp - Per-request digest ring -----------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// JSON schema (aqua.flight.v1):
//
//   {
//     "schema": "aqua.flight.v1",
//     "recorded": <uint>, "dropped": <uint>,
//     "digests": [
//       { "trace": "0x<hex>", "name": <string>, "outcome": <string>,
//         "cause": <string>, "ok": <bool>, "queueWaitSec": <number>,
//         "solveSec": <number>, "latencySec": <number>,
//         "wallMicros": <uint> }, ...
//     ]
//   }
//
//===----------------------------------------------------------------------===//

#include "aqua/obs/FlightRecorder.h"

#include "aqua/obs/Metrics.h"

#include <algorithm>
#include <cstdio>

using namespace aqua;
using namespace aqua::obs;

const char *aqua::obs::requestOutcomeName(RequestOutcome O) {
  switch (O) {
  case RequestOutcome::Miss:
    return "miss";
  case RequestOutcome::Hit:
    return "hit";
  case RequestOutcome::HitL2:
    return "hit_l2";
  case RequestOutcome::Join:
    return "join";
  case RequestOutcome::Shed:
    return "shed";
  }
  return "unknown";
}

const char *aqua::obs::shedCauseName(ShedCause C) {
  switch (C) {
  case ShedCause::None:
    return "none";
  case ShedCause::QueueFull:
    return "queue_full";
  case ShedCause::DeadlineExpired:
    return "deadline";
  }
  return "unknown";
}

namespace {

struct FlightMetrics {
  obs::Counter &Digests = obs::metrics().counter("service.request_digests");
  obs::Counter &Dropped = obs::metrics().counter("obs.flight.dropped");
};

FlightMetrics &flightMet() {
  static FlightMetrics M;
  return M;
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t Capacity)
    : Capacity(std::max<std::size_t>(8, Capacity)) {
  Ring.reserve(this->Capacity);
}

FlightRecorder &FlightRecorder::global() {
  static FlightRecorder R;
  return R;
}

void FlightRecorder::record(RequestDigest D) {
  FlightMetrics &M = flightMet();
  M.Digests.add();
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Ring.size() < Capacity) {
    Ring.push_back(std::move(D));
  } else {
    Ring[Recorded % Capacity] = std::move(D);
    M.Dropped.add();
  }
  ++Recorded;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Ring.size();
}

std::uint64_t FlightRecorder::recordedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Recorded;
}

std::uint64_t FlightRecorder::droppedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Recorded > Ring.size() ? Recorded - Ring.size() : 0;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Ring.clear();
  Recorded = 0;
}

std::vector<RequestDigest> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<RequestDigest> Out;
  Out.reserve(Ring.size());
  if (Ring.size() < Capacity) {
    Out = Ring;
  } else {
    std::size_t Head = Recorded % Capacity; // Oldest slot.
    for (std::size_t I = 0; I < Capacity; ++I)
      Out.push_back(Ring[(Head + I) % Capacity]);
  }
  return Out;
}

namespace {

void appendQuoted(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

} // namespace

std::string FlightRecorder::json() const {
  std::vector<RequestDigest> Digests = snapshot();
  std::uint64_t Recorded = recordedCount();
  std::uint64_t Dropped = droppedCount();

  std::string Out = "{\n  \"schema\": \"aqua.flight.v1\",\n";
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "  \"recorded\": %llu, \"dropped\": %llu,\n  \"digests\": [",
                static_cast<unsigned long long>(Recorded),
                static_cast<unsigned long long>(Dropped));
  Out += Buf;
  bool First = true;
  for (const RequestDigest &D : Digests) {
    Out += First ? "\n    " : ",\n    ";
    First = false;
    std::snprintf(Buf, sizeof(Buf), "{\"trace\": \"0x%llx\", \"name\": ",
                  static_cast<unsigned long long>(D.TraceId));
    Out += Buf;
    appendQuoted(Out, D.Name);
    std::snprintf(Buf, sizeof(Buf),
                  ", \"outcome\": \"%s\", \"cause\": \"%s\", \"ok\": %s, "
                  "\"queueWaitSec\": %.9g, \"solveSec\": %.9g, "
                  "\"latencySec\": %.9g, \"wallMicros\": %llu}",
                  requestOutcomeName(D.Outcome), shedCauseName(D.Cause),
                  D.Ok ? "true" : "false", D.QueueWaitSec, D.SolveSec,
                  D.LatencySec, static_cast<unsigned long long>(D.WallMicros));
    Out += Buf;
  }
  Out += "\n  ]\n}\n";
  return Out;
}

bool FlightRecorder::writeJsonFile(const std::string &Path) const {
  std::string Doc = json();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write flight record to %s\n",
                 Path.c_str());
    return false;
  }
  std::fwrite(Doc.data(), 1, Doc.size(), F);
  std::fclose(F);
  return true;
}
