//===- SolveCache.cpp - Sharded memoizing solve cache --------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Concurrency protocol (see the header for the overview):
//
//  * Readers never take the shard mutex. A lookup probes the slot table
//    with the seqlock recipe that is well-defined under the C++ memory
//    model: load Version with acquire (odd means a writer is inside the
//    slot), read the key/state fields with relaxed loads, issue an acquire
//    fence, and re-read Version -- an unchanged even version proves the
//    relaxed reads saw one consistent slot image. The artifact handle is
//    then copied under the per-slot spin flag and the version re-checked
//    once more, so a handle is only returned if the slot still held the
//    probed key when the copy happened.
//
//  * Writers hold the shard mutex, so there is exactly one writer per
//    shard. Every slot mutation is bracketed by beginSlotWrite (version to
//    odd, release fence) / endSlotWrite (version to even, release store).
//
//  * shared_ptr copies cannot be done under the seqlock alone (a torn
//    read of a shared_ptr is UB, not just a stale value), hence the tiny
//    per-slot spin flag around the copy/swap; destruction of displaced
//    values always happens outside the spin window.
//
//  * CLOCK bits (Slot::Ref) are relaxed atomics that hits set without any
//    lock; the eviction hand clears them under the mutex. The only cost of
//    a racy bit is approximate recency -- exactly the CLOCK contract.
//
//  * The decoded victim cache has its own mutex, only ever taken on the
//    miss path, and never while a shard mutex is held (displaced entries
//    are handed out of insertLocked and stashed after unlock), so the two
//    locks cannot deadlock.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/SolveCache.h"

#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"
#include "aqua/service/ArtifactCodec.h"
#include "aqua/store/SolveStore.h"

#include <algorithm>

using namespace aqua;
using namespace aqua::service;

namespace {

/// Global-registry instruments, resolved once.
struct CacheMetrics {
  obs::Counter &Insertions =
      obs::metrics().counter("service.cache.insertions");
  obs::Counter &Evictions = obs::metrics().counter("service.cache.evictions");
  obs::Counter &HitsL2 = obs::metrics().counter("service.cache.hits_l2");
  obs::Counter &SeqlockRetries =
      obs::metrics().counter("service.cache.seqlock_retries");
  obs::Counter &DecodedHits =
      obs::metrics().counter("service.cache.decoded_hits");
};

CacheMetrics &met() {
  static CacheMetrics M;
  return M;
}

std::size_t stringBytes(const std::string &S) { return S.capacity(); }

std::size_t graphBytes(const ir::AssayGraph &G) {
  std::size_t Bytes = G.numNodeSlots() * sizeof(ir::Node) +
                      G.numEdgeSlots() * sizeof(ir::Edge);
  for (ir::NodeId N = 0; N < G.numNodeSlots(); ++N) {
    const ir::Node &Nd = G.node(N);
    Bytes += stringBytes(Nd.Name) + stringBytes(Nd.Params.Flavor) +
             stringBytes(Nd.Params.Matrix) + stringBytes(Nd.Params.Pusher) +
             (Nd.In.size() + Nd.Out.size()) * sizeof(ir::EdgeId);
  }
  return Bytes;
}

/// Slot states. Probe chains skip tombstones and stop at empties.
constexpr std::uint8_t SlotEmpty = 0;
constexpr std::uint8_t SlotFull = 1;
constexpr std::uint8_t SlotTombstone = 2;

/// Seqlock retries a reader spends before giving up on optimism and
/// taking the shard mutex (only plausible under a pathological writer
/// storm on one slot).
constexpr int MaxOptimisticRetries = 256;

} // namespace

std::size_t CompileArtifact::approxBytes() const {
  std::size_t Bytes = sizeof(CompileArtifact);
  Bytes += stringBytes(Error) + stringBytes(VM.Log);
  Bytes += graphBytes(VM.Graph);
  Bytes += (VM.Volumes.NodeVolumeNl.size() + VM.Volumes.EdgeVolumeNl.size() +
            Metered.NodeVolumeNl.size() + Metered.EdgeVolumeNl.size()) *
           sizeof(double);
  Bytes += (VM.Rounded.NodeUnits.size() + VM.Rounded.EdgeUnits.size()) *
           sizeof(std::int64_t);
  Bytes += Program.Instrs.size() * sizeof(codegen::Instruction);
  for (const codegen::Instruction &I : Program.Instrs)
    Bytes += stringBytes(I.Note);
  return Bytes;
}

std::size_t SolveCache::StripedCounter::stripe() {
  static std::atomic<std::size_t> Next{0};
  static thread_local std::size_t Mine =
      Next.fetch_add(1, std::memory_order_relaxed);
  return Mine & 15;
}

SolveCache::SolveCache(const CacheConfig &Config) {
  int NumShards = std::max(1, Config.Shards);
  MaxEntriesPerShard = std::max<std::size_t>(
      Config.MaxEntries ? 1 : 0, Config.MaxEntries / NumShards);
  MaxBytesPerShard = std::max<std::size_t>(1, Config.MaxBytes / NumShards);
  DecodedCap = Config.DecodedEntries;
  // The slot table is fixed at construction: a power of two with load
  // factor <= 1/2 at the entry budget, so probe chains stay short and an
  // Empty terminator always exists.
  std::size_t NumSlots = 0;
  if (MaxEntriesPerShard) {
    NumSlots = 4;
    while (NumSlots < MaxEntriesPerShard * 2)
      NumSlots <<= 1;
  }
  SlotMask = NumSlots ? NumSlots - 1 : 0;
  Shards.reserve(NumShards);
  for (int I = 0; I < NumShards; ++I) {
    auto S = std::make_unique<Shard>();
    S->Slots = std::vector<Slot>(NumSlots);
    Shards.push_back(std::move(S));
  }
}

SolveCache::Shard &SolveCache::shardFor(const ir::Fingerprint &Key) {
  // The fingerprint is uniformly mixed; the top bits pick the shard (the
  // low bits pick the slot, so the two choices stay independent).
  return *Shards[(Key.Hi >> 32) % Shards.size()];
}

std::shared_ptr<const CompileArtifact>
SolveCache::slotValue(const Slot &SL) {
  while (SL.ValueLock.test_and_set(std::memory_order_acquire)) {
  }
  std::shared_ptr<const CompileArtifact> Val = SL.Value;
  SL.ValueLock.clear(std::memory_order_release);
  return Val;
}

std::shared_ptr<const CompileArtifact>
SolveCache::setSlotValue(Slot &SL,
                         std::shared_ptr<const CompileArtifact> Value) {
  while (SL.ValueLock.test_and_set(std::memory_order_acquire)) {
  }
  SL.Value.swap(Value);
  SL.ValueLock.clear(std::memory_order_release);
  // The displaced handle (now in Value) is returned and, if the caller
  // drops it, destroyed outside the spin window.
  return Value;
}

void SolveCache::beginSlotWrite(Slot &SL) {
#if defined(__SANITIZE_THREAD__)
  // TSan cannot model standalone fences (gcc rejects them under -Werror),
  // so sanitizer builds publish the odd version seq_cst on the atomic
  // itself. Every slot field is atomic either way; only the ordering
  // proof differs, never the race-freedom TSan checks.
  SL.Version.store(SL.Version.load(std::memory_order_relaxed) + 1,
                   std::memory_order_seq_cst);
#else
  SL.Version.store(SL.Version.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
#endif
}

void SolveCache::endSlotWrite(Slot &SL) {
  SL.Version.store(SL.Version.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
}

std::shared_ptr<const CompileArtifact>
SolveCache::findOptimistic(Shard &S, const ir::Fingerprint &Key) {
  if (S.Slots.empty())
    return nullptr;
  const std::size_t NumSlots = S.Slots.size();
  const std::size_t H = KeyHash{}(Key);
  int Budget = MaxOptimisticRetries;
  for (std::size_t P = 0; P < NumSlots; ++P) {
    Slot &SL = S.Slots[(H + P) & SlotMask];
  Retry:
    std::uint64_t V1 = SL.Version.load(std::memory_order_acquire);
    if (V1 & 1) {
      SeqlockRetryCount.add();
      met().SeqlockRetries.add();
      if (--Budget <= 0)
        return lockedFind(S, Key);
      goto Retry;
    }
    std::uint64_t Hi = SL.KeyHi.load(std::memory_order_relaxed);
    std::uint64_t Lo = SL.KeyLo.load(std::memory_order_relaxed);
    std::uint8_t St = SL.State.load(std::memory_order_relaxed);
#if defined(__SANITIZE_THREAD__)
    if (SL.Version.load(std::memory_order_seq_cst) != V1) {
#else
    std::atomic_thread_fence(std::memory_order_acquire);
    if (SL.Version.load(std::memory_order_relaxed) != V1) {
#endif
      SeqlockRetryCount.add();
      met().SeqlockRetries.add();
      if (--Budget <= 0)
        return lockedFind(S, Key);
      goto Retry;
    }
    // The relaxed reads above are one consistent image of the slot.
    if (St == SlotEmpty)
      return nullptr; // end of the probe chain: not resident.
    if (St == SlotFull && Hi == Key.Hi && Lo == Key.Lo) {
      std::shared_ptr<const CompileArtifact> Val = slotValue(SL);
      // The slot may have been reassigned between the validated image and
      // the handle copy; an unchanged version proves Val belongs to Key.
      if (SL.Version.load(std::memory_order_acquire) != V1) {
        SeqlockRetryCount.add();
        met().SeqlockRetries.add();
        if (--Budget <= 0)
          return lockedFind(S, Key);
        goto Retry;
      }
      SL.Ref.store(1, std::memory_order_relaxed); // CLOCK touch, no lock.
      return Val;
    }
    // Tombstone or a different key: keep probing.
  }
  return nullptr;
}

std::shared_ptr<const CompileArtifact>
SolveCache::lockedFind(Shard &S, const ir::Fingerprint &Key) {
  std::lock_guard<std::mutex> Lock(S.Mutex);
  const std::size_t H = KeyHash{}(Key);
  for (std::size_t P = 0; P < S.Slots.size(); ++P) {
    Slot &SL = S.Slots[(H + P) & SlotMask];
    std::uint8_t St = SL.State.load(std::memory_order_relaxed);
    if (St == SlotEmpty)
      return nullptr;
    if (St == SlotFull && SL.KeyHi.load(std::memory_order_relaxed) == Key.Hi &&
        SL.KeyLo.load(std::memory_order_relaxed) == Key.Lo) {
      SL.Ref.store(1, std::memory_order_relaxed);
      return slotValue(SL);
    }
  }
  return nullptr;
}

std::shared_ptr<const CompileArtifact>
SolveCache::lookup(const ir::Fingerprint &Key, bool *FromL2) {
  if (FromL2)
    *FromL2 = false;
  Shard &S = shardFor(Key);
  if (std::shared_ptr<const CompileArtifact> Val = findOptimistic(S, Key)) {
    HitCount.add();
    return Val;
  }
  // L1 miss: the decoded victim cache may still hold the artifact in
  // decoded form (displaced from L1, or pulled from L2 earlier), which
  // skips both the codec and the store.
  if (std::shared_ptr<const CompileArtifact> Val = takeDecoded(Key)) {
    DecodedHitCount.add();
    met().DecodedHits.add();
    std::vector<Victim> Victims;
    {
      std::lock_guard<std::mutex> Lock(S.Mutex);
      insertLocked(S, Key, Val, Victims);
    }
    stashVictims(std::move(Victims));
    HitCount.add();
    return Val;
  }
  if (!L2) {
    MissCount.add();
    return nullptr;
  }
  // Consult the store via its zero-copy view path (the payload stays in
  // the segment mapping; only the decode allocates).
  obs::SpanGuard Span("service.cache.l2", "service");
  store::ArtifactView View;
  if (!L2->getView(Key, View)) {
    Span.arg("outcome", "miss");
    MissCount.add();
    return nullptr;
  }
  Span.arg("outcome", "hit");
  Expected<CompileArtifact> Decoded = decodeArtifact(View.Payload);
  if (!Decoded.ok()) {
    MissCount.add();
    std::lock_guard<std::mutex> Lock(S.Mutex);
    ++S.L2DecodeErrors;
    return nullptr;
  }
  auto Value =
      std::make_shared<const CompileArtifact>(std::move(Decoded.get()));
  // Promote into L1 without writing back. A racing insert may already
  // have published an (identical -- the pipeline is deterministic)
  // artifact; replacing it is harmless.
  std::vector<Victim> Victims;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    insertLocked(S, Key, Value, Victims);
    ++S.HitsL2;
  }
  stashVictims(std::move(Victims));
  if (MaxEntriesPerShard == 0 && DecodedCap) {
    // With L1 disabled the decoded cache is the only place the decoded
    // form can live; stash it so the next miss skips the codec.
    std::vector<Victim> Stash;
    Stash.push_back(Victim{Key, Value});
    stashVictims(std::move(Stash));
  }
  HitCount.add();
  met().HitsL2.add();
  if (FromL2)
    *FromL2 = true;
  return Value;
}

void SolveCache::insert(const ir::Fingerprint &Key,
                        std::shared_ptr<const CompileArtifact> Value) {
  if (MaxEntriesPerShard == 0 || !Value)
    return;
  // Write through to the persistent store first, outside the shard lock. A
  // store failure (disk full, unwritable dir) costs persistence only.
  if (L2)
    (void)L2->put(Key, encodeArtifact(*Value));
  Shard &S = shardFor(Key);
  std::vector<Victim> Victims;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    insertLocked(S, Key, std::move(Value), Victims);
  }
  stashVictims(std::move(Victims));
}

void SolveCache::insertLocked(Shard &S, const ir::Fingerprint &Key,
                              std::shared_ptr<const CompileArtifact> Value,
                              std::vector<Victim> &Victims) {
  if (MaxEntriesPerShard == 0 || !Value || S.Slots.empty())
    return;
  std::size_t BytesCharge = Value->approxBytes();
  const std::size_t H = KeyHash{}(Key);
  Slot *Match = nullptr;
  Slot *FirstFree = nullptr;
  bool FreeIsTombstone = false;
  for (std::size_t P = 0; P < S.Slots.size(); ++P) {
    Slot &SL = S.Slots[(H + P) & SlotMask];
    std::uint8_t St = SL.State.load(std::memory_order_relaxed);
    if (St == SlotFull) {
      if (SL.KeyHi.load(std::memory_order_relaxed) == Key.Hi &&
          SL.KeyLo.load(std::memory_order_relaxed) == Key.Lo) {
        Match = &SL;
        break;
      }
      continue;
    }
    if (!FirstFree) {
      FirstFree = &SL;
      FreeIsTombstone = (St == SlotTombstone);
    }
    if (St == SlotEmpty)
      break;
  }
  if (Match) {
    Slot &SL = *Match;
    beginSlotWrite(SL);
    std::shared_ptr<const CompileArtifact> Displaced =
        setSlotValue(SL, std::move(Value));
    S.Bytes -= SL.EntryBytes;
    SL.EntryBytes = BytesCharge;
    S.Bytes += BytesCharge;
    endSlotWrite(SL);
    SL.Ref.store(1, std::memory_order_relaxed);
    (void)Displaced; // destroyed here, outside the write window's spin.
  } else if (FirstFree) {
    Slot &SL = *FirstFree;
    beginSlotWrite(SL);
    SL.KeyHi.store(Key.Hi, std::memory_order_relaxed);
    SL.KeyLo.store(Key.Lo, std::memory_order_relaxed);
    SL.State.store(SlotFull, std::memory_order_relaxed);
    (void)setSlotValue(SL, std::move(Value));
    SL.EntryBytes = BytesCharge;
    endSlotWrite(SL);
    SL.Ref.store(1, std::memory_order_relaxed);
    ++S.Entries;
    if (FreeIsTombstone)
      --S.Tombstones;
    S.Bytes += BytesCharge;
  } else {
    // No match and no free slot: the table is wedged (cannot happen while
    // the entry budget is half the slot count and rebuilds run).
    return;
  }
  ++S.Insertions;
  met().Insertions.add();
  evictOverBudgetLocked(S, Victims);
  if (S.Entries + S.Tombstones > (S.Slots.size() * 3) / 4)
    rebuildLocked(S);
}

void SolveCache::evictOverBudgetLocked(Shard &S, std::vector<Victim> &Victims) {
  const std::size_t NumSlots = S.Slots.size();
  while (S.Entries > MaxEntriesPerShard ||
         (S.Bytes > MaxBytesPerShard && S.Entries > 1)) {
    // CLOCK sweep: clear reference bits until a cold Full slot turns up.
    // Two revolutions bound the sweep -- the first clears every bit, so
    // the second must find a cold slot if any Full slot exists.
    Slot *VictimSlot = nullptr;
    for (std::size_t Step = 0; Step < 2 * NumSlots + 1; ++Step) {
      Slot &SL = S.Slots[S.Hand];
      S.Hand = (S.Hand + 1) & SlotMask;
      if (SL.State.load(std::memory_order_relaxed) != SlotFull)
        continue;
      if (SL.Ref.exchange(0, std::memory_order_relaxed) == 0) {
        VictimSlot = &SL;
        break;
      }
    }
    if (!VictimSlot)
      return;
    Slot &SL = *VictimSlot;
    Victim V;
    V.Key = ir::Fingerprint{SL.KeyHi.load(std::memory_order_relaxed),
                            SL.KeyLo.load(std::memory_order_relaxed)};
    beginSlotWrite(SL);
    SL.State.store(SlotTombstone, std::memory_order_relaxed);
    endSlotWrite(SL);
    V.Value = setSlotValue(SL, nullptr);
    S.Bytes -= SL.EntryBytes;
    SL.EntryBytes = 0;
    --S.Entries;
    ++S.Tombstones;
    ++S.Evictions;
    met().Evictions.add();
    if (V.Value && DecodedCap)
      Victims.push_back(std::move(V));
  }
}

void SolveCache::rebuildLocked(Shard &S) {
  // Compact tombstones away by re-inserting every live entry. Readers
  // racing the rebuild may see a transient miss for a resident key; for a
  // cache that is a benign outcome (the caller re-solves or re-fetches).
  struct Saved {
    std::uint64_t Hi = 0, Lo = 0;
    std::shared_ptr<const CompileArtifact> Value;
    std::size_t EntryBytes = 0;
    std::uint8_t Ref = 0;
  };
  std::vector<Saved> Live;
  Live.reserve(S.Entries);
  for (Slot &SL : S.Slots) {
    std::uint8_t St = SL.State.load(std::memory_order_relaxed);
    if (St == SlotFull) {
      Saved Sv;
      Sv.Hi = SL.KeyHi.load(std::memory_order_relaxed);
      Sv.Lo = SL.KeyLo.load(std::memory_order_relaxed);
      Sv.EntryBytes = SL.EntryBytes;
      Sv.Ref = SL.Ref.load(std::memory_order_relaxed);
      beginSlotWrite(SL);
      SL.State.store(SlotEmpty, std::memory_order_relaxed);
      endSlotWrite(SL);
      Sv.Value = setSlotValue(SL, nullptr);
      SL.EntryBytes = 0;
      Live.push_back(std::move(Sv));
    } else if (St == SlotTombstone) {
      beginSlotWrite(SL);
      SL.State.store(SlotEmpty, std::memory_order_relaxed);
      endSlotWrite(SL);
    }
  }
  S.Entries = 0;
  S.Tombstones = 0;
  S.Bytes = 0;
  S.Hand = 0;
  for (Saved &Sv : Live) {
    const std::size_t H = KeyHash{}(ir::Fingerprint{Sv.Hi, Sv.Lo});
    for (std::size_t P = 0; P < S.Slots.size(); ++P) {
      Slot &SL = S.Slots[(H + P) & SlotMask];
      if (SL.State.load(std::memory_order_relaxed) != SlotEmpty)
        continue;
      beginSlotWrite(SL);
      SL.KeyHi.store(Sv.Hi, std::memory_order_relaxed);
      SL.KeyLo.store(Sv.Lo, std::memory_order_relaxed);
      SL.State.store(SlotFull, std::memory_order_relaxed);
      (void)setSlotValue(SL, std::move(Sv.Value));
      SL.EntryBytes = Sv.EntryBytes;
      endSlotWrite(SL);
      SL.Ref.store(Sv.Ref, std::memory_order_relaxed);
      ++S.Entries;
      S.Bytes += Sv.EntryBytes;
      break;
    }
  }
}

void SolveCache::stashVictims(std::vector<Victim> &&Victims) {
  if (!DecodedCap || Victims.empty())
    return;
  std::lock_guard<std::mutex> Lock(DecodedMutex);
  for (Victim &V : Victims) {
    auto [It, Inserted] = DecodedMap.insert_or_assign(V.Key, std::move(V.Value));
    (void)It;
    if (Inserted)
      DecodedFifo.push_back(V.Key);
    // FIFO bound; entries promoted back to L1 leave stale keys behind,
    // which this loop pops harmlessly (map erase of an absent key).
    while (DecodedMap.size() > DecodedCap && !DecodedFifo.empty()) {
      DecodedMap.erase(DecodedFifo.front());
      DecodedFifo.pop_front();
    }
  }
}

std::shared_ptr<const CompileArtifact>
SolveCache::takeDecoded(const ir::Fingerprint &Key) {
  if (!DecodedCap)
    return nullptr;
  std::lock_guard<std::mutex> Lock(DecodedMutex);
  auto It = DecodedMap.find(Key);
  if (It == DecodedMap.end())
    return nullptr;
  std::shared_ptr<const CompileArtifact> Val = std::move(It->second);
  // The entry is promoted back to L1 by the caller; its FIFO key stays
  // behind and is skipped lazily when popped.
  DecodedMap.erase(It);
  return Val;
}

CacheStats SolveCache::stats() const {
  CacheStats Total;
  Total.Hits = HitCount.total();
  Total.Misses = MissCount.total();
  Total.SeqlockRetries = SeqlockRetryCount.total();
  Total.DecodedHits = DecodedHitCount.total();
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total.Insertions += S->Insertions;
    Total.Evictions += S->Evictions;
    Total.HitsL2 += S->HitsL2;
    Total.L2DecodeErrors += S->L2DecodeErrors;
    Total.Entries += S->Entries;
    Total.Bytes += S->Bytes;
  }
  return Total;
}

void SolveCache::clear() {
  for (const std::unique_ptr<Shard> &SPtr : Shards) {
    Shard &S = *SPtr;
    std::lock_guard<std::mutex> Lock(S.Mutex);
    for (Slot &SL : S.Slots) {
      if (SL.State.load(std::memory_order_relaxed) == SlotEmpty)
        continue;
      beginSlotWrite(SL);
      SL.State.store(SlotEmpty, std::memory_order_relaxed);
      endSlotWrite(SL);
      (void)setSlotValue(SL, nullptr);
      SL.EntryBytes = 0;
      SL.Ref.store(0, std::memory_order_relaxed);
    }
    S.Entries = 0;
    S.Tombstones = 0;
    S.Bytes = 0;
    S.Hand = 0;
  }
  std::lock_guard<std::mutex> Lock(DecodedMutex);
  DecodedMap.clear();
  DecodedFifo.clear();
}
