//===- SolveCache.cpp - Sharded memoizing solve cache --------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/SolveCache.h"

#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"
#include "aqua/service/ArtifactCodec.h"
#include "aqua/store/SolveStore.h"

#include <algorithm>

using namespace aqua;
using namespace aqua::service;

namespace {

/// Global-registry instruments, resolved once.
struct CacheMetrics {
  obs::Counter &Insertions =
      obs::metrics().counter("service.cache.insertions");
  obs::Counter &Evictions = obs::metrics().counter("service.cache.evictions");
  obs::Counter &HitsL2 = obs::metrics().counter("service.cache.hits_l2");
};

CacheMetrics &met() {
  static CacheMetrics M;
  return M;
}

std::size_t stringBytes(const std::string &S) { return S.capacity(); }

std::size_t graphBytes(const ir::AssayGraph &G) {
  std::size_t Bytes = G.numNodeSlots() * sizeof(ir::Node) +
                      G.numEdgeSlots() * sizeof(ir::Edge);
  for (ir::NodeId N = 0; N < G.numNodeSlots(); ++N) {
    const ir::Node &Nd = G.node(N);
    Bytes += stringBytes(Nd.Name) + stringBytes(Nd.Params.Flavor) +
             stringBytes(Nd.Params.Matrix) + stringBytes(Nd.Params.Pusher) +
             (Nd.In.size() + Nd.Out.size()) * sizeof(ir::EdgeId);
  }
  return Bytes;
}

} // namespace

std::size_t CompileArtifact::approxBytes() const {
  std::size_t Bytes = sizeof(CompileArtifact);
  Bytes += stringBytes(Error) + stringBytes(VM.Log);
  Bytes += graphBytes(VM.Graph);
  Bytes += (VM.Volumes.NodeVolumeNl.size() + VM.Volumes.EdgeVolumeNl.size() +
            Metered.NodeVolumeNl.size() + Metered.EdgeVolumeNl.size()) *
           sizeof(double);
  Bytes += (VM.Rounded.NodeUnits.size() + VM.Rounded.EdgeUnits.size()) *
           sizeof(std::int64_t);
  Bytes += Program.Instrs.size() * sizeof(codegen::Instruction);
  for (const codegen::Instruction &I : Program.Instrs)
    Bytes += stringBytes(I.Note);
  return Bytes;
}

SolveCache::SolveCache(const CacheConfig &Config) {
  int NumShards = std::max(1, Config.Shards);
  Shards.reserve(NumShards);
  for (int I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  MaxEntriesPerShard = std::max<std::size_t>(
      Config.MaxEntries ? 1 : 0, Config.MaxEntries / NumShards);
  MaxBytesPerShard = std::max<std::size_t>(1, Config.MaxBytes / NumShards);
}

SolveCache::Shard &SolveCache::shardFor(const ir::Fingerprint &Key) {
  // The fingerprint is uniformly mixed; the top bits pick the shard.
  return *Shards[(Key.Hi >> 32) % Shards.size()];
}

std::shared_ptr<const CompileArtifact>
SolveCache::lookup(const ir::Fingerprint &Key, bool *FromL2) {
  if (FromL2)
    *FromL2 = false;
  Shard &S = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Index.find(Key);
    if (It != S.Index.end()) {
      ++S.Hits;
      // Refresh recency: move to the front of the LRU list.
      S.LRU.splice(S.LRU.begin(), S.LRU, It->second);
      return It->second->Value;
    }
    if (!L2) {
      ++S.Misses;
      return nullptr;
    }
  }
  // L1 miss with an L2 attached: consult the store outside the shard lock
  // (store reads do file I/O and take the store's own lock).
  obs::SpanGuard Span("service.cache.l2", "service");
  std::string Payload;
  if (!L2->get(Key, Payload)) {
    Span.arg("outcome", "miss");
    std::lock_guard<std::mutex> Lock(S.Mutex);
    ++S.Misses;
    return nullptr;
  }
  Span.arg("outcome", "hit");
  Expected<CompileArtifact> Decoded = decodeArtifact(Payload);
  if (!Decoded.ok()) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    ++S.Misses;
    ++S.L2DecodeErrors;
    return nullptr;
  }
  auto Value =
      std::make_shared<const CompileArtifact>(std::move(Decoded.get()));
  std::lock_guard<std::mutex> Lock(S.Mutex);
  // Promote into L1 without writing back; a racing insert may have beaten
  // us here, in which case the racer's (identical) artifact wins.
  auto It = S.Index.find(Key);
  if (It == S.Index.end())
    insertLocked(S, Key, Value);
  else
    Value = It->second->Value;
  ++S.Hits;
  ++S.HitsL2;
  met().HitsL2.add();
  if (FromL2)
    *FromL2 = true;
  return Value;
}

void SolveCache::insert(const ir::Fingerprint &Key,
                        std::shared_ptr<const CompileArtifact> Value) {
  if (MaxEntriesPerShard == 0 || !Value)
    return;
  // Write through to the persistent store first, outside the shard lock. A
  // store failure (disk full, unwritable dir) costs persistence only.
  if (L2)
    (void)L2->put(Key, encodeArtifact(*Value));
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  insertLocked(S, Key, std::move(Value));
}

void SolveCache::insertLocked(Shard &S, const ir::Fingerprint &Key,
                              std::shared_ptr<const CompileArtifact> Value) {
  if (MaxEntriesPerShard == 0 || !Value)
    return;
  std::size_t Bytes = Value->approxBytes();
  auto It = S.Index.find(Key);
  if (It != S.Index.end()) {
    S.Bytes -= It->second->Bytes;
    S.LRU.erase(It->second);
    S.Index.erase(It);
  }
  S.LRU.push_front(Entry{Key, std::move(Value), Bytes});
  S.Index.emplace(Key, S.LRU.begin());
  S.Bytes += Bytes;
  ++S.Insertions;
  met().Insertions.add();
  evictOverBudgetLocked(S);
}

void SolveCache::evictOverBudgetLocked(Shard &S) {
  while (S.LRU.size() > MaxEntriesPerShard ||
         (S.Bytes > MaxBytesPerShard && S.LRU.size() > 1)) {
    const Entry &Victim = S.LRU.back();
    S.Bytes -= Victim.Bytes;
    S.Index.erase(Victim.Key);
    S.LRU.pop_back();
    ++S.Evictions;
    met().Evictions.add();
  }
}

CacheStats SolveCache::stats() const {
  CacheStats Total;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total.Hits += S->Hits;
    Total.Misses += S->Misses;
    Total.Insertions += S->Insertions;
    Total.Evictions += S->Evictions;
    Total.HitsL2 += S->HitsL2;
    Total.L2DecodeErrors += S->L2DecodeErrors;
    Total.Entries += S->LRU.size();
    Total.Bytes += S->Bytes;
  }
  return Total;
}

void SolveCache::clear() {
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->LRU.clear();
    S->Index.clear();
    S->Bytes = 0;
  }
}
