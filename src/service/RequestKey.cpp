//===- RequestKey.cpp - Canonical compile-request key --------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/RequestKey.h"

#include <algorithm>

using namespace aqua;
using namespace aqua::service;

namespace {

/// Hashes a node reference insertion-order-independently: by the node's
/// canonical refinement hash rather than its slot id.
std::uint64_t canonicalNodeRef(const ir::CanonicalForm &Canon, ir::NodeId N) {
  if (N < 0 || N >= static_cast<ir::NodeId>(Canon.NodeHash.size()))
    return 0; // Invalid/dangling reference: stable sentinel.
  return Canon.NodeHash[N];
}

void addSpec(ir::FingerprintHasher &H, const core::MachineSpec &Spec) {
  H.add(Spec.MaxCapacityNl);
  H.add(Spec.LeastCountNl);
  H.add(Spec.Limits.MaxInputs);
  H.add(Spec.Limits.MaxNodes);
}

void addLPOptions(ir::FingerprintHasher &H, const lp::SolverOptions &Opts) {
  H.add(Opts.Simplex.TimeLimitSec);
  H.add(Opts.Simplex.MaxIterations);
  H.add(std::uint64_t(Opts.Simplex.MaxTableauBytes));
  H.add(Opts.Simplex.StallThreshold);
  H.add(Opts.Presolve);
}

void addDagOptions(ir::FingerprintHasher &H, const ir::CanonicalForm &Canon,
                   const core::DagSolveOptions &Opts) {
  // Output weights as a sorted multiset of (canonical node, weight).
  std::vector<std::pair<std::uint64_t, Rational>> Weights;
  Weights.reserve(Opts.OutputWeights.size());
  for (const auto &[Node, Weight] : Opts.OutputWeights)
    Weights.emplace_back(canonicalNodeRef(Canon, Node), Weight);
  std::sort(Weights.begin(), Weights.end(),
            [](const auto &A, const auto &B) {
              if (A.first != B.first)
                return A.first < B.first;
              return A.second < B.second;
            });
  H.add(std::uint64_t(Weights.size()));
  for (const auto &[Ref, Weight] : Weights) {
    H.add(Ref);
    H.add(Weight);
  }
  H.add(Opts.PinnedNode.has_value());
  if (Opts.PinnedNode)
    H.add(canonicalNodeRef(Canon, *Opts.PinnedNode));
  H.add(Opts.PinnedVolumeNl);
}

void addManagerOptions(ir::FingerprintHasher &H,
                       const ir::CanonicalForm &Canon,
                       const core::ManagerOptions &Opts) {
  H.add(Opts.UseLPFallback);
  H.add(Opts.AllowCascading);
  H.add(Opts.AllowReplication);
  H.add(Opts.MaxIterations);
  H.add(Opts.CascadeSkewThreshold);
  H.add(Opts.MaxCascadeStages);
  H.add(Opts.TargetMeanRoundErrorPct);
  H.add(Opts.MaxErrorRefineSteps);
  addLPOptions(H, Opts.LPOptions);
  addDagOptions(H, Canon, Opts.DagOptions);
}

void addLayout(ir::FingerprintHasher &H, const codegen::MachineLayout &L) {
  H.add(L.Reservoirs);
  H.add(L.Mixers);
  H.add(L.Heaters);
  H.add(L.Sensors);
  H.add(L.Separators);
  H.add(L.InputPorts);
  H.add(L.OutputPorts);
}

ir::Fingerprint fingerprintWithTag(std::string_view Tag,
                                   const ir::CanonicalForm &Canon,
                                   const core::MachineSpec &Spec,
                                   const core::ManagerOptions &Opts,
                                   const codegen::MachineLayout &Layout) {
  ir::FingerprintHasher H;
  // Domain tag so a request fingerprint never equals a bare graph one
  // (nor a structure key a request fingerprint).
  H.add(Tag);
  H.add(Canon.Hash.Hi);
  H.add(Canon.Hash.Lo);
  addSpec(H, Spec);
  addManagerOptions(H, Canon, Opts);
  addLayout(H, Layout);
  return H.finish();
}

} // namespace

ir::Fingerprint
service::requestFingerprint(const ir::CanonicalForm &Canon,
                            const core::MachineSpec &Spec,
                            const core::ManagerOptions &Opts,
                            const codegen::MachineLayout &Layout) {
  return fingerprintWithTag("aqua.service.request.v1", Canon, Spec, Opts,
                            Layout);
}

ir::Fingerprint
service::structureFingerprint(const ir::CanonicalForm &Canon,
                              const core::MachineSpec &Spec,
                              const core::ManagerOptions &Opts,
                              const codegen::MachineLayout &Layout) {
  // Neutralize the inputs that enter the LP only as rhs values / bounds;
  // everything else (graph structure, option flags, layout) must match
  // for a donor basis to be structurally transferable.
  core::MachineSpec S = Spec;
  S.MaxCapacityNl = 0.0;
  core::ManagerOptions O = Opts;
  O.DagOptions.PinnedVolumeNl = 0.0;
  return fingerprintWithTag("aqua.service.structure.v1", Canon, S, O, Layout);
}

ir::Fingerprint
service::requestFingerprint(const ir::AssayGraph &G,
                            const core::MachineSpec &Spec,
                            const core::ManagerOptions &Opts,
                            const codegen::MachineLayout &Layout) {
  return requestFingerprint(ir::canonicalize(G), Spec, Opts, Layout);
}
