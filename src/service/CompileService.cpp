//===- CompileService.cpp - Concurrent compile service -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/CompileService.h"

#include "aqua/core/Rounding.h"
#include "aqua/lang/Lower.h"
#include "aqua/obs/FlightRecorder.h"
#include "aqua/obs/Log.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Timer.h"
#include "aqua/obs/Trace.h"
#include "aqua/service/RequestKey.h"
#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <chrono>

using namespace aqua;
using namespace aqua::service;

namespace {

/// Lock-free accumulate for pre-C++20-atomic-float toolchains.
void addDouble(std::atomic<double> &Sink, double V) {
  double Old = Sink.load(std::memory_order_relaxed);
  while (!Sink.compare_exchange_weak(Old, Old + V, std::memory_order_relaxed))
    ;
}

/// Global-registry instruments, resolved once (registry lookups take a
/// mutex; the references are stable).
struct ServiceMetrics {
  obs::Counter &Submitted = obs::metrics().counter("service.requests.submitted");
  obs::Counter &Completed = obs::metrics().counter("service.requests.completed");
  obs::Counter &Failed = obs::metrics().counter("service.requests.failed");
  obs::Counter &CacheHits = obs::metrics().counter("service.cache.hits");
  obs::Counter &CacheMisses = obs::metrics().counter("service.cache.misses");
  obs::Counter &Joins = obs::metrics().counter("service.singleflight.joins");
  obs::Counter &CanonMemoHits =
      obs::metrics().counter("service.canon_memo_hits");
  obs::Counter &WarmMissHits =
      obs::metrics().counter("service.warm_miss_hits");
  obs::Counter &ShedTotal = obs::metrics().counter("service.shed_total");
  obs::Counter &ShedQueueFull =
      obs::metrics().counter("service.shed.queue_full");
  obs::Counter &ShedDeadline = obs::metrics().counter("service.shed.deadline");
  obs::Gauge &QueueDepth = obs::metrics().gauge("service.queue_depth");
  obs::Histogram &QueueWaitSec =
      obs::metrics().histogram("service.queue_wait_sec");
  obs::Histogram &LatencySec = obs::metrics().histogram("service.latency_sec");
  obs::Histogram &SolveSec = obs::metrics().histogram("service.solve_sec");
};

ServiceMetrics &met() {
  static ServiceMetrics M;
  return M;
}

bool hasUnknownVolumes(const ir::AssayGraph &G) {
  for (ir::NodeId N : G.liveNodes())
    if (G.node(N).UnknownVolume)
      return true;
  return false;
}

std::uint64_t wallMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

} // namespace

const char *aqua::service::shedReasonName(ShedReason R) {
  switch (R) {
  case ShedReason::None:
    return "none";
  case ShedReason::QueueFull:
    return "queue_full";
  case ShedReason::DeadlineExpired:
    return "deadline_expired";
  }
  return "unknown";
}

std::string ServiceStats::str() const {
  return format(
      "submitted %llu, completed %llu (%llu failed), shed %llu "
      "(%llu queue-full, %llu deadline), cache hits %llu (%llu from L2, "
      "%.1f%% hit rate), single-flight joins %llu, warm misses %llu, "
      "evictions %llu, "
      "%zu cached entries (%.1f MiB), %.3f s solving, %.3f s total latency",
      static_cast<unsigned long long>(Submitted),
      static_cast<unsigned long long>(Completed),
      static_cast<unsigned long long>(Failed),
      static_cast<unsigned long long>(shedTotal()),
      static_cast<unsigned long long>(ShedQueueFull),
      static_cast<unsigned long long>(ShedDeadline),
      static_cast<unsigned long long>(CacheHits),
      static_cast<unsigned long long>(CacheHitsL2), Cache.hitRate() * 100.0,
      static_cast<unsigned long long>(SingleFlightJoins),
      static_cast<unsigned long long>(WarmMissHits),
      static_cast<unsigned long long>(Cache.Evictions), Cache.Entries,
      static_cast<double>(Cache.Bytes) / (1024.0 * 1024.0), SolveSec,
      TotalLatencySec);
}

CompileService::CompileService(const ServiceOptions &Options)
    : Options(Options), Cache(Options.Cache), Paused(Options.StartPaused) {
  if (!Options.StoreDir.empty()) {
    auto Opened = store::SolveStore::open(
        Options.StoreDir, Options.Store,
        Options.StoreEnv ? *Options.StoreEnv : store::Env::real());
    if (Opened.ok()) {
      Store = std::move(Opened.get());
      Cache.attachStore(Store.get());
      AQUA_LOG_INFO("service", "solve store attached at %s (%zu keys)",
                    Options.StoreDir.c_str(), Store->stats().Keys);
    } else {
      // Persistence is an optimization; a store that will not open must
      // not take the service down with it.
      AQUA_LOG_WARN("service", "solve store %s unavailable, running "
                               "memory-only: %s",
                    Options.StoreDir.c_str(), Opened.message().c_str());
    }
  }
  int Threads = std::max(1, Options.Threads);
  Workers.reserve(Threads);
  for (int I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    ShuttingDown = true;
  }
  QueueCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

CompileResponse CompileService::shedResponse(const CompileRequest &Request,
                                             ShedReason Reason) {
  CompileResponse R;
  R.Name = Request.Name;
  R.TraceId = Request.TraceId;
  R.Shed = Reason;
  R.Error = format("request shed: %s", shedReasonName(Reason));
  return R;
}

void CompileService::recordDigest(const CompileRequest &Request,
                                  const CompileResponse &R,
                                  double QueueWaitSec, double SolveSec) {
  obs::RequestDigest D;
  D.TraceId = Request.TraceId;
  D.Name = Request.Name;
  if (R.Shed == ShedReason::QueueFull) {
    D.Outcome = obs::RequestOutcome::Shed;
    D.Cause = obs::ShedCause::QueueFull;
  } else if (R.Shed == ShedReason::DeadlineExpired) {
    D.Outcome = obs::RequestOutcome::Shed;
    D.Cause = obs::ShedCause::DeadlineExpired;
  } else if (R.Deduplicated) {
    D.Outcome = obs::RequestOutcome::Join;
  } else if (R.CacheHitL2) {
    D.Outcome = obs::RequestOutcome::HitL2;
  } else if (R.CacheHit) {
    D.Outcome = obs::RequestOutcome::Hit;
  } else {
    D.Outcome = obs::RequestOutcome::Miss;
  }
  D.Ok = R.Ok;
  D.QueueWaitSec = QueueWaitSec;
  D.SolveSec = SolveSec;
  D.LatencySec = R.LatencySec;
  D.WallMicros = wallMicrosNow();
  obs::FlightRecorder::global().record(std::move(D));
}

void CompileService::finishJob(Job &J, CompileResponse &&R) {
  if (J.Batch) {
    // Each request owns its slot, so the write itself is lock-free; the
    // last decrement (acq_rel) publishes every slot to the waiter and is
    // the only completion that touches the mutex.
    J.Batch->Responses[J.BatchIndex] = std::move(R);
    if (J.Batch->Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      { std::lock_guard<std::mutex> Lock(J.Batch->Mutex); }
      J.Batch->CV.notify_all();
    }
    return;
  }
  J.Promise.set_value(std::move(R));
}

void CompileService::workerLoop() {
  // Batched dequeue: on a hot cache the per-job work is microseconds, so
  // a mutex round-trip per job is what serializes the hit path. A worker
  // claims up to MaxDrain jobs per lock acquisition, but never hogs work
  // that a parked sibling could run concurrently.
  constexpr std::size_t MaxDrain = 8;
  std::vector<Job> Drained;
  Drained.reserve(MaxDrain);
  for (;;) {
    Drained.clear();
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      ++IdleWorkers;
      QueueCV.wait(Lock, [this] {
        return ShuttingDown || (!Paused && !Queue.empty());
      });
      --IdleWorkers;
      if (ShuttingDown && Queue.empty())
        return; // Shutting down and drained.
      if (Queue.empty() || (Paused && !ShuttingDown))
        continue;
      std::size_t Fair = Queue.size() / static_cast<std::size_t>(IdleWorkers + 1);
      std::size_t Take = std::min(MaxDrain, std::max<std::size_t>(1, Fair));
      Take = std::min(Take, Queue.size());
      for (std::size_t I = 0; I < Take; ++I) {
        Drained.push_back(std::move(Queue.front()));
        Queue.pop_front();
      }
      met().QueueDepth.set(static_cast<double>(Queue.size()));
    }
    for (Job &J : Drained) {
      std::uint64_t Now = obs::Tracer::nowMicros();
      double QueueWaitSec = (Now - J.EnqueueMicros) * 1e-6;
      met().QueueWaitSec.observe(QueueWaitSec);
      // Deadline admission at dequeue: work that expired while it waited
      // is dead on arrival -- running the pipeline for it only delays the
      // rest of the queue.
      if (J.Request.DeadlineMicros != 0 && Now > J.Request.DeadlineMicros) {
        ShedDeadline.fetch_add(1, std::memory_order_relaxed);
        met().ShedTotal.add();
        met().ShedDeadline.add();
        {
          // The request's flow arc terminates at the shed decision.
          obs::SpanGuard Span("service.shed", "service");
          Span.arg("cause", "deadline");
          obs::traceFlowEnd("service.request", J.Request.TraceId);
        }
        CompileResponse R =
            shedResponse(J.Request, ShedReason::DeadlineExpired);
        recordDigest(J.Request, R, QueueWaitSec, 0.0);
        finishJob(J, std::move(R));
        continue;
      }
      finishJob(J, process(J.Request, QueueWaitSec, /*EndFlow=*/true));
    }
  }
}

std::future<CompileResponse> CompileService::submit(CompileRequest Request) {
  Submitted.fetch_add(1, std::memory_order_relaxed);
  met().Submitted.add();
  if (Request.TraceId == 0)
    Request.TraceId = obs::newTraceId();
  Job J;
  J.EnqueueMicros = obs::Tracer::nowMicros();
  std::future<CompileResponse> Result = J.Promise.get_future();
  bool Wake;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    // Queue-depth admission: shed normal work past the budget; priority
    // work always gets in, and goes to the front.
    if (Options.MaxQueueDepth != 0 && !Request.HighPriority &&
        Queue.size() >= Options.MaxQueueDepth) {
      ShedQueueFull.fetch_add(1, std::memory_order_relaxed);
      met().ShedTotal.add();
      met().ShedQueueFull.add();
      CompileResponse R = shedResponse(Request, ShedReason::QueueFull);
      recordDigest(Request, R, 0.0, 0.0);
      J.Promise.set_value(std::move(R));
      return Result;
    }
    bool Priority = Request.HighPriority;
    // The flow arc's 's' end: begun only for requests actually enqueued,
    // so every arc that starts also ends (at the worker, or at a shed).
    if (obs::Tracer::enabled()) {
      obs::SpanGuard Span("service.submit", "service");
      Span.arg("name", Request.Name);
      obs::traceFlowBegin("service.request", Request.TraceId);
    }
    J.Request = std::move(Request);
    if (Priority)
      Queue.push_front(std::move(J));
    else
      Queue.push_back(std::move(J));
    met().QueueDepth.set(static_cast<double>(Queue.size()));
    Wake = IdleWorkers > 0;
  }
  // Only signal when a worker is actually parked: busy workers re-check
  // the queue on their next loop anyway, and the skipped futex wake is
  // most of submit's cost under saturation.
  if (Wake)
    QueueCV.notify_one();
  return Result;
}

std::vector<std::future<CompileResponse>>
CompileService::submitBatch(std::vector<CompileRequest> Batch) {
  std::vector<std::future<CompileResponse>> Futures;
  Futures.reserve(Batch.size());
  if (Batch.empty())
    return Futures;
  // Bulk enqueue: one lock acquisition and one (possibly collective)
  // wakeup for the whole batch instead of a lock + notify per request.
  Submitted.fetch_add(Batch.size(), std::memory_order_relaxed);
  met().Submitted.add(Batch.size());
  std::uint64_t Now = obs::Tracer::nowMicros();
  std::size_t Enqueued = 0, Parked = 0;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    for (CompileRequest &R : Batch) {
      if (R.TraceId == 0)
        R.TraceId = obs::newTraceId();
      Job J;
      J.EnqueueMicros = Now;
      Futures.push_back(J.Promise.get_future());
      if (Options.MaxQueueDepth != 0 && !R.HighPriority &&
          Queue.size() >= Options.MaxQueueDepth) {
        ShedQueueFull.fetch_add(1, std::memory_order_relaxed);
        met().ShedTotal.add();
        met().ShedQueueFull.add();
        CompileResponse Response = shedResponse(R, ShedReason::QueueFull);
        recordDigest(R, Response, 0.0, 0.0);
        J.Promise.set_value(std::move(Response));
        continue;
      }
      obs::traceFlowBegin("service.request", R.TraceId);
      bool Priority = R.HighPriority;
      J.Request = std::move(R);
      if (Priority)
        Queue.push_front(std::move(J));
      else
        Queue.push_back(std::move(J));
      ++Enqueued;
    }
    met().QueueDepth.set(static_cast<double>(Queue.size()));
    Parked = static_cast<std::size_t>(IdleWorkers);
  }
  if (Parked > 0 && Enqueued > 0) {
    if (Enqueued >= Parked)
      QueueCV.notify_all();
    else
      for (std::size_t I = 0; I < Enqueued; ++I)
        QueueCV.notify_one();
  }
  return Futures;
}

std::vector<CompileResponse> ResponseBatch::take() {
  if (!S)
    return {};
  std::shared_ptr<State> Mine = std::move(S);
  std::unique_lock<std::mutex> Lock(Mine->Mutex);
  Mine->CV.wait(Lock, [&] {
    return Mine->Remaining.load(std::memory_order_acquire) == 0;
  });
  return std::move(Mine->Responses);
}

ResponseBatch
CompileService::submitBatchDrained(std::vector<CompileRequest> Batch) {
  ResponseBatch Result;
  Result.S = std::make_shared<ResponseBatch::State>();
  ResponseBatch::State &St = *Result.S;
  St.Responses.resize(Batch.size());
  // Seed the countdown before any job can complete, so it never dips
  // through zero transiently.
  St.Remaining.store(Batch.size(), std::memory_order_relaxed);
  if (Batch.empty())
    return Result;
  Submitted.fetch_add(Batch.size(), std::memory_order_relaxed);
  met().Submitted.add(Batch.size());
  std::uint64_t Now = obs::Tracer::nowMicros();
  std::size_t Enqueued = 0, Parked = 0, Shed = 0;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    for (std::size_t I = 0; I < Batch.size(); ++I) {
      CompileRequest &R = Batch[I];
      if (R.TraceId == 0)
        R.TraceId = obs::newTraceId();
      if (Options.MaxQueueDepth != 0 && !R.HighPriority &&
          Queue.size() >= Options.MaxQueueDepth) {
        ShedQueueFull.fetch_add(1, std::memory_order_relaxed);
        met().ShedTotal.add();
        met().ShedQueueFull.add();
        CompileResponse Response = shedResponse(R, ShedReason::QueueFull);
        recordDigest(R, Response, 0.0, 0.0);
        St.Responses[I] = std::move(Response);
        ++Shed;
        continue;
      }
      obs::traceFlowBegin("service.request", R.TraceId);
      bool Priority = R.HighPriority;
      Job J;
      J.EnqueueMicros = Now;
      J.Batch = Result.S;
      J.BatchIndex = I;
      J.Request = std::move(R);
      if (Priority)
        Queue.push_front(std::move(J));
      else
        Queue.push_back(std::move(J));
      ++Enqueued;
    }
    met().QueueDepth.set(static_cast<double>(Queue.size()));
    Parked = static_cast<std::size_t>(IdleWorkers);
  }
  // Retire the shed slots in one decrement (their responses are already
  // written; no waiter can be parked yet, so no notify is needed unless
  // the whole batch shed).
  if (Shed > 0 &&
      St.Remaining.fetch_sub(Shed, std::memory_order_acq_rel) == Shed) {
    { std::lock_guard<std::mutex> Lock(St.Mutex); }
    St.CV.notify_all();
  }
  if (Parked > 0 && Enqueued > 0) {
    if (Enqueued >= Parked)
      QueueCV.notify_all();
    else
      for (std::size_t I = 0; I < Enqueued; ++I)
        QueueCV.notify_one();
  }
  return Result;
}

std::vector<CompileResponse>
CompileService::compileBatch(std::vector<CompileRequest> Batch) {
  // One wakeup in (submit), one wakeup out (the last completion).
  return submitBatchDrained(std::move(Batch)).take();
}

CompileResponse CompileService::compileNow(const CompileRequest &Request) {
  Submitted.fetch_add(1, std::memory_order_relaxed);
  met().Submitted.add();
  CompileRequest Traced = Request;
  if (Traced.TraceId == 0)
    Traced.TraceId = obs::newTraceId();
  if (Traced.DeadlineMicros != 0 &&
      obs::Tracer::nowMicros() > Traced.DeadlineMicros) {
    ShedDeadline.fetch_add(1, std::memory_order_relaxed);
    met().ShedTotal.add();
    met().ShedDeadline.add();
    CompileResponse R = shedResponse(Traced, ShedReason::DeadlineExpired);
    recordDigest(Traced, R, 0.0, 0.0);
    return R;
  }
  return process(Traced);
}

void CompileService::pause() {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  Paused = true;
}

void CompileService::resume() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Paused = false;
  }
  QueueCV.notify_all();
}

std::size_t CompileService::queueDepth() const {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  return Queue.size();
}

std::shared_ptr<const ir::CanonicalForm>
CompileService::canonicalForm(const std::shared_ptr<const ir::AssayGraph> &Shared,
                              const ir::AssayGraph &G) {
  if (!Shared) {
    // Front-end-lowered graph: unique to this request, nothing to reuse.
    return std::make_shared<const ir::CanonicalForm>(ir::canonicalize(G));
  }
  auto P = reinterpret_cast<std::uintptr_t>(Shared.get());
  CanonSlot &SL =
      CanonMemo[((P >> 4) * 0x9e3779b97f4a7c15ULL) % CanonMemo.size()];
  {
    while (SL.Lock.test_and_set(std::memory_order_acquire)) {
    }
    std::shared_ptr<const ir::AssayGraph> Live = SL.Guard.lock();
    std::shared_ptr<const ir::CanonicalForm> Canon;
    if (Live.get() == Shared.get() && SL.Canon)
      Canon = SL.Canon;
    SL.Lock.clear(std::memory_order_release);
    if (Canon) {
      // ABA-safe: the guard resolved to a *live* graph at the same
      // address as the request's -- shared_ptr liveness means it is the
      // same immutable object, so its canonical form is still valid.
      CanonMemoHitCount.fetch_add(1, std::memory_order_relaxed);
      met().CanonMemoHits.add();
      return Canon;
    }
  }
  auto Canon = std::make_shared<const ir::CanonicalForm>(ir::canonicalize(G));
  while (SL.Lock.test_and_set(std::memory_order_acquire)) {
  }
  // Displace whatever the slot held (last writer wins); destruction of
  // the displaced form happens after the flag clears.
  std::weak_ptr<const ir::AssayGraph> OldGuard = std::move(SL.Guard);
  std::shared_ptr<const ir::CanonicalForm> OldCanon = std::move(SL.Canon);
  SL.Guard = Shared;
  SL.Canon = Canon;
  SL.Lock.clear(std::memory_order_release);
  return Canon;
}

void CompileService::publishDonor(const ir::Fingerprint &StructKey,
                                  const CompileArtifact &Artifact) {
  // A basis is only captured when the RVol LP reached Optimal, so its
  // presence alone makes the artifact a usable donor (codegen failures
  // downstream do not invalidate the LP solve).
  if (!Artifact.VM.LpBasis)
    return;
  std::lock_guard<std::mutex> Lock(DonorMutex);
  Donor &D = Donors[StructKey.str()];
  D.Basis = Artifact.VM.LpBasis;
  D.ShapeHash = Artifact.VM.LpShapeHash;
}

std::shared_ptr<const CompileArtifact>
CompileService::solveAndGenerate(const CompileRequest &Request,
                                 const ir::AssayGraph &G,
                                 const ir::Fingerprint *StructKey,
                                 double *SolveSecOut) {
  double Sec = 0.0;
  auto Artifact = std::make_shared<CompileArtifact>();
  {
    obs::SpanGuard Span("service.solve", "service");
    ScopedTimer Timer(Sec);
    if (hasUnknownVolumes(G)) {
      // Run-time-unknown volumes: no static assignment exists; emit
      // relative AIS (the partition API handles deferred dispensing).
      auto Prog = codegen::generateAIS(G, Request.Layout, {});
      if (Prog.ok()) {
        Artifact->Ok = true;
        Artifact->Program = std::move(*Prog);
      } else {
        Artifact->Error = Prog.message();
      }
    } else {
      Artifact->Managed = true;
      core::ManagerOptions Manage = Request.Manage;
      if (StructKey) {
        // Capture this solve's optimal basis for future same-structure
        // siblings, and repair a sibling's basis if one is on file. The
        // warm start cannot change the optimum -- only how many pivots
        // reaching it takes -- so the artifact stays bit-compatible with
        // a cold solve.
        Manage.LPOptions.CaptureBasis = true;
        std::lock_guard<std::mutex> Lock(DonorMutex);
        auto It = Donors.find(StructKey->str());
        if (It != Donors.end()) {
          Manage.LPOptions.WarmStart = It->second.Basis;
          Manage.LPOptions.WarmShapeHash = It->second.ShapeHash;
        }
      }
      Artifact->VM = core::manageVolumes(G, Request.Spec, Manage);
      Span.arg("warm", Artifact->VM.LpWarmStarted ? "1" : "0");
      if (Artifact->VM.LpWarmStarted) {
        WarmMissHits.fetch_add(1, std::memory_order_relaxed);
        met().WarmMissHits.add();
      }
      if (StructKey)
        publishDonor(*StructKey, *Artifact);
      if (!Artifact->VM.Feasible) {
        Artifact->Error =
            "no feasible volume assignment; decision log:\n" +
            Artifact->VM.Log;
      } else {
        Artifact->Metered = core::integerToNl(Artifact->VM.Graph,
                                              Artifact->VM.Rounded,
                                              Request.Spec);
        codegen::CodegenOptions CG;
        CG.Mode = codegen::VolumeMode::Managed;
        CG.Volumes = &Artifact->Metered;
        auto Prog =
            codegen::generateAIS(Artifact->VM.Graph, Request.Layout, CG);
        if (Prog.ok()) {
          Artifact->Ok = true;
          Artifact->Program = std::move(*Prog);
        } else {
          Artifact->Error = Prog.message();
        }
      }
    }
  }
  addDouble(SolveSec, Sec);
  met().SolveSec.observe(Sec);
  if (SolveSecOut)
    *SolveSecOut = Sec;
  if (!Artifact->Ok)
    AQUA_LOG_DEBUG("service", "pipeline failed deterministically: %s",
                   Artifact->Error.c_str());
  return Artifact;
}

CompileResponse CompileService::process(const CompileRequest &Request,
                                        double QueueWaitSec, bool EndFlow) {
  // Everything below (cache, LP, store I/O) runs with the request's id as
  // the thread's ambient trace context: every span closed in here carries
  // it as a `trace` arg.
  obs::RequestScope Scope(Request.TraceId);
  obs::SpanGuard Span("service.request", "service");
  Span.arg("name", Request.Name);
  if (EndFlow)
    obs::traceFlowEnd("service.request", Request.TraceId);
  CompileResponse R;
  R.Name = Request.Name;
  R.TraceId = Request.TraceId;
  double Latency = 0.0;
  double SolveSec = 0.0;
  {
    ScopedTimer Timer(Latency);

    // ----- Front end: parse + lower, unless a DAG was supplied.
    std::shared_ptr<const ir::AssayGraph> Graph = Request.Graph;
    if (!Graph) {
      AQUA_TRACE_SPAN("service.frontend", "service");
      auto Lowered = lang::compileAssay(Request.Source);
      if (!Lowered.ok()) {
        R.Error = Lowered.message();
      } else {
        Graph = std::make_shared<const ir::AssayGraph>(
            std::move(Lowered->Graph));
      }
    }

    if (Graph) {
      // ----- Canonical fingerprint: the cache and dedup key. The
      // structure key (volume inputs masked) keys the warm-start donor
      // index.
      ir::Fingerprint StructKey;
      {
        AQUA_TRACE_SPAN("service.fingerprint", "service");
        // WL canonicalization dominates the cost of a cache hit; repeat
        // submissions of a shared DAG reuse the memoized form and pay
        // only the (cheap) fingerprint mixes.
        std::shared_ptr<const ir::CanonicalForm> Canon =
            canonicalForm(Request.Graph, *Graph);
        R.Key = requestFingerprint(*Canon, Request.Spec, Request.Manage,
                                   Request.Layout);
        if (Options.WarmMiss)
          StructKey = structureFingerprint(*Canon, Request.Spec,
                                           Request.Manage, Request.Layout);
      }
      const ir::Fingerprint *SK = Options.WarmMiss ? &StructKey : nullptr;

      bool FromL2 = false;
      if (!Options.EnableCache) {
        R.Artifact = solveAndGenerate(Request, *Graph, SK, &SolveSec);
      } else if (auto Hit = Cache.lookup(R.Key, &FromL2)) {
        R.CacheHit = true;
        R.CacheHitL2 = FromL2;
        CacheHits.fetch_add(1, std::memory_order_relaxed);
        met().CacheHits.add();
        if (FromL2)
          CacheHitsL2.fetch_add(1, std::memory_order_relaxed);
        // A hit still seeds the donor index: after a daemon restart the
        // L2-decoded artifact carries its basis, so the first *miss* in a
        // volume sweep can already warm start.
        if (SK)
          publishDonor(*SK, *Hit);
        R.Artifact = std::move(Hit);
      } else {
        // ----- Single-flight: at most one solve per fingerprint, ever.
        // The solver publishes to the cache *before* retiring its flight
        // (both flight transitions happen under FlightMutex), and a miss
        // re-checks the cache under FlightMutex before opening a new
        // flight -- so a request that finds neither a flight nor a cache
        // entry is genuinely first.
        std::shared_ptr<Flight> Mine, Theirs;
        std::shared_ptr<const CompileArtifact> Raced;
        {
          std::lock_guard<std::mutex> Lock(FlightMutex);
          auto It = Flights.find(R.Key.str());
          if (It != Flights.end()) {
            Theirs = It->second;
          } else if ((Raced = Cache.lookup(R.Key, &FromL2))) {
            ; // The flight we raced with retired between our first lookup
              // and here; its artifact is already cached.
          } else {
            Mine = std::make_shared<Flight>();
            Mine->Result = Mine->Promise.get_future().share();
            Flights.emplace(R.Key.str(), Mine);
          }
        }
        if (Raced) {
          R.CacheHit = true;
          R.CacheHitL2 = FromL2;
          CacheHits.fetch_add(1, std::memory_order_relaxed);
          met().CacheHits.add();
          if (FromL2)
            CacheHitsL2.fetch_add(1, std::memory_order_relaxed);
          R.Artifact = std::move(Raced);
        } else if (Theirs) {
          R.Deduplicated = true;
          SingleFlightJoins.fetch_add(1, std::memory_order_relaxed);
          met().Joins.add();
          R.Artifact = Theirs->Result.get();
        } else {
          met().CacheMisses.add();
          R.Artifact = solveAndGenerate(Request, *Graph, SK, &SolveSec);
          Cache.insert(R.Key, R.Artifact);
          {
            std::lock_guard<std::mutex> Lock(FlightMutex);
            Flights.erase(R.Key.str());
          }
          Mine->Promise.set_value(R.Artifact);
        }
      }

      if (R.Artifact) {
        R.Ok = R.Artifact->Ok;
        if (!R.Ok)
          R.Error = R.Artifact->Error;
      }
    }
  }
  R.LatencySec = Latency;
  addDouble(TotalLatencySec, Latency);
  met().LatencySec.observe(Latency);
  Completed.fetch_add(1, std::memory_order_relaxed);
  met().Completed.add();
  if (!R.Ok) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    met().Failed.add();
  }
  Span.arg("outcome", R.Deduplicated ? "join"
                      : R.CacheHitL2 ? "hit_l2"
                      : R.CacheHit   ? "hit"
                                     : "miss");
  recordDigest(Request, R, QueueWaitSec, SolveSec);
  return R;
}

ServiceStats CompileService::stats() const {
  ServiceStats S;
  S.Submitted = Submitted.load(std::memory_order_relaxed);
  S.Completed = Completed.load(std::memory_order_relaxed);
  S.Failed = Failed.load(std::memory_order_relaxed);
  S.CacheHits = CacheHits.load(std::memory_order_relaxed);
  S.CacheHitsL2 = CacheHitsL2.load(std::memory_order_relaxed);
  S.SingleFlightJoins = SingleFlightJoins.load(std::memory_order_relaxed);
  S.CanonMemoHits = CanonMemoHitCount.load(std::memory_order_relaxed);
  S.WarmMissHits = WarmMissHits.load(std::memory_order_relaxed);
  S.ShedQueueFull = ShedQueueFull.load(std::memory_order_relaxed);
  S.ShedDeadline = ShedDeadline.load(std::memory_order_relaxed);
  S.TotalLatencySec = TotalLatencySec.load(std::memory_order_relaxed);
  S.SolveSec = SolveSec.load(std::memory_order_relaxed);
  S.Cache = Cache.stats();
  return S;
}
