//===- ArtifactCodec.cpp - Binary artifact codec --------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/service/ArtifactCodec.h"

#include "aqua/lp/RevisedSimplex.h"
#include "aqua/support/StringUtils.h"

#include <cstring>
#include <memory>

using namespace aqua;
using namespace aqua::service;

namespace {

constexpr std::uint32_t PayloadMagic = 0x52415141u; // "AQAR", little-endian.

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

class Writer {
public:
  void u8(std::uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void b(bool V) { u8(V ? 1 : 0); }

  void u32(std::uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }

  void u64(std::uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }

  void i32(std::int32_t V) { u32(static_cast<std::uint32_t>(V)); }
  void i64(std::int64_t V) { u64(static_cast<std::uint64_t>(V)); }

  /// Exact bit pattern, so the round trip is bit-identical (NaNs and -0.0
  /// included).
  void f64(double V) {
    std::uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }

  void str(std::string_view S) {
    u64(S.size());
    Out.append(S.data(), S.size());
  }

  void rat(const Rational &R) {
    i64(R.numerator());
    i64(R.denominator());
  }

  std::string take() { return std::move(Out); }

private:
  std::string Out;
};

//===----------------------------------------------------------------------===//
// Bounds-checked reader
//===----------------------------------------------------------------------===//

class Reader {
public:
  explicit Reader(std::string_view Data) : Data(Data) {}

  bool failed() const { return Failed; }
  bool done() const { return Pos == Data.size(); }

  std::uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<std::uint8_t>(Data[Pos++]);
  }
  bool b() { return u8() != 0; }

  std::uint32_t u32() {
    if (!need(4))
      return 0;
    std::uint32_t V = 0;
    for (int I = 3; I >= 0; --I)
      V = (V << 8) | static_cast<unsigned char>(Data[Pos + I]);
    Pos += 4;
    return V;
  }

  std::uint64_t u64() {
    if (!need(8))
      return 0;
    std::uint64_t V = 0;
    for (int I = 7; I >= 0; --I)
      V = (V << 8) | static_cast<unsigned char>(Data[Pos + I]);
    Pos += 8;
    return V;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    std::uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }

  std::string str() {
    std::uint64_t Len = u64();
    if (!need(Len))
      return {};
    std::string S(Data.substr(Pos, Len));
    Pos += Len;
    return S;
  }

  Rational rat() {
    std::int64_t Num = i64();
    std::int64_t Den = i64();
    if (Den <= 0) { // Rational's invariant; zero/negative means corruption.
      Failed = true;
      return Rational(0);
    }
    return Rational(Num, Den);
  }

  /// A count about to drive a loop/allocation; bounded by the bytes left
  /// so corrupt payloads cannot request absurd allocations.
  std::uint64_t count(std::uint64_t MinBytesPerItem) {
    std::uint64_t N = u64();
    if (MinBytesPerItem == 0)
      MinBytesPerItem = 1;
    if (N > (Data.size() - Pos) / MinBytesPerItem + 1) {
      Failed = true;
      return 0;
    }
    return N;
  }

private:
  bool need(std::uint64_t N) {
    if (Failed || N > Data.size() - Pos) {
      Failed = true;
      return false;
    }
    return true;
  }

  std::string_view Data;
  std::size_t Pos = 0;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Per-type encoders
//===----------------------------------------------------------------------===//

void encodeGraph(Writer &W, const ir::AssayGraph &G) {
  W.u64(static_cast<std::uint64_t>(G.numNodeSlots()));
  for (ir::NodeId N = 0; N < G.numNodeSlots(); ++N) {
    const ir::Node &Nd = G.node(N);
    W.u8(static_cast<std::uint8_t>(Nd.Kind));
    W.b(Nd.Dead);
    W.str(Nd.Name);
    W.rat(Nd.OutFraction);
    W.b(Nd.UnknownVolume);
    W.b(Nd.NoExcess);
    W.rat(Nd.ExcessShare);
    W.f64(Nd.Params.Seconds);
    W.f64(Nd.Params.TempC);
    W.str(Nd.Params.Flavor);
    W.str(Nd.Params.Matrix);
    W.str(Nd.Params.Pusher);
    // Adjacency lists verbatim: their order is graph state (regeneration
    // slices and codegen walk them), not a derivable accident.
    W.u64(Nd.In.size());
    for (ir::EdgeId E : Nd.In)
      W.i32(E);
    W.u64(Nd.Out.size());
    for (ir::EdgeId E : Nd.Out)
      W.i32(E);
  }
  W.u64(static_cast<std::uint64_t>(G.numEdgeSlots()));
  for (ir::EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    const ir::Edge &Ed = G.edge(E);
    W.i32(Ed.Src);
    W.i32(Ed.Dst);
    W.rat(Ed.Fraction);
    W.b(Ed.Dead);
  }
}

/// Rebuilds a graph slot-for-slot. The public mutators are replayed to
/// create the slots, then every field (flags, adjacency order) is restored
/// verbatim, so the result is state-identical to the encoded graph.
bool decodeGraph(Reader &R, ir::AssayGraph &G) {
  std::uint64_t NumNodes = R.count(16);
  struct NodeExtra {
    bool Dead = false;
    std::vector<ir::EdgeId> In, Out;
  };
  std::vector<NodeExtra> Extra(NumNodes);
  for (std::uint64_t I = 0; I < NumNodes && !R.failed(); ++I) {
    std::uint8_t Kind = R.u8();
    if (Kind > static_cast<std::uint8_t>(ir::NodeKind::Excess))
      return false;
    Extra[I].Dead = R.b();
    ir::NodeId N = G.addNode(static_cast<ir::NodeKind>(Kind), R.str());
    ir::Node &Nd = G.node(N);
    Nd.OutFraction = R.rat();
    Nd.UnknownVolume = R.b();
    Nd.NoExcess = R.b();
    Nd.ExcessShare = R.rat();
    Nd.Params.Seconds = R.f64();
    Nd.Params.TempC = R.f64();
    Nd.Params.Flavor = R.str();
    Nd.Params.Matrix = R.str();
    Nd.Params.Pusher = R.str();
    std::uint64_t NIn = R.count(4);
    for (std::uint64_t J = 0; J < NIn && !R.failed(); ++J)
      Extra[I].In.push_back(R.i32());
    std::uint64_t NOut = R.count(4);
    for (std::uint64_t J = 0; J < NOut && !R.failed(); ++J)
      Extra[I].Out.push_back(R.i32());
  }
  if (R.failed())
    return false;

  std::uint64_t NumEdges = R.count(25);
  struct EdgeRec {
    ir::NodeId Src, Dst;
    Rational Fraction;
    bool Dead;
  };
  std::vector<EdgeRec> EdgeRecs;
  EdgeRecs.reserve(NumEdges);
  for (std::uint64_t I = 0; I < NumEdges && !R.failed(); ++I) {
    EdgeRec Rec;
    Rec.Src = R.i32();
    Rec.Dst = R.i32();
    Rec.Fraction = R.rat();
    Rec.Dead = R.b();
    if (Rec.Src < 0 || Rec.Dst < 0 ||
        Rec.Src >= static_cast<ir::NodeId>(NumNodes) ||
        Rec.Dst >= static_cast<ir::NodeId>(NumNodes))
      return false;
    EdgeRecs.push_back(Rec);
  }
  if (R.failed())
    return false;

  // addEdge builds default adjacency (and asserts endpoints are alive, so
  // dead flags wait until after); both are overwritten verbatim below.
  for (const EdgeRec &Rec : EdgeRecs) {
    ir::EdgeId E = G.addEdge(Rec.Src, Rec.Dst, Rec.Fraction);
    G.edge(E).Dead = Rec.Dead;
  }
  for (std::uint64_t I = 0; I < NumNodes; ++I) {
    for (ir::EdgeId E : Extra[I].In)
      if (E < 0 || E >= static_cast<ir::EdgeId>(NumEdges))
        return false;
    for (ir::EdgeId E : Extra[I].Out)
      if (E < 0 || E >= static_cast<ir::EdgeId>(NumEdges))
        return false;
    ir::Node &Nd = G.node(static_cast<ir::NodeId>(I));
    Nd.In = std::move(Extra[I].In);
    Nd.Out = std::move(Extra[I].Out);
    Nd.Dead = Extra[I].Dead;
  }
  return true;
}

void encodeAssignment(Writer &W, const core::VolumeAssignment &A) {
  W.u64(A.NodeVolumeNl.size());
  for (double V : A.NodeVolumeNl)
    W.f64(V);
  W.u64(A.EdgeVolumeNl.size());
  for (double V : A.EdgeVolumeNl)
    W.f64(V);
}

bool decodeAssignment(Reader &R, core::VolumeAssignment &A) {
  std::uint64_t N = R.count(8);
  A.NodeVolumeNl.reserve(N);
  for (std::uint64_t I = 0; I < N && !R.failed(); ++I)
    A.NodeVolumeNl.push_back(R.f64());
  std::uint64_t M = R.count(8);
  A.EdgeVolumeNl.reserve(M);
  for (std::uint64_t I = 0; I < M && !R.failed(); ++I)
    A.EdgeVolumeNl.push_back(R.f64());
  return !R.failed();
}

void encodeRounded(Writer &W, const core::IntegerAssignment &A) {
  W.u64(A.NodeUnits.size());
  for (std::int64_t V : A.NodeUnits)
    W.i64(V);
  W.u64(A.EdgeUnits.size());
  for (std::int64_t V : A.EdgeUnits)
    W.i64(V);
  W.f64(A.MaxRatioErrorPct);
  W.f64(A.MeanRatioErrorPct);
  W.b(A.Underflow);
  W.b(A.Overflow);
}

bool decodeRounded(Reader &R, core::IntegerAssignment &A) {
  std::uint64_t N = R.count(8);
  A.NodeUnits.reserve(N);
  for (std::uint64_t I = 0; I < N && !R.failed(); ++I)
    A.NodeUnits.push_back(R.i64());
  std::uint64_t M = R.count(8);
  A.EdgeUnits.reserve(M);
  for (std::uint64_t I = 0; I < M && !R.failed(); ++I)
    A.EdgeUnits.push_back(R.i64());
  A.MaxRatioErrorPct = R.f64();
  A.MeanRatioErrorPct = R.f64();
  A.Underflow = R.b();
  A.Overflow = R.b();
  return !R.failed();
}

void encodeProgram(Writer &W, const codegen::AISProgram &P) {
  W.u64(P.Instrs.size());
  for (const codegen::Instruction &In : P.Instrs) {
    W.u8(static_cast<std::uint8_t>(In.Op));
    for (const codegen::Loc *L : {&In.Dst, &In.Src}) {
      W.u8(static_cast<std::uint8_t>(L->Kind));
      W.i32(L->Index);
      W.u8(static_cast<std::uint8_t>(L->Sub));
    }
    W.i64(In.RelParts);
    W.f64(In.VolumeNl);
    W.f64(In.Seconds);
    W.f64(In.TempC);
    W.str(In.Note);
    W.i32(In.Node);
  }
  W.i32(P.UsedReservoirs);
  W.i32(P.UsedMixers);
  W.i32(P.UsedHeaters);
  W.i32(P.UsedSensors);
  W.i32(P.UsedSeparators);
  W.i32(P.UsedInputPorts);
}

/// \p NodeSlots < 0 disables the node-id upper bound: an unmanaged
/// artifact's instructions reference the *request* graph, which the
/// artifact does not carry, so only the >= -1 floor can be checked.
bool decodeProgram(Reader &R, codegen::AISProgram &P, int NodeSlots) {
  std::uint64_t N = R.count(48);
  P.Instrs.reserve(N);
  for (std::uint64_t I = 0; I < N && !R.failed(); ++I) {
    codegen::Instruction In;
    std::uint8_t Op = R.u8();
    if (Op > static_cast<std::uint8_t>(codegen::Opcode::Output))
      return false;
    In.Op = static_cast<codegen::Opcode>(Op);
    for (codegen::Loc *L : {&In.Dst, &In.Src}) {
      std::uint8_t Kind = R.u8();
      if (Kind > static_cast<std::uint8_t>(codegen::LocKind::OutputPort))
        return false;
      L->Kind = static_cast<codegen::LocKind>(Kind);
      L->Index = R.i32();
      std::uint8_t Sub = R.u8();
      if (Sub > static_cast<std::uint8_t>(codegen::SubPort::Out1))
        return false;
      L->Sub = static_cast<codegen::SubPort>(Sub);
    }
    In.RelParts = R.i64();
    In.VolumeNl = R.f64();
    In.Seconds = R.f64();
    In.TempC = R.f64();
    In.Note = R.str();
    In.Node = R.i32();
    if (In.Node < ir::InvalidNode || (NodeSlots >= 0 && In.Node >= NodeSlots))
      return false;
    P.Instrs.push_back(std::move(In));
  }
  P.UsedReservoirs = R.i32();
  P.UsedMixers = R.i32();
  P.UsedHeaters = R.i32();
  P.UsedSensors = R.i32();
  P.UsedSeparators = R.i32();
  P.UsedInputPorts = R.i32();
  return !R.failed();
}

/// v2 warm-start block: the basis is a flat snapshot (statuses, basic
/// columns, optional reduced costs and devex weights), valid under the
/// recorded presolved-shape hash.
void encodeBasisBlock(Writer &W, const core::ManagerResult &VM) {
  W.u64(VM.LpShapeHash);
  W.b(VM.LpBasis != nullptr);
  if (!VM.LpBasis)
    return;
  const lp::Basis &B = *VM.LpBasis;
  W.u64(B.Status.size());
  for (lp::VarStatus S : B.Status)
    W.u8(static_cast<std::uint8_t>(S));
  W.u64(B.BasicCol.size());
  for (int C : B.BasicCol)
    W.i32(C);
  W.u64(B.RedCost.size());
  for (double D : B.RedCost)
    W.f64(D);
  W.u64(B.DevexW.size());
  for (double D : B.DevexW)
    W.f64(D);
}

bool decodeBasisBlock(Reader &R, core::ManagerResult &VM) {
  VM.LpShapeHash = R.u64();
  if (!R.b())
    return !R.failed();
  auto B = std::make_shared<lp::Basis>();
  std::uint64_t NS = R.count(1);
  B->Status.reserve(NS);
  for (std::uint64_t I = 0; I < NS && !R.failed(); ++I) {
    std::uint8_t S = R.u8();
    if (S > static_cast<std::uint8_t>(lp::VarStatus::Free))
      return false;
    B->Status.push_back(static_cast<lp::VarStatus>(S));
  }
  std::uint64_t NB = R.count(4);
  B->BasicCol.reserve(NB);
  for (std::uint64_t I = 0; I < NB && !R.failed(); ++I) {
    int C = R.i32();
    if (C < 0 || C >= static_cast<int>(NS))
      return false;
    B->BasicCol.push_back(C);
  }
  std::uint64_t NR = R.count(8);
  B->RedCost.reserve(NR);
  for (std::uint64_t I = 0; I < NR && !R.failed(); ++I)
    B->RedCost.push_back(R.f64());
  std::uint64_t ND = R.count(8);
  B->DevexW.reserve(ND);
  for (std::uint64_t I = 0; I < ND && !R.failed(); ++I)
    B->DevexW.push_back(R.f64());
  if (R.failed())
    return false;
  VM.LpBasis = std::move(B);
  return true;
}

} // namespace

std::string aqua::service::encodeArtifact(const CompileArtifact &Artifact) {
  Writer W;
  W.u32(PayloadMagic);
  W.u32(ArtifactCodecVersion);
  W.b(Artifact.Ok);
  W.b(Artifact.Managed);
  W.str(Artifact.Error);
  W.b(Artifact.VM.Feasible);
  W.u8(static_cast<std::uint8_t>(Artifact.VM.Method));
  encodeGraph(W, Artifact.VM.Graph);
  encodeAssignment(W, Artifact.VM.Volumes);
  encodeRounded(W, Artifact.VM.Rounded);
  W.i32(Artifact.VM.CascadesApplied);
  W.i32(Artifact.VM.ReplicationsApplied);
  W.f64(Artifact.VM.MinDispenseNl);
  W.str(Artifact.VM.Log);
  encodeAssignment(W, Artifact.Metered);
  encodeProgram(W, Artifact.Program);
  encodeBasisBlock(W, Artifact.VM);
  return W.take();
}

Expected<CompileArtifact>
aqua::service::decodeArtifact(std::string_view Payload) {
  Reader R(Payload);
  auto Bad = [](const char *What) {
    return Expected<CompileArtifact>::error(
        format("artifact payload: %s", What));
  };
  if (R.u32() != PayloadMagic)
    return Bad("bad magic");
  std::uint32_t Version = R.u32();
  if (Version < 1 || Version > ArtifactCodecVersion)
    return Bad(format("unsupported version %u", Version).c_str());

  CompileArtifact A;
  A.Ok = R.b();
  A.Managed = R.b();
  A.Error = R.str();
  A.VM.Feasible = R.b();
  std::uint8_t Method = R.u8();
  if (Method > static_cast<std::uint8_t>(core::SolveMethod::LP))
    return Bad("bad solve method");
  A.VM.Method = static_cast<core::SolveMethod>(Method);
  if (!decodeGraph(R, A.VM.Graph))
    return Bad("malformed graph");
  if (!decodeAssignment(R, A.VM.Volumes))
    return Bad("malformed RVol assignment");
  if (!decodeRounded(R, A.VM.Rounded))
    return Bad("malformed IVol assignment");
  A.VM.CascadesApplied = R.i32();
  A.VM.ReplicationsApplied = R.i32();
  A.VM.MinDispenseNl = R.f64();
  A.VM.Log = R.str();
  if (!decodeAssignment(R, A.Metered))
    return Bad("malformed metered assignment");
  if (!decodeProgram(R, A.Program,
                     A.Managed ? A.VM.Graph.numNodeSlots() : -1))
    return Bad("malformed AIS program");
  if (Version >= 2 && !decodeBasisBlock(R, A.VM))
    return Bad("malformed warm-start block");
  if (R.failed())
    return Bad("truncated");
  if (!R.done())
    return Bad("trailing bytes");
  return A;
}
