//===- Presolve.cpp - Equality-substitution presolve ------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Presolve.h"

#include "aqua/lp/Tolerances.h"
#include <algorithm>
#include <cmath>

using namespace aqua;
using namespace aqua::lp;

namespace {

// Shared LP-layer tolerances (see aqua/lp/Tolerances.h for the policy).
constexpr double Eps = tol::Zero;

/// Mutable working form of the model during presolve. Rows keep their terms
/// sorted by variable id with no duplicates and no ~zero coefficients.
struct Work {
  struct WRow {
    RowKind Kind;
    double Rhs;
    std::vector<Term> Terms;
    bool Alive = true;
  };
  struct WVar {
    double Lower, Upper, ObjCoef;
    bool Alive = true;
  };

  std::vector<WRow> Rows;
  std::vector<WVar> Vars;
  bool Infeasible = false;

  explicit Work(const Model &M) {
    Vars.reserve(M.numVars());
    for (const Variable &V : M.vars())
      Vars.push_back(WVar{V.Lower, V.Upper, V.ObjCoef, true});
    Rows.reserve(M.numRows());
    for (const Row &R : M.rows()) {
      WRow W{R.Kind, R.Rhs, R.Terms, true};
      normalize(W.Terms);
      Rows.push_back(std::move(W));
    }
  }

  static void normalize(std::vector<Term> &Terms) {
    std::sort(Terms.begin(), Terms.end(),
              [](const Term &A, const Term &B) { return A.Var < B.Var; });
    size_t Out = 0;
    for (size_t I = 0; I < Terms.size();) {
      VarId V = Terms[I].Var;
      double C = 0.0;
      while (I < Terms.size() && Terms[I].Var == V)
        C += Terms[I++].Coef;
      if (std::fabs(C) > Eps)
        Terms[Out++] = Term{V, C};
    }
    Terms.resize(Out);
  }

  /// Substitutes Var := Const + Expr into every row and the objective, then
  /// kills the variable.
  void substitute(VarId Var, double Const, const std::vector<Term> &Expr) {
    for (WRow &R : Rows) {
      if (!R.Alive)
        continue;
      auto It = std::find_if(R.Terms.begin(), R.Terms.end(),
                             [&](const Term &T) { return T.Var == Var; });
      if (It == R.Terms.end())
        continue;
      double C = It->Coef;
      R.Terms.erase(It);
      R.Rhs -= C * Const;
      for (const Term &E : Expr)
        R.Terms.push_back(Term{E.Var, C * E.Coef});
      normalize(R.Terms);
    }
    double ObjC = Vars[Var].ObjCoef;
    if (ObjC != 0.0)
      for (const Term &E : Expr)
        Vars[E.Var].ObjCoef += ObjC * E.Coef;
    Vars[Var].Alive = false;
  }

  /// Folds the bounds of an eliminated variable Var = Const + Coef*Other
  /// onto Other. Returns false if the LP becomes infeasible.
  bool foldBounds(VarId Var, double Const, double Coef, VarId Other) {
    double L = Vars[Var].Lower, U = Vars[Var].Upper;
    // L <= Const + Coef*y <= U
    if (Coef > 0) {
      if (L != -Infinity)
        Vars[Other].Lower = std::max(Vars[Other].Lower, (L - Const) / Coef);
      if (U != Infinity)
        Vars[Other].Upper = std::min(Vars[Other].Upper, (U - Const) / Coef);
    } else {
      if (L != -Infinity)
        Vars[Other].Upper = std::min(Vars[Other].Upper, (L - Const) / Coef);
      if (U != Infinity)
        Vars[Other].Lower = std::max(Vars[Other].Lower, (U - Const) / Coef);
    }
    return Vars[Other].Lower <= Vars[Other].Upper + tol::BoundCross;
  }

  /// True if `Const + Expr >= Bound` holds for every feasible point, using
  /// only sign information (all coefficients nonnegative over nonnegative
  /// variables).
  bool provablyAtLeast(double Const, const std::vector<Term> &Expr,
                       double Bound) const {
    if (Bound == -Infinity)
      return true;
    for (const Term &T : Expr)
      if (T.Coef < 0.0 || Vars[T.Var].Lower < 0.0)
        return false;
    return Const >= Bound - 1e-12;
  }
};

} // namespace

Presolved Presolved::run(const Model &M) {
  Presolved P;
  P.OriginalVarCount = M.numVars();
  Work W(M);

  bool Progress = true;
  while (Progress && !W.Infeasible) {
    Progress = false;
    for (size_t RI = 0; RI < W.Rows.size(); ++RI) {
      Work::WRow &R = W.Rows[RI];
      if (!R.Alive || R.Kind != RowKind::EQ)
        continue;

      if (R.Terms.empty()) {
        if (std::fabs(R.Rhs) > tol::BoundSnap)
          W.Infeasible = true;
        R.Alive = false;
        ++P.Stats.RowsEliminated;
        Progress = true;
        continue;
      }

      if (R.Terms.size() == 1) {
        // a*x = r fixes x.
        VarId X = R.Terms[0].Var;
        double Val = R.Rhs / R.Terms[0].Coef;
        if (Val < W.Vars[X].Lower - tol::BoundCross ||
            Val > W.Vars[X].Upper + tol::BoundCross) {
          W.Infeasible = true;
          break;
        }
        Elimination E{X, Val, {}};
        W.substitute(X, Val, {});
        R.Alive = false;
        P.Eliminations.push_back(std::move(E));
        ++P.Stats.VarsEliminated;
        ++P.Stats.RowsEliminated;
        Progress = true;
        continue;
      }

      if (R.Terms.size() == 2) {
        // a*x + b*y = r  =>  x = r/a - (b/a)*y; fold x's bounds onto y.
        VarId X = R.Terms[0].Var, Y = R.Terms[1].Var;
        double A = R.Terms[0].Coef, B = R.Terms[1].Coef;
        double Const = R.Rhs / A;
        double Coef = -B / A;
        if (!W.foldBounds(X, Const, Coef, Y)) {
          W.Infeasible = true;
          break;
        }
        Elimination E{X, Const, {Term{Y, Coef}}};
        W.substitute(X, Const, E.Expr);
        R.Alive = false;
        P.Eliminations.push_back(std::move(E));
        ++P.Stats.VarsEliminated;
        ++P.Stats.RowsEliminated;
        Progress = true;
        continue;
      }

      // Multi-term equality: eliminate a variable whose bounds are provably
      // satisfied by the defining expression (typical for node-volume
      // definitions vol(v) = f * sum(in-edges) with vol(v) in [0, inf)).
      int Pick = -1;
      double Const = 0.0;
      std::vector<Term> Expr;
      for (size_t TI = 0; TI < R.Terms.size() && Pick < 0; ++TI) {
        VarId X = R.Terms[TI].Var;
        double A = R.Terms[TI].Coef;
        if (W.Vars[X].Upper != Infinity)
          continue;
        double TryConst = R.Rhs / A;
        std::vector<Term> TryExpr;
        TryExpr.reserve(R.Terms.size() - 1);
        for (size_t TJ = 0; TJ < R.Terms.size(); ++TJ)
          if (TJ != TI)
            TryExpr.push_back(Term{R.Terms[TJ].Var, -R.Terms[TJ].Coef / A});
        if (!W.provablyAtLeast(TryConst, TryExpr, W.Vars[X].Lower))
          continue;
        Pick = static_cast<int>(TI);
        Const = TryConst;
        Expr = std::move(TryExpr);
      }
      if (Pick < 0)
        continue;
      VarId X = R.Terms[Pick].Var;
      Elimination E{X, Const, Expr};
      W.substitute(X, Const, Expr);
      R.Alive = false;
      P.Eliminations.push_back(std::move(E));
      ++P.Stats.VarsEliminated;
      ++P.Stats.RowsEliminated;
      Progress = true;
    }
  }

  P.Infeasible = W.Infeasible;
  if (P.Infeasible)
    return P;

  // Bound tightening can cross a variable's bounds without any single step
  // noticing: report that as infeasibility rather than handing inverted
  // bounds to the reduced model. Crossings within float noise are snapped.
  for (VarId V = 0; V < M.numVars(); ++V) {
    Work::WVar &B = W.Vars[V];
    if (!B.Alive || B.Lower <= B.Upper)
      continue;
    if (B.Lower <= B.Upper + tol::BoundSnap) {
      B.Lower = B.Upper;
    } else {
      P.Infeasible = true;
      return P;
    }
  }

  // Build the reduced model with renumbered variables.
  std::vector<int> NewIndex(M.numVars(), -1);
  for (VarId V = 0; V < M.numVars(); ++V) {
    if (!W.Vars[V].Alive)
      continue;
    NewIndex[V] = P.ReducedModel.addVar(M.var(V).Name, W.Vars[V].Lower,
                                        W.Vars[V].Upper, W.Vars[V].ObjCoef);
    P.AliveVars.push_back(V);
  }
  P.ReducedModel.setMaximize(M.isMaximize());
  for (size_t RI = 0; RI < W.Rows.size(); ++RI) {
    const Work::WRow &R = W.Rows[RI];
    if (!R.Alive)
      continue;
    if (R.Terms.empty()) {
      // Constant row: verify consistency and drop.
      bool Ok = true;
      switch (R.Kind) {
      case RowKind::LE:
        Ok = 0.0 <= R.Rhs + tol::BoundSnap;
        break;
      case RowKind::GE:
        Ok = 0.0 >= R.Rhs - tol::BoundSnap;
        break;
      case RowKind::EQ:
        Ok = std::fabs(R.Rhs) <= tol::BoundSnap;
        break;
      }
      if (!Ok)
        P.Infeasible = true;
      continue;
    }
    std::vector<Term> Terms;
    Terms.reserve(R.Terms.size());
    for (const Term &T : R.Terms)
      Terms.push_back(Term{NewIndex[T.Var], T.Coef});
    P.ReducedModel.addRow(M.row(static_cast<RowId>(RI)).Name, R.Kind, R.Rhs,
                          std::move(Terms));
  }
  return P;
}

std::vector<double>
Presolved::postsolve(const std::vector<double> &ReducedValues) const {
  assert(ReducedValues.size() == AliveVars.size() &&
         "reduced value vector size mismatch");
  std::vector<double> Full(OriginalVarCount, 0.0);
  for (size_t I = 0; I < AliveVars.size(); ++I)
    Full[AliveVars[I]] = ReducedValues[I];
  for (auto It = Eliminations.rbegin(); It != Eliminations.rend(); ++It) {
    double Val = It->Const;
    for (const Term &T : It->Expr)
      Val += T.Coef * Full[T.Var];
    Full[It->Var] = Val;
  }
  return Full;
}
