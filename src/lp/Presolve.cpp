//===- Presolve.cpp - Equality-substitution presolve ------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Presolve.h"

#include "aqua/lp/Tolerances.h"
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

using namespace aqua;
using namespace aqua::lp;

namespace {

// Shared LP-layer tolerances (see aqua/lp/Tolerances.h for the policy).
constexpr double Eps = tol::Zero;

/// Mutable working form of the model during presolve. Rows keep their terms
/// sorted by variable id with no duplicates and no ~zero coefficients.
struct Work {
  struct WRow {
    RowKind Kind;
    double Rhs;
    std::vector<Term> Terms;
    bool Alive = true;
    /// See MaxEagerRowLen: terms may reference eliminated variables until
    /// the final expansion.
    bool Deferred = false;
  };
  struct WVar {
    double Lower, Upper, ObjCoef;
    bool Alive = true;
  };

  /// Rows longer than this are "deferred": the sweeps neither classify them
  /// nor substitute into them (a dense row receiving one substitution per
  /// eliminated variable is a quadratic blow-up), and their stale references
  /// to eliminated variables are expanded once at the end through the
  /// resolved elimination map.
  static constexpr size_t MaxEagerRowLen = 64;

  std::vector<WRow> Rows;
  std::vector<WVar> Vars;
  /// Column index: VarRows[v] lists the rows that *may* contain v -- a lazy
  /// superset (entries go stale when a row dies or a term cancels; they are
  /// skipped on use, never removed). It turns substitute() from a scan of
  /// every row into a scan of the variable's support.
  std::vector<std::vector<std::uint32_t>> VarRows;
  bool Infeasible = false;

  explicit Work(const Model &M) {
    Vars.reserve(M.numVars());
    for (const Variable &V : M.vars())
      Vars.push_back(WVar{V.Lower, V.Upper, V.ObjCoef, true});
    Rows.reserve(M.numRows());
    for (const Row &R : M.rows()) {
      WRow W{R.Kind, R.Rhs, R.Terms, true};
      normalize(W.Terms);
      W.Deferred = W.Terms.size() > MaxEagerRowLen;
      Rows.push_back(std::move(W));
    }
    VarRows.resize(Vars.size());
    for (std::uint32_t RI = 0; RI < Rows.size(); ++RI)
      if (!Rows[RI].Deferred)
        for (const Term &T : Rows[RI].Terms)
          VarRows[T.Var].push_back(RI);
  }

  static void normalize(std::vector<Term> &Terms) {
    std::sort(Terms.begin(), Terms.end(),
              [](const Term &A, const Term &B) { return A.Var < B.Var; });
    size_t Out = 0;
    for (size_t I = 0; I < Terms.size();) {
      VarId V = Terms[I].Var;
      double C = 0.0;
      while (I < Terms.size() && Terms[I].Var == V)
        C += Terms[I++].Coef;
      if (std::fabs(C) > Eps)
        Terms[Out++] = Term{V, C};
    }
    Terms.resize(Out);
  }

  /// Substitutes Var := Const + Expr into every row containing Var and the
  /// objective, then kills the variable. Only Var's support (via VarRows) is
  /// visited, so a full presolve costs O(total fill), not O(vars * rows).
  void substitute(VarId Var, double Const, const std::vector<Term> &Expr) {
    std::vector<std::uint32_t> Support;
    Support.swap(VarRows[Var]);
    for (std::uint32_t RI : Support) {
      WRow &R = Rows[RI];
      if (!R.Alive || R.Deferred)
        continue;
      auto It = std::find_if(R.Terms.begin(), R.Terms.end(),
                             [&](const Term &T) { return T.Var == Var; });
      if (It == R.Terms.end())
        continue; // Stale index entry: the term cancelled earlier.
      double C = It->Coef;
      R.Terms.erase(It);
      R.Rhs -= C * Const;
      for (const Term &E : Expr) {
        R.Terms.push_back(Term{E.Var, C * E.Coef});
        std::vector<std::uint32_t> &Idx = VarRows[E.Var];
        if (Idx.empty() || Idx.back() != RI)
          Idx.push_back(RI);
      }
      normalize(R.Terms);
      // Fill-in past the eager ceiling: freeze the row; later eliminations
      // reach it through the final expansion instead.
      R.Deferred = R.Terms.size() > MaxEagerRowLen;
    }
    double ObjC = Vars[Var].ObjCoef;
    if (ObjC != 0.0)
      for (const Term &E : Expr)
        Vars[E.Var].ObjCoef += ObjC * E.Coef;
    Vars[Var].Alive = false;
  }

  /// Folds the bounds of an eliminated variable Var = Const + Coef*Other
  /// onto Other. Returns false if the LP becomes infeasible.
  bool foldBounds(VarId Var, double Const, double Coef, VarId Other) {
    double L = Vars[Var].Lower, U = Vars[Var].Upper;
    // L <= Const + Coef*y <= U
    if (Coef > 0) {
      if (L != -Infinity)
        Vars[Other].Lower = std::max(Vars[Other].Lower, (L - Const) / Coef);
      if (U != Infinity)
        Vars[Other].Upper = std::min(Vars[Other].Upper, (U - Const) / Coef);
    } else {
      if (L != -Infinity)
        Vars[Other].Upper = std::min(Vars[Other].Upper, (L - Const) / Coef);
      if (U != Infinity)
        Vars[Other].Lower = std::max(Vars[Other].Lower, (U - Const) / Coef);
    }
    return Vars[Other].Lower <= Vars[Other].Upper + tol::BoundCross;
  }

  /// True if `Const + Expr >= Bound` holds for every feasible point, using
  /// only sign information (all coefficients nonnegative over nonnegative
  /// variables).
  bool provablyAtLeast(double Const, const std::vector<Term> &Expr,
                       double Bound) const {
    if (Bound == -Infinity)
      return true;
    for (const Term &T : Expr)
      if (T.Coef < 0.0 || Vars[T.Var].Lower < 0.0)
        return false;
    return Const >= Bound - 1e-12;
  }

  /// Checks a constant row `0 (Kind) Rhs` for consistency.
  bool constantRowOk(RowKind Kind, double Rhs) const {
    switch (Kind) {
    case RowKind::LE:
      return 0.0 <= Rhs + tol::BoundSnap;
    case RowKind::GE:
      return 0.0 >= Rhs - tol::BoundSnap;
    case RowKind::EQ:
      return std::fabs(Rhs) <= tol::BoundSnap;
    }
    return true;
  }

  /// Range of `sum(Terms) excluding index Skip` over the variable bounds.
  /// Returns {min, max}; either end may be infinite.
  std::pair<double, double> activityRange(const std::vector<Term> &Terms,
                                          size_t Skip) const {
    double Min = 0.0, Max = 0.0;
    for (size_t I = 0; I < Terms.size(); ++I) {
      if (I == Skip)
        continue;
      const WVar &V = Vars[Terms[I].Var];
      double C = Terms[I].Coef;
      double Lo = C > 0 ? C * V.Lower : C * V.Upper;
      double Hi = C > 0 ? C * V.Upper : C * V.Lower;
      Min = Min == -Infinity || Lo == -Infinity ? -Infinity : Min + Lo;
      Max = Max == Infinity || Hi == Infinity ? Infinity : Max + Hi;
    }
    return {Min, Max};
  }
};

} // namespace

Presolved Presolved::run(const Model &M) {
  Presolved P;
  P.OriginalVarCount = M.numVars();
  Work W(M);

  bool Progress = true;
  while (Progress && !W.Infeasible) {
    Progress = false;
    for (size_t RI = 0; RI < W.Rows.size(); ++RI) {
      Work::WRow &R = W.Rows[RI];
      if (!R.Alive || R.Deferred)
        continue;

      if (R.Terms.empty()) {
        // Constant row: verify and drop (substitutions can empty any kind).
        if (!W.constantRowOk(R.Kind, R.Rhs))
          W.Infeasible = true;
        R.Alive = false;
        ++P.Stats.EmptyRowsRemoved;
        ++P.Stats.RowsEliminated;
        Progress = true;
        continue;
      }

      if (R.Terms.size() == 1 && R.Kind != RowKind::EQ) {
        // Singleton inequality a*x <= r (or >=): fold into x's bound. Any
        // crossing against the opposite bound is caught by the final
        // crossed-bound check.
        VarId X = R.Terms[0].Var;
        double A = R.Terms[0].Coef;
        double Val = R.Rhs / A;
        bool IsUpper = (R.Kind == RowKind::LE) == (A > 0);
        Work::WVar &V = W.Vars[X];
        if (IsUpper) {
          if (Val < V.Upper) {
            V.Upper = Val;
            ++P.Stats.BoundsTightened;
          }
        } else {
          if (Val > V.Lower) {
            V.Lower = Val;
            ++P.Stats.BoundsTightened;
          }
        }
        R.Alive = false;
        ++P.Stats.SingletonRowsRemoved;
        ++P.Stats.RowsEliminated;
        Progress = true;
        continue;
      }

      if (R.Kind != RowKind::EQ)
        continue;

      if (R.Terms.size() == 1) {
        // a*x = r fixes x.
        VarId X = R.Terms[0].Var;
        double Val = R.Rhs / R.Terms[0].Coef;
        if (Val < W.Vars[X].Lower - tol::BoundCross ||
            Val > W.Vars[X].Upper + tol::BoundCross) {
          W.Infeasible = true;
          break;
        }
        Elimination E{X, Val, {}};
        W.substitute(X, Val, {});
        R.Alive = false;
        P.Eliminations.push_back(std::move(E));
        ++P.Stats.VarsEliminated;
        ++P.Stats.RowsEliminated;
        Progress = true;
        continue;
      }

      if (R.Terms.size() == 2) {
        // a*x + b*y = r  =>  x = r/a - (b/a)*y; fold x's bounds onto y.
        VarId X = R.Terms[0].Var, Y = R.Terms[1].Var;
        double A = R.Terms[0].Coef, B = R.Terms[1].Coef;
        double Const = R.Rhs / A;
        double Coef = -B / A;
        if (!W.foldBounds(X, Const, Coef, Y)) {
          W.Infeasible = true;
          break;
        }
        Elimination E{X, Const, {Term{Y, Coef}}};
        W.substitute(X, Const, E.Expr);
        R.Alive = false;
        P.Eliminations.push_back(std::move(E));
        ++P.Stats.VarsEliminated;
        ++P.Stats.RowsEliminated;
        Progress = true;
        continue;
      }

      // Multi-term equality: eliminate a variable whose bounds are provably
      // satisfied by the defining expression (typical for node-volume
      // definitions vol(v) = f * sum(in-edges) with vol(v) in [0, inf)).
      int Pick = -1;
      double Const = 0.0;
      std::vector<Term> Expr;
      for (size_t TI = 0; TI < R.Terms.size() && Pick < 0; ++TI) {
        VarId X = R.Terms[TI].Var;
        double A = R.Terms[TI].Coef;
        if (W.Vars[X].Upper != Infinity)
          continue;
        double TryConst = R.Rhs / A;
        std::vector<Term> TryExpr;
        TryExpr.reserve(R.Terms.size() - 1);
        for (size_t TJ = 0; TJ < R.Terms.size(); ++TJ)
          if (TJ != TI)
            TryExpr.push_back(Term{R.Terms[TJ].Var, -R.Terms[TJ].Coef / A});
        if (!W.provablyAtLeast(TryConst, TryExpr, W.Vars[X].Lower))
          continue;
        Pick = static_cast<int>(TI);
        Const = TryConst;
        Expr = std::move(TryExpr);
      }
      if (Pick < 0)
        continue;
      VarId X = R.Terms[Pick].Var;
      Elimination E{X, Const, Expr};
      W.substitute(X, Const, Expr);
      R.Alive = false;
      P.Eliminations.push_back(std::move(E));
      ++P.Stats.VarsEliminated;
      ++P.Stats.RowsEliminated;
      Progress = true;
    }
    if (W.Infeasible)
      break;

    // Duplicate / proportional row removal. Rows can only be proportional
    // when they have identical variable support, so group by signature
    // first; within a group the pairwise factor check is cheap.
    {
      std::vector<size_t> Order;
      for (size_t RI = 0; RI < W.Rows.size(); ++RI)
        if (W.Rows[RI].Alive && !W.Rows[RI].Deferred &&
            !W.Rows[RI].Terms.empty())
          Order.push_back(RI);
      auto SigCmp = [&](size_t A, size_t B) {
        const auto &TA = W.Rows[A].Terms, &TB = W.Rows[B].Terms;
        if (TA.size() != TB.size())
          return TA.size() < TB.size() ? -1 : 1;
        for (size_t I = 0; I < TA.size(); ++I)
          if (TA[I].Var != TB[I].Var)
            return TA[I].Var < TB[I].Var ? -1 : 1;
        return 0;
      };
      std::sort(Order.begin(), Order.end(),
                [&](size_t A, size_t B) { return SigCmp(A, B) < 0; });
      for (size_t GB = 0; GB < Order.size() && !W.Infeasible;) {
        size_t GE = GB + 1;
        while (GE < Order.size() && SigCmp(Order[GB], Order[GE]) == 0)
          ++GE;
        for (size_t I = GB; I < GE && !W.Infeasible; ++I) {
          Work::WRow &Ri = W.Rows[Order[I]];
          if (!Ri.Alive)
            continue;
          for (size_t J = I + 1; J < GE && !W.Infeasible; ++J) {
            Work::WRow &Rj = W.Rows[Order[J]];
            if (!Rj.Alive)
              continue;
            // Is Ri == F * Rj term-by-term?
            double F = Ri.Terms[0].Coef / Rj.Terms[0].Coef;
            bool Prop = true;
            for (size_t K = 0; K < Ri.Terms.size() && Prop; ++K)
              if (std::fabs(Ri.Terms[K].Coef - F * Rj.Terms[K].Coef) >
                  1e-12 * (1.0 + std::fabs(Ri.Terms[K].Coef)))
                Prop = false;
            if (!Prop)
              continue;
            // Scaling Rj by F gives Ri's LHS; a negative factor flips the
            // inequality direction.
            RowKind KJ = Rj.Kind;
            if (F < 0 && KJ != RowKind::EQ)
              KJ = KJ == RowKind::LE ? RowKind::GE : RowKind::LE;
            double RhsJ = F * Rj.Rhs;
            double Tol = tol::BoundSnap * (1.0 + std::fabs(Ri.Rhs));
            bool Killed = false;
            if (Ri.Kind == KJ) {
              switch (Ri.Kind) {
              case RowKind::LE:
                Ri.Rhs = std::min(Ri.Rhs, RhsJ);
                Killed = true;
                break;
              case RowKind::GE:
                Ri.Rhs = std::max(Ri.Rhs, RhsJ);
                Killed = true;
                break;
              case RowKind::EQ:
                if (std::fabs(Ri.Rhs - RhsJ) > Tol)
                  W.Infeasible = true;
                else
                  Killed = true;
                break;
              }
            } else if (Ri.Kind == RowKind::EQ) {
              // The equality pins the shared LHS; a consistent duplicate
              // inequality is redundant.
              bool Ok = KJ == RowKind::LE ? Ri.Rhs <= RhsJ + Tol
                                          : Ri.Rhs >= RhsJ - Tol;
              if (Ok)
                Killed = true;
              else
                W.Infeasible = true;
            } else if (KJ == RowKind::EQ) {
              bool Ok = Ri.Kind == RowKind::LE ? RhsJ <= Ri.Rhs + Tol
                                               : RhsJ >= Ri.Rhs - Tol;
              if (Ok) {
                // Keep the equality in Ri's slot, drop Rj.
                Ri.Kind = RowKind::EQ;
                Ri.Rhs = RhsJ;
                Killed = true;
              } else {
                W.Infeasible = true;
              }
            }
            // Opposite-direction pair (LE vs GE): a two-sided constraint;
            // left alone.
            if (Killed) {
              Rj.Alive = false;
              ++P.Stats.DuplicateRowsRemoved;
              ++P.Stats.RowsEliminated;
              Progress = true;
            }
          }
        }
        GB = GE;
      }
    }
    if (W.Infeasible)
      break;

    // Implied-free column singletons: a variable appearing in exactly one
    // row, that row an equality, whose implied range from the row activity
    // fits inside its own bounds. The variable is then defined by the row
    // and its bounds never bind, so variable and row leave together -- the
    // classic free-column-singleton rule, restricted to true singletons so
    // the elimination creates no fill.
    {
      std::vector<int> ColCount(W.Vars.size(), 0);
      for (const Work::WRow &R : W.Rows)
        if (R.Alive)
          for (const Term &T : R.Terms)
            ++ColCount[T.Var];
      for (size_t RI = 0; RI < W.Rows.size(); ++RI) {
        Work::WRow &R = W.Rows[RI];
        if (!R.Alive || R.Deferred || R.Kind != RowKind::EQ ||
            R.Terms.size() < 2)
          continue;
        for (size_t TI = 0; TI < R.Terms.size(); ++TI) {
          VarId X = R.Terms[TI].Var;
          if (ColCount[X] != 1)
            continue;
          double A = R.Terms[TI].Coef;
          const Work::WVar &V = W.Vars[X];
          auto [SMin, SMax] = W.activityRange(R.Terms, TI);
          // x = (Rhs - S) / A with S ranging over [SMin, SMax].
          double ImpLo, ImpHi;
          if (A > 0) {
            ImpLo = SMax == Infinity ? -Infinity : (R.Rhs - SMax) / A;
            ImpHi = SMin == -Infinity ? Infinity : (R.Rhs - SMin) / A;
          } else {
            ImpLo = SMin == -Infinity ? -Infinity : (R.Rhs - SMin) / A;
            ImpHi = SMax == Infinity ? Infinity : (R.Rhs - SMax) / A;
          }
          if (ImpLo < V.Lower - tol::BoundSnap ||
              ImpHi > V.Upper + tol::BoundSnap)
            continue; // Own bounds can bind; not implied free.
          Elimination E{X, R.Rhs / A, {}};
          E.Expr.reserve(R.Terms.size() - 1);
          for (size_t TJ = 0; TJ < R.Terms.size(); ++TJ)
            if (TJ != TI)
              E.Expr.push_back(Term{R.Terms[TJ].Var, -R.Terms[TJ].Coef / A});
          // The variable appears nowhere else, so no other row changes;
          // only its objective coefficient shifts onto the definition (the
          // constant falls out -- the caller re-evaluates the objective on
          // the original model after postsolve).
          double ObjC = W.Vars[X].ObjCoef;
          if (ObjC != 0.0)
            for (const Term &T : E.Expr)
              W.Vars[T.Var].ObjCoef += ObjC * T.Coef;
          W.Vars[X].Alive = false;
          for (const Term &T : R.Terms)
            --ColCount[T.Var];
          R.Alive = false;
          P.Eliminations.push_back(std::move(E));
          ++P.Stats.VarsEliminated;
          ++P.Stats.SingletonColsEliminated;
          ++P.Stats.RowsEliminated;
          Progress = true;
          break; // The row is gone; move to the next one.
        }
      }
    }
  }

  P.Infeasible = W.Infeasible;
  if (P.Infeasible)
    return P;

  // Expand deferred rows: every stale reference to an eliminated variable is
  // rewritten over surviving variables in one pass. An elimination's
  // expression only references variables that were alive at its time -- so
  // still alive now, or eliminated *later* -- which makes a reverse sweep
  // over the records naturally bottom-up: by the time record I is resolved,
  // every dead variable it references already has its fully-resolved form.
  // Only variables reachable from deferred rows are resolved, so graphs with
  // no long rows pay nothing.
  {
    bool AnyDeferred = false;
    for (const Work::WRow &R : W.Rows)
      AnyDeferred |= R.Alive && R.Deferred;
    if (AnyDeferred) {
      struct Resolved {
        double Const = 0.0;
        std::vector<Term> Terms;
      };
      std::vector<Resolved> Cache(M.numVars());
      // Mark the dead variables whose resolution the expansion needs: seeds
      // from the deferred rows, closed over each record's expression.
      std::vector<char> Needed(M.numVars(), 0);
      std::vector<int> ElimIndex(M.numVars(), -1);
      for (size_t I = 0; I < P.Eliminations.size(); ++I)
        ElimIndex[P.Eliminations[I].Var] = static_cast<int>(I);
      std::vector<VarId> Worklist;
      for (const Work::WRow &R : W.Rows)
        if (R.Alive && R.Deferred)
          for (const Term &T : R.Terms)
            if (!W.Vars[T.Var].Alive && !Needed[T.Var]) {
              Needed[T.Var] = 1;
              Worklist.push_back(T.Var);
            }
      while (!Worklist.empty()) {
        VarId V = Worklist.back();
        Worklist.pop_back();
        for (const Term &T : P.Eliminations[ElimIndex[V]].Expr)
          if (!W.Vars[T.Var].Alive && !Needed[T.Var]) {
            Needed[T.Var] = 1;
            Worklist.push_back(T.Var);
          }
      }
      for (size_t I = P.Eliminations.size(); I-- > 0;) {
        const Elimination &E = P.Eliminations[I];
        if (!Needed[E.Var])
          continue;
        Resolved R;
        R.Const = E.Const;
        for (const Term &T : E.Expr) {
          if (W.Vars[T.Var].Alive) {
            R.Terms.push_back(T);
            continue;
          }
          const Resolved &C = Cache[T.Var];
          R.Const += T.Coef * C.Const;
          for (const Term &CT : C.Terms)
            R.Terms.push_back(Term{CT.Var, T.Coef * CT.Coef});
        }
        Work::normalize(R.Terms);
        Cache[E.Var] = std::move(R);
      }
      for (Work::WRow &R : W.Rows) {
        if (!R.Alive || !R.Deferred)
          continue;
        std::vector<Term> Out;
        Out.reserve(R.Terms.size());
        for (const Term &T : R.Terms) {
          if (W.Vars[T.Var].Alive) {
            Out.push_back(T);
            continue;
          }
          const Resolved &C = Cache[T.Var];
          R.Rhs -= T.Coef * C.Const;
          for (const Term &CT : C.Terms)
            Out.push_back(Term{CT.Var, T.Coef * CT.Coef});
        }
        Work::normalize(Out);
        R.Terms = std::move(Out);
        R.Deferred = false;
        if (R.Terms.empty()) {
          // Fully cancelled: the row degenerated to a constant.
          if (!W.constantRowOk(R.Kind, R.Rhs)) {
            P.Infeasible = true;
            return P;
          }
          R.Alive = false;
        }
      }
    }
  }

  // Bound tightening can cross a variable's bounds without any single step
  // noticing: report that as infeasibility rather than handing inverted
  // bounds to the reduced model. Crossings within float noise are snapped.
  for (VarId V = 0; V < M.numVars(); ++V) {
    Work::WVar &B = W.Vars[V];
    if (!B.Alive || B.Lower <= B.Upper)
      continue;
    if (B.Lower <= B.Upper + tol::BoundSnap) {
      B.Lower = B.Upper;
    } else {
      P.Infeasible = true;
      return P;
    }
  }

  // Build the reduced model with renumbered variables.
  std::vector<int> NewIndex(M.numVars(), -1);
  for (VarId V = 0; V < M.numVars(); ++V) {
    if (!W.Vars[V].Alive)
      continue;
    NewIndex[V] = P.ReducedModel.addVar(M.var(V).Name, W.Vars[V].Lower,
                                        W.Vars[V].Upper, W.Vars[V].ObjCoef);
    P.AliveVars.push_back(V);
  }
  P.ReducedModel.setMaximize(M.isMaximize());
  for (size_t RI = 0; RI < W.Rows.size(); ++RI) {
    const Work::WRow &R = W.Rows[RI];
    if (!R.Alive)
      continue;
    if (R.Terms.empty()) {
      // Constant row: verify consistency and drop.
      bool Ok = true;
      switch (R.Kind) {
      case RowKind::LE:
        Ok = 0.0 <= R.Rhs + tol::BoundSnap;
        break;
      case RowKind::GE:
        Ok = 0.0 >= R.Rhs - tol::BoundSnap;
        break;
      case RowKind::EQ:
        Ok = std::fabs(R.Rhs) <= tol::BoundSnap;
        break;
      }
      if (!Ok)
        P.Infeasible = true;
      continue;
    }
    std::vector<Term> Terms;
    Terms.reserve(R.Terms.size());
    for (const Term &T : R.Terms)
      Terms.push_back(Term{NewIndex[T.Var], T.Coef});
    P.ReducedModel.addRow(M.row(static_cast<RowId>(RI)).Name, R.Kind, R.Rhs,
                          std::move(Terms));
  }
  return P;
}

std::vector<double>
Presolved::postsolve(const std::vector<double> &ReducedValues) const {
  assert(ReducedValues.size() == AliveVars.size() &&
         "reduced value vector size mismatch");
  std::vector<double> Full(OriginalVarCount, 0.0);
  for (size_t I = 0; I < AliveVars.size(); ++I)
    Full[AliveVars[I]] = ReducedValues[I];
  for (auto It = Eliminations.rbegin(); It != Eliminations.rend(); ++It) {
    double Val = It->Const;
    for (const Term &T : It->Expr)
      Val += T.Coef * Full[T.Var];
    Full[It->Var] = Val;
  }
  return Full;
}
