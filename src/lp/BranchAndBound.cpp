//===- BranchAndBound.cpp - ILP via branch-and-bound -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Two node engines share the public solveInteger entry point:
//
//  * Warm (production): one shared Model and one shared sparse column copy;
//    nodes are compact bound-delta paths plus a shared_ptr to the parent's
//    optimal basis. Each node applies its deltas onto a per-worker
//    RevisedSimplex and dual-reoptimizes from the parent basis -- usually a
//    handful of pivots, versus a cold two-phase solve of a Model copy on
//    the legacy path. Workers plunge depth-first into the child nearest the
//    fractional LP value (maximizing basis reuse: the engine already holds
//    the parent basis and factorization) while the other child goes to a
//    best-bound-ordered shared pool, so `IntOptions::Threads` workers
//    cooperate on one tree with a shared atomic incumbent for pruning.
//    Equal-objective incumbents are tie-broken lexicographically so the
//    reported solution does not depend on thread arrival order.
//
//  * Dense (reference): the seed's per-node `Model Sub = M` copy solved
//    cold through presolve + dense simplex. Retained for the aqua/check
//    solver-vs-solver oracle and as the numeric baseline the warm engine
//    is measured against in bench_ilp_vs_lp.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/BranchAndBound.h"

#include "aqua/lp/Branching.h"
#include "aqua/lp/RevisedSimplex.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Timer.h"
#include "aqua/obs/Trace.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

using namespace aqua;
using namespace aqua::lp;

namespace {

/// Global-registry instruments, resolved once.
struct BbMetrics {
  obs::Counter &Solves = obs::metrics().counter("lp.bb.solves");
  obs::Counter &Nodes = obs::metrics().counter("lp.bb.nodes");
  obs::Counter &Pruned = obs::metrics().counter("lp.bb.pruned");
  obs::Counter &Incumbents = obs::metrics().counter("lp.bb.incumbents");
  obs::Counter &NumericFallbacks =
      obs::metrics().counter("lp.bb.numeric_fallbacks");
  obs::Histogram &NodesPerWorker = obs::metrics().histogram(
      "lp.bb.nodes_per_worker",
      {1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 100000});
};

BbMetrics &met() {
  static BbMetrics M;
  return M;
}

//===----------------------------------------------------------------------===//
// Warm engine
//===----------------------------------------------------------------------===//

/// A pending subproblem for the warm engine.
struct WarmNode {
  /// Parent's LP bound in internal (maximize) sign; root uses +infinity.
  double Bound = Infinity;
  /// Deterministic tree-position id: root 1, down child 2i, up child 2i+1
  /// (saturating at 62 levels). Best-bound ties pop the smaller id first,
  /// independent of push order.
  std::uint64_t Id = 1;
  std::vector<BoundChange> Path;
  std::shared_ptr<const Basis> Warm;
};

struct WarmNodeOrder {
  bool operator()(const WarmNode &A, const WarmNode &B) const {
    if (A.Bound != B.Bound)
      return A.Bound < B.Bound; // Larger bound pops first.
    return A.Id > B.Id;         // Then smaller id.
  }
};

std::uint64_t childId(std::uint64_t Parent, bool Up) {
  if (Parent >= (std::uint64_t(1) << 62))
    return Parent; // Saturate: ties deeper than 62 levels stay stable.
  return 2 * Parent + (Up ? 1 : 0);
}

/// State shared by every warm-engine worker.
struct WarmSearch {
  const Model &M;
  const std::vector<bool> &IsInteger;
  const IntOptions &Opts;
  double Sign;
  std::shared_ptr<const SparseMatrix> Cols;
  WallTimer Timer;

  std::mutex Mu;
  std::condition_variable Cv;
  std::priority_queue<WarmNode, std::vector<WarmNode>, WarmNodeOrder> Pool;
  int InFlight = 0;

  std::atomic<bool> Stop{false};
  bool BudgetHit = false;   // Guarded by Mu.
  bool Unbounded = false;   // Guarded by Mu.
  bool NumericFell = false; // Guarded by Mu; a node used the dense fallback.

  std::atomic<std::int64_t> Nodes{0};
  std::atomic<std::int64_t> Pivots{0};

  /// Incumbent bound in internal sign, readable without the lock for fast
  /// pruning; the full incumbent record is guarded by Mu.
  std::atomic<double> IncBound{-Infinity};
  bool HasInc = false;
  double IncObjective = 0.0;
  std::vector<double> IncValues;

  WarmSearch(const Model &M, const std::vector<bool> &IsInteger,
             const IntOptions &Opts)
      : M(M), IsInteger(IsInteger), Opts(Opts),
        Sign(M.isMaximize() ? 1.0 : -1.0),
        Cols(std::make_shared<const SparseMatrix>(M)) {}

  bool overBudget() {
    if (Opts.MaxNodes > 0 && Nodes.load(std::memory_order_relaxed) >=
                                 Opts.MaxNodes)
      return true;
    if (Opts.TimeLimitSec > 0.0 && Timer.seconds() > Opts.TimeLimitSec)
      return true;
    return false;
  }

  void signalBudget() {
    {
      std::lock_guard<std::mutex> L(Mu);
      BudgetHit = true;
    }
    Stop.store(true, std::memory_order_relaxed);
    Cv.notify_all();
  }

  void signalUnbounded() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Unbounded = true;
    }
    Stop.store(true, std::memory_order_relaxed);
    Cv.notify_all();
  }

  void push(WarmNode N) {
    {
      std::lock_guard<std::mutex> L(Mu);
      Pool.push(std::move(N));
    }
    Cv.notify_one();
  }

  /// Pops the best node, waiting while other workers may still produce
  /// some. Returns false when the search is over (pool drained and no one
  /// in flight, or a stop was signalled).
  bool pop(WarmNode &Out) {
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [&] {
      return Stop.load(std::memory_order_relaxed) || !Pool.empty() ||
             InFlight == 0;
    });
    if (Stop.load(std::memory_order_relaxed) || Pool.empty())
      return false;
    Out = Pool.top();
    Pool.pop();
    ++InFlight;
    return true;
  }

  void chainDone() {
    bool Done;
    {
      std::lock_guard<std::mutex> L(Mu);
      Done = --InFlight == 0 && Pool.empty();
    }
    if (Done)
      Cv.notify_all();
  }

  /// Offers an integral solution. Strict improvements replace the
  /// incumbent; ties within the prune tolerance keep the lexicographically
  /// smaller value vector so the final answer is independent of worker
  /// arrival order.
  void offerIncumbent(double Internal, double Obj, std::vector<double> Vals) {
    std::lock_guard<std::mutex> L(Mu);
    bool Take;
    if (!HasInc || Internal > IncBound.load(std::memory_order_relaxed) +
                                  tol::Prune) {
      Take = true;
    } else if (Internal < IncBound.load(std::memory_order_relaxed) -
                              tol::Prune) {
      Take = false;
    } else {
      Take = std::lexicographical_compare(Vals.begin(), Vals.end(),
                                          IncValues.begin(),
                                          IncValues.end());
    }
    if (!Take)
      return;
    met().Incumbents.add();
    HasInc = true;
    IncObjective = Obj;
    IncValues = std::move(Vals);
    double Prev = IncBound.load(std::memory_order_relaxed);
    if (Internal > Prev)
      IncBound.store(Internal, std::memory_order_relaxed);
  }
};

/// Dense per-node fallback for the rare NumericFail escape: materializes
/// the node's model and solves it cold on the legacy path.
Solution denseNodeSolve(const Model &M, const std::vector<BoundChange> &Path,
                        const SolverOptions &LPOpts) {
  Model Sub = M;
  for (const BoundChange &C : Path) {
    if (C.IsUpper)
      Sub.tightenUpper(C.Var, C.Bound);
    else
      Sub.tightenLower(C.Var, C.Bound);
  }
  SolverOptions O = LPOpts;
  O.Engine = LpEngine::Dense;
  return solve(Sub, O);
}

/// One worker: pops pool nodes and plunges each subtree depth-first.
void warmWorker(WarmSearch &S) {
  RevisedSimplex Engine(S.M, S.Cols);
  std::vector<BoundChange> Applied; // Engine's current bound overrides.
  std::int64_t LocalNodes = 0;

  WarmNode Node;
  while (S.pop(Node)) {
    bool HaveNode = true;
    while (HaveNode) {
      HaveNode = false;
      if (S.Stop.load(std::memory_order_relaxed))
        break;
      if (S.overBudget()) {
        S.signalBudget();
        break;
      }
      // Fathom against the shared incumbent before spending any pivots.
      if (Node.Bound <=
          S.IncBound.load(std::memory_order_relaxed) + tol::Prune) {
        met().Pruned.add();
        continue;
      }

      S.Nodes.fetch_add(1, std::memory_order_relaxed);
      met().Nodes.add();
      ++LocalNodes;

      // Swap the engine onto this node's bounds.
      for (const BoundChange &C : Applied)
        Engine.resetBounds(C.Var);
      Applied = Node.Path;
      for (const BoundChange &C : Applied) {
        if (C.IsUpper)
          Engine.setUpper(C.Var, C.Bound);
        else
          Engine.setLower(C.Var, C.Bound);
      }

      RevisedOptions RO;
      RO.MaxIterations = S.Opts.LP.Simplex.MaxIterations;
      RO.StallThreshold = S.Opts.LP.Simplex.StallThreshold;
      // Children inherit the configured pricing rule along with the
      // parent's reduced costs and devex weights from the warm basis.
      RO.Pricing = S.Opts.LP.Simplex.Pricing;
      // Node reoptimizations run a handful of dual pivots each; the
      // refactorization clock ticks across nodes, so the default interval
      // would spend most of the search rebuilding B^-1. Drift from the
      // product-form updates is caught by the per-node dual-feasibility
      // validation (which falls back to a cold solve), so a long interval
      // is safe here.
      RO.RefactorInterval = 2000;
      if (S.Opts.TimeLimitSec > 0.0) {
        double Remaining = S.Opts.TimeLimitSec - S.Timer.seconds();
        RO.TimeLimitSec = std::max(Remaining, 1e-3);
      } else {
        RO.TimeLimitSec = S.Opts.LP.Simplex.TimeLimitSec;
      }

      RevisedStatus RS = Engine.reoptimizeDual(
          Node.Warm ? *Node.Warm : Basis{}, RO);
      S.Pivots.fetch_add(Engine.iterations(), std::memory_order_relaxed);

      SolveStatus St;
      double Obj = 0.0;
      const std::vector<double> *Vals = nullptr;
      Solution DenseSol;
      if (RS == RevisedStatus::NumericFail) {
        // Engine gave up on this node: solve it on the reference path.
        DenseSol = denseNodeSolve(S.M, Node.Path, S.Opts.LP);
        {
          std::lock_guard<std::mutex> L(S.Mu);
          S.NumericFell = true;
        }
        met().NumericFallbacks.add();
        S.Pivots.fetch_add(DenseSol.Iterations, std::memory_order_relaxed);
        St = DenseSol.Status;
        Obj = DenseSol.Objective;
        Vals = &DenseSol.Values;
      } else {
        St = toSolveStatus(RS);
        Obj = Engine.objective();
        Vals = &Engine.values();
      }

      if (St == SolveStatus::Infeasible)
        continue;
      if (St == SolveStatus::Unbounded) {
        S.signalUnbounded();
        break;
      }
      if (St != SolveStatus::Optimal) {
        // Budget expired inside the LP.
        S.signalBudget();
        break;
      }

      double Bound = S.Sign * Obj;
      if (Bound <=
          S.IncBound.load(std::memory_order_relaxed) + tol::Prune) {
        met().Pruned.add();
        continue;
      }

      int BranchVar = pickBranchVar(*Vals, S.IsInteger, S.Opts.IntTol);
      if (BranchVar < 0) {
        std::vector<double> Snapped = *Vals;
        for (size_t I = 0; I < Snapped.size(); ++I)
          if (S.IsInteger[I])
            Snapped[I] = std::round(Snapped[I]);
        S.offerIncumbent(Bound, Obj, std::move(Snapped));
        continue;
      }

      double Val = (*Vals)[BranchVar];
      double Floor = std::floor(Val), Ceil = std::ceil(Val);
      double CurLower = Engine.lower(BranchVar);
      double CurUpper = Engine.upper(BranchVar);

      auto MakeChild = [&](bool Up) {
        WarmNode C;
        C.Bound = Bound;
        C.Id = childId(Node.Id, Up);
        C.Path = Node.Path;
        C.Path.push_back(Up ? BoundChange{BranchVar, false, Ceil}
                            : BoundChange{BranchVar, true, Floor});
        C.Warm = std::make_shared<const Basis>(Engine.basis());
        return C;
      };

      bool DownOk = Floor >= CurLower;
      bool UpOk = Ceil <= CurUpper;
      bool PlungeUp = Val - Floor >= 0.5; // Dive toward the LP value.
      if (DownOk && UpOk) {
        S.push(MakeChild(!PlungeUp));
        Node = MakeChild(PlungeUp);
        HaveNode = true;
      } else if (DownOk || UpOk) {
        Node = MakeChild(UpOk);
        HaveNode = true;
      }
      // Neither child in range: the node is fathomed.
    }
    S.chainDone();
  }
  if (LocalNodes > 0)
    met().NodesPerWorker.observe(static_cast<double>(LocalNodes));
}

IntSolution solveIntegerWarm(const Model &M,
                             const std::vector<bool> &IsInteger,
                             const IntOptions &Opts) {
  WarmSearch S(M, IsInteger, Opts);

  S.Pool.push(WarmNode{});
  int Threads = std::max(1, Opts.Threads);
  if (Threads == 1) {
    warmWorker(S);
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (int T = 0; T < Threads; ++T)
      Pool.emplace_back([&S] { warmWorker(S); });
    for (std::thread &T : Pool)
      T.join();
  }

  IntSolution Result;
  Result.Nodes = S.Nodes.load();
  Result.LpPivots = S.Pivots.load();
  Result.Seconds = S.Timer.seconds();
  Result.HasIncumbent = S.HasInc;
  if (S.HasInc) {
    Result.Objective = S.IncObjective;
    Result.Values = S.IncValues;
  }
  if (S.Unbounded)
    Result.Status = SolveStatus::Unbounded;
  else if (S.BudgetHit)
    Result.Status = SolveStatus::TimeLimit;
  else
    Result.Status =
        S.HasInc ? SolveStatus::Optimal : SolveStatus::Infeasible;
  return Result;
}

//===----------------------------------------------------------------------===//
// Dense (legacy) engine
//===----------------------------------------------------------------------===//

/// A pending subproblem: bound overrides on top of the root model.
struct DenseNode {
  std::vector<std::pair<VarId, double>> LowerOverrides;
  std::vector<std::pair<VarId, double>> UpperOverrides;
};

IntSolution solveIntegerDense(const Model &M,
                              const std::vector<bool> &IsInteger,
                              const IntOptions &Opts) {
  WallTimer Timer;
  IntSolution Result;

  // Maximization sign: incumbent comparisons use Sign*objective so that
  // larger is always better internally.
  double Sign = M.isMaximize() ? 1.0 : -1.0;
  double Incumbent = -Infinity;

  std::vector<DenseNode> Stack;
  Stack.push_back(DenseNode{});
  bool Exhausted = true;

  while (!Stack.empty()) {
    if (Opts.MaxNodes > 0 && Result.Nodes >= Opts.MaxNodes) {
      Exhausted = false;
      break;
    }
    if (Opts.TimeLimitSec > 0.0 && Timer.seconds() > Opts.TimeLimitSec) {
      Exhausted = false;
      break;
    }

    DenseNode N = std::move(Stack.back());
    Stack.pop_back();
    ++Result.Nodes;
    met().Nodes.add();

    Model Sub = M;
    bool BadBounds = false;
    for (auto &[V, L] : N.LowerOverrides) {
      Sub.tightenLower(V, L);
      if (Sub.var(V).Lower > Sub.var(V).Upper)
        BadBounds = true;
    }
    for (auto &[V, U] : N.UpperOverrides) {
      Sub.tightenUpper(V, U);
      if (Sub.var(V).Lower > Sub.var(V).Upper)
        BadBounds = true;
    }
    if (BadBounds)
      continue;

    SolverOptions LPOpts = Opts.LP;
    if (Opts.TimeLimitSec > 0.0) {
      double Remaining = Opts.TimeLimitSec - Timer.seconds();
      if (LPOpts.Simplex.TimeLimitSec <= 0.0 ||
          LPOpts.Simplex.TimeLimitSec > Remaining)
        LPOpts.Simplex.TimeLimitSec = std::max(Remaining, 1e-3);
    }
    Solution Relax = solve(Sub, LPOpts);
    Result.LpPivots += Relax.Iterations;
    if (Relax.Status == SolveStatus::Infeasible)
      continue;
    if (Relax.Status == SolveStatus::Unbounded) {
      Result.Status = SolveStatus::Unbounded;
      Result.Seconds = Timer.seconds();
      return Result;
    }
    if (Relax.Status != SolveStatus::Optimal) {
      // Budget expired inside the LP; stop immediately instead of letting
      // the loop header burn whatever budget remains on another node.
      Exhausted = false;
      break;
    }

    double Bound = Sign * Relax.Objective;
    if (Bound <= Incumbent + tol::Prune) {
      met().Pruned.add();
      continue;
    }

    int BranchVar = pickBranchVar(Relax.Values, IsInteger, Opts.IntTol);
    if (BranchVar < 0) {
      // Integral: new incumbent.
      Incumbent = Bound;
      met().Incumbents.add();
      Result.HasIncumbent = true;
      Result.Objective = Relax.Objective;
      Result.Values = Relax.Values;
      // Snap to exact integers for reporting.
      for (size_t I = 0; I < Result.Values.size(); ++I)
        if (IsInteger[I])
          Result.Values[I] = std::round(Result.Values[I]);
      continue;
    }

    double Val = Relax.Values[BranchVar];
    DenseNode Down = N, Up = N;
    Down.UpperOverrides.push_back({BranchVar, std::floor(Val)});
    Up.LowerOverrides.push_back({BranchVar, std::ceil(Val)});
    // DFS: explore the branch nearest the LP value first.
    if (Val - std::floor(Val) < 0.5) {
      Stack.push_back(std::move(Up));
      Stack.push_back(std::move(Down));
    } else {
      Stack.push_back(std::move(Down));
      Stack.push_back(std::move(Up));
    }
  }

  Result.Seconds = Timer.seconds();
  if (Exhausted)
    Result.Status =
        Result.HasIncumbent ? SolveStatus::Optimal : SolveStatus::Infeasible;
  else
    Result.Status = SolveStatus::TimeLimit;
  return Result;
}

} // namespace

IntSolution aqua::lp::solveInteger(const Model &M,
                                   const std::vector<bool> &IsIntegerIn,
                                   const IntOptions &Opts) {
  AQUA_TRACE_SPAN("lp.bb", "lp");
  met().Solves.add();
  std::vector<bool> IsInteger = IsIntegerIn;
  if (IsInteger.empty())
    IsInteger.assign(M.numVars(), true);
  assert(static_cast<int>(IsInteger.size()) == M.numVars() &&
         "integrality mask size mismatch");

  if (Opts.Engine == IntEngine::Dense)
    return solveIntegerDense(M, IsInteger, Opts);

  // The warm engine keeps ~3 dense m x m panels per worker; honor the
  // memory budget by falling back to the legacy path when they don't fit.
  size_t M2 = static_cast<size_t>(M.numRows()) * M.numRows();
  size_t Workers = static_cast<size_t>(std::max(1, Opts.Threads));
  if (3 * M2 * sizeof(double) * Workers > Opts.LP.Simplex.MaxTableauBytes)
    return solveIntegerDense(M, IsInteger, Opts);

  // The warm engine works on the unreduced model (native bound handling
  // replaces per-node presolve), but presolve's bound propagation proves
  // root infeasibility orders of magnitude faster than a phase-1 solve on
  // an enzyme-scale model -- run it once as a pure feasibility screen.
  if (Opts.LP.Presolve) {
    WallTimer Timer;
    Presolved P = Presolved::run(M);
    if (P.provenInfeasible()) {
      IntSolution Result;
      Result.Status = SolveStatus::Infeasible;
      Result.Seconds = Timer.seconds();
      return Result;
    }
  }

  return solveIntegerWarm(M, IsInteger, Opts);
}
