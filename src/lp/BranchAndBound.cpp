//===- BranchAndBound.cpp - ILP via branch-and-bound -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Two node engines share the public solveInteger entry point:
//
//  * Warm (production): one shared Model and one shared sparse column copy;
//    nodes are compact bound-delta paths plus a shared_ptr to the parent's
//    optimal basis. Each node applies its deltas onto a per-worker
//    RevisedSimplex and dual-reoptimizes from the parent basis -- usually a
//    handful of pivots, versus a cold two-phase solve of a Model copy on
//    the legacy path. Workers plunge depth-first into the child nearest the
//    fractional LP value (maximizing basis reuse: the engine already holds
//    the parent basis and factorization) while the other child goes to a
//    best-bound-ordered shared pool, so `IntOptions::Threads` workers
//    cooperate on one tree with a shared atomic incumbent for pruning.
//    Equal-objective incumbents are tie-broken lexicographically so the
//    reported solution does not depend on thread arrival order.
//
//  * Dense (reference): the seed's per-node `Model Sub = M` copy solved
//    cold through presolve + dense simplex. Retained for the aqua/check
//    solver-vs-solver oracle and as the numeric baseline the warm engine
//    is measured against in bench_ilp_vs_lp.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/BranchAndBound.h"

#include "aqua/lp/Branching.h"
#include "aqua/lp/Cuts.h"
#include "aqua/lp/RevisedSimplex.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Timer.h"
#include "aqua/obs/Trace.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

using namespace aqua;
using namespace aqua::lp;

namespace {

/// Global-registry instruments, resolved once.
struct BbMetrics {
  obs::Counter &Solves = obs::metrics().counter("lp.bb.solves");
  obs::Counter &Nodes = obs::metrics().counter("lp.bb.nodes");
  obs::Counter &Pruned = obs::metrics().counter("lp.bb.pruned");
  obs::Counter &Incumbents = obs::metrics().counter("lp.bb.incumbents");
  obs::Counter &NumericFallbacks =
      obs::metrics().counter("lp.bb.numeric_fallbacks");
  obs::Counter &CutsGenerated = obs::metrics().counter("lp.cuts_generated");
  obs::Counter &CutsActive = obs::metrics().counter("lp.cuts_active");
  obs::Counter &CutRounds = obs::metrics().counter("lp.cut_rounds");
  obs::Counter &PseudocostInits =
      obs::metrics().counter("ilp.pseudocost_inits");
  obs::Counter &StrongBranches =
      obs::metrics().counter("ilp.strong_branches");
  obs::Counter &Restarts = obs::metrics().counter("ilp.restarts");
  obs::Histogram &NodesPerWorker = obs::metrics().histogram(
      "lp.bb.nodes_per_worker",
      {1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 100000});
};

BbMetrics &met() {
  static BbMetrics M;
  return M;
}

//===----------------------------------------------------------------------===//
// Warm engine
//===----------------------------------------------------------------------===//

/// A pending subproblem for the warm engine.
struct WarmNode {
  /// Parent's LP bound in internal (maximize) sign; root uses +infinity.
  double Bound = Infinity;
  /// Deterministic tree-position id: root 1, down child 2i, up child 2i+1
  /// (saturating at 62 levels). Best-bound ties pop the smaller id first,
  /// independent of push order.
  std::uint64_t Id = 1;
  std::vector<BoundChange> Path;
  std::shared_ptr<const Basis> Warm;
  /// The branching decision that created this node (-1 for the root and
  /// for re-solved nodes): once the node's LP bound is known, the parent's
  /// bound degradation per unit of BranchFrac feeds the pseudocost table.
  int BranchVar = -1;
  bool BranchUp = false;
  double BranchFrac = 1.0;
};

struct WarmNodeOrder {
  bool operator()(const WarmNode &A, const WarmNode &B) const {
    if (A.Bound != B.Bound)
      return A.Bound < B.Bound; // Larger bound pops first.
    return A.Id > B.Id;         // Then smaller id.
  }
};

std::uint64_t childId(std::uint64_t Parent, bool Up) {
  if (Parent >= (std::uint64_t(1) << 62))
    return Parent; // Saturate: ties deeper than 62 levels stay stable.
  return 2 * Parent + (Up ? 1 : 0);
}

/// State shared by every warm-engine worker.
struct WarmSearch {
  const Model &M;
  const std::vector<bool> &IsInteger;
  const IntOptions &Opts;
  double Sign;
  std::shared_ptr<const SparseMatrix> Cols;
  WallTimer Timer;

  std::mutex Mu;
  std::condition_variable Cv;
  std::priority_queue<WarmNode, std::vector<WarmNode>, WarmNodeOrder> Pool;
  int InFlight = 0;

  std::atomic<bool> Stop{false};
  bool BudgetHit = false;   // Guarded by Mu.
  bool Unbounded = false;   // Guarded by Mu.
  bool NumericFell = false; // Guarded by Mu; a node used the dense fallback.
  bool CapHit = false;      // Guarded by Mu; restart node cap tripped.

  /// Pseudocost table shared with the caller (it survives restarts).
  PseudocostTable &PT;
  /// Internal node budget for cut-and-branch restarts; 0 disables. Only
  /// trips once an incumbent exists -- restarting without one has nothing
  /// to tighten with.
  std::int64_t NodeCap = 0;
  /// Wall-clock seconds already spent (root cutting, earlier restarts)
  /// before this search started; budget checks add it to Timer.
  double TimeOffset = 0.0;

  std::atomic<std::int64_t> Nodes{0};
  std::atomic<std::int64_t> Pivots{0};

  /// Incumbent bound in internal sign, readable without the lock for fast
  /// pruning; the full incumbent record is guarded by Mu.
  std::atomic<double> IncBound{-Infinity};
  bool HasInc = false;
  double IncObjective = 0.0;
  std::vector<double> IncValues;

  WarmSearch(const Model &M, const std::vector<bool> &IsInteger,
             const IntOptions &Opts, PseudocostTable &PT)
      : M(M), IsInteger(IsInteger), Opts(Opts),
        Sign(M.isMaximize() ? 1.0 : -1.0),
        Cols(std::make_shared<const SparseMatrix>(M)), PT(PT) {}

  double elapsed() { return TimeOffset + Timer.seconds(); }

  bool overBudget() {
    if (Opts.MaxNodes > 0 && Nodes.load(std::memory_order_relaxed) >=
                                 Opts.MaxNodes)
      return true;
    if (Opts.TimeLimitSec > 0.0 && elapsed() > Opts.TimeLimitSec)
      return true;
    return false;
  }

  /// True once the restart node cap is exceeded with an incumbent in hand.
  bool overCap() {
    return NodeCap > 0 &&
           Nodes.load(std::memory_order_relaxed) >= NodeCap &&
           IncBound.load(std::memory_order_relaxed) > -Infinity;
  }

  void signalCap() {
    {
      std::lock_guard<std::mutex> L(Mu);
      CapHit = true;
    }
    Stop.store(true, std::memory_order_relaxed);
    Cv.notify_all();
  }

  void signalBudget() {
    {
      std::lock_guard<std::mutex> L(Mu);
      BudgetHit = true;
    }
    Stop.store(true, std::memory_order_relaxed);
    Cv.notify_all();
  }

  void signalUnbounded() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Unbounded = true;
    }
    Stop.store(true, std::memory_order_relaxed);
    Cv.notify_all();
  }

  void push(WarmNode N) {
    {
      std::lock_guard<std::mutex> L(Mu);
      Pool.push(std::move(N));
    }
    Cv.notify_one();
  }

  /// Pops the best node, waiting while other workers may still produce
  /// some. Returns false when the search is over (pool drained and no one
  /// in flight, or a stop was signalled).
  bool pop(WarmNode &Out) {
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [&] {
      return Stop.load(std::memory_order_relaxed) || !Pool.empty() ||
             InFlight == 0;
    });
    if (Stop.load(std::memory_order_relaxed) || Pool.empty())
      return false;
    Out = Pool.top();
    Pool.pop();
    ++InFlight;
    return true;
  }

  void chainDone() {
    bool Done;
    {
      std::lock_guard<std::mutex> L(Mu);
      Done = --InFlight == 0 && Pool.empty();
    }
    if (Done)
      Cv.notify_all();
  }

  /// Offers an integral solution. Strict improvements replace the
  /// incumbent; ties within the prune tolerance keep the lexicographically
  /// smaller value vector so the final answer is independent of worker
  /// arrival order.
  void offerIncumbent(double Internal, double Obj, std::vector<double> Vals) {
    std::lock_guard<std::mutex> L(Mu);
    bool Take;
    if (!HasInc || Internal > IncBound.load(std::memory_order_relaxed) +
                                  tol::Prune) {
      Take = true;
    } else if (Internal < IncBound.load(std::memory_order_relaxed) -
                              tol::Prune) {
      Take = false;
    } else {
      Take = std::lexicographical_compare(Vals.begin(), Vals.end(),
                                          IncValues.begin(),
                                          IncValues.end());
    }
    if (!Take)
      return;
    met().Incumbents.add();
    HasInc = true;
    IncObjective = Obj;
    IncValues = std::move(Vals);
    double Prev = IncBound.load(std::memory_order_relaxed);
    if (Internal > Prev)
      IncBound.store(Internal, std::memory_order_relaxed);
  }
};

/// Dense per-node fallback for the rare NumericFail escape: materializes
/// the node's model and solves it cold on the legacy path.
Solution denseNodeSolve(const Model &M, const std::vector<BoundChange> &Path,
                        const SolverOptions &LPOpts) {
  Model Sub = M;
  for (const BoundChange &C : Path) {
    if (C.IsUpper)
      Sub.tightenUpper(C.Var, C.Bound);
    else
      Sub.tightenLower(C.Var, C.Bound);
  }
  SolverOptions O = LPOpts;
  O.Engine = LpEngine::Dense;
  return solve(Sub, O);
}

/// One worker: pops pool nodes and plunges each subtree depth-first.
void warmWorker(WarmSearch &S) {
  RevisedSimplex Engine(S.M, S.Cols);
  std::vector<BoundChange> Applied; // Engine's current bound overrides.
  std::int64_t LocalNodes = 0;

  WarmNode Node;
  while (S.pop(Node)) {
    bool HaveNode = true;
    int ChainLen = 0; // Consecutive inline plunge steps since the pop.
    while (HaveNode) {
      HaveNode = false;
      if (S.Stop.load(std::memory_order_relaxed))
        break;
      if (S.overBudget()) {
        S.signalBudget();
        break;
      }
      if (S.overCap()) {
        S.signalCap();
        break;
      }
      // Fathom against the shared incumbent before spending any pivots.
      if (Node.Bound <=
          S.IncBound.load(std::memory_order_relaxed) + tol::Prune) {
        met().Pruned.add();
        continue;
      }

      S.Nodes.fetch_add(1, std::memory_order_relaxed);
      met().Nodes.add();
      ++LocalNodes;

      // Swap the engine onto this node's bounds.
      for (const BoundChange &C : Applied)
        Engine.resetBounds(C.Var);
      Applied = Node.Path;
      for (const BoundChange &C : Applied) {
        if (C.IsUpper)
          Engine.setUpper(C.Var, C.Bound);
        else
          Engine.setLower(C.Var, C.Bound);
      }

      RevisedOptions RO;
      RO.MaxIterations = S.Opts.LP.Simplex.MaxIterations;
      RO.StallThreshold = S.Opts.LP.Simplex.StallThreshold;
      // Children inherit the configured pricing rule along with the
      // parent's reduced costs and devex weights from the warm basis.
      RO.Pricing = S.Opts.LP.Simplex.Pricing;
      // Node reoptimizations run a handful of dual pivots each; the
      // refactorization clock ticks across nodes, so the default interval
      // would spend most of the search rebuilding B^-1. Drift from the
      // product-form updates is caught by the per-node dual-feasibility
      // validation (which falls back to a cold solve), so a long interval
      // is safe here.
      RO.RefactorInterval = 2000;
      if (S.Opts.TimeLimitSec > 0.0) {
        double Remaining = S.Opts.TimeLimitSec - S.elapsed();
        RO.TimeLimitSec = std::max(Remaining, 1e-3);
      } else {
        RO.TimeLimitSec = S.Opts.LP.Simplex.TimeLimitSec;
      }

      RevisedStatus RS = Engine.reoptimizeDual(
          Node.Warm ? *Node.Warm : Basis{}, RO);
      S.Pivots.fetch_add(Engine.iterations(), std::memory_order_relaxed);

      SolveStatus St;
      double Obj = 0.0;
      const std::vector<double> *Vals = nullptr;
      Solution DenseSol;
      if (RS == RevisedStatus::NumericFail) {
        // Engine gave up on this node: solve it on the reference path.
        DenseSol = denseNodeSolve(S.M, Node.Path, S.Opts.LP);
        {
          std::lock_guard<std::mutex> L(S.Mu);
          S.NumericFell = true;
        }
        met().NumericFallbacks.add();
        S.Pivots.fetch_add(DenseSol.Iterations, std::memory_order_relaxed);
        St = DenseSol.Status;
        Obj = DenseSol.Objective;
        Vals = &DenseSol.Values;
      } else {
        St = toSolveStatus(RS);
        Obj = Engine.objective();
        Vals = &Engine.values();
      }

      if (St == SolveStatus::Infeasible)
        continue;
      if (St == SolveStatus::Unbounded) {
        S.signalUnbounded();
        break;
      }
      if (St != SolveStatus::Optimal) {
        // Budget expired inside the LP.
        S.signalBudget();
        break;
      }

      double Bound = S.Sign * Obj;
      // The parent predicted this branch's degradation when it plunged;
      // feed the realized one back into the shared pseudocost table.
      if (Node.BranchVar >= 0 && Node.Bound < Infinity) {
        double Deg = std::max(0.0, Node.Bound - Bound);
        if (S.PT.record(Node.BranchVar, Node.BranchUp,
                        Deg / std::max(Node.BranchFrac, 1e-9)))
          met().PseudocostInits.add();
      }
      if (Bound <=
          S.IncBound.load(std::memory_order_relaxed) + tol::Prune) {
        met().Pruned.add();
        continue;
      }

      std::vector<BranchCandidate> Cands =
          fractionalCandidates(*Vals, S.IsInteger, S.Opts.IntTol);
      if (Cands.empty()) {
        std::vector<double> Snapped = *Vals;
        for (size_t I = 0; I < Snapped.size(); ++I)
          if (S.IsInteger[I])
            Snapped[I] = std::round(Snapped[I]);
        S.offerIncumbent(Bound, Obj, std::move(Snapped));
        continue;
      }

      // Strong-branch probes reuse this worker's engine, clobbering
      // Engine.values() and the held basis; snapshot both first. Children
      // warm-start from the node's optimal basis either way.
      std::vector<double> NodeVals = *Vals;
      auto NodeBasis = std::make_shared<const Basis>(Engine.basis());

      int BranchVar;
      if (S.Opts.Reliable > 0 && RS != RevisedStatus::NumericFail) {
        // Reliability branching: initialize the pseudocosts of the most
        // fractional unreliable candidates with pivot-capped dual-simplex
        // probes, then pick by the product-rule score.
        int Probed = 0;
        bool NodeChanged = false;
        for (const BranchCandidate &C : Cands) {
          if (Probed >= S.Opts.StrongCandidates ||
              S.Stop.load(std::memory_order_relaxed))
            break;
          if (S.PT.reliability(C.Var) >= S.Opts.Reliable)
            continue;
          ++Probed;
          const double SaveL = Engine.lower(C.Var);
          const double SaveU = Engine.upper(C.Var);
          const double Fl = std::floor(NodeVals[C.Var]);
          for (int Dir = 0; Dir < 2 && !NodeChanged; ++Dir) {
            const bool Up = Dir == 1;
            met().StrongBranches.add();
            if (Up)
              Engine.setLower(C.Var, Fl + 1.0);
            else
              Engine.setUpper(C.Var, Fl);
            RevisedOptions PRO = RO;
            PRO.MaxIterations = S.Opts.StrongIterations;
            RevisedStatus PS = Engine.reoptimizeDual(*NodeBasis, PRO);
            S.Pivots.fetch_add(Engine.iterations(),
                               std::memory_order_relaxed);
            if (PS == RevisedStatus::Optimal) {
              double Deg =
                  std::max(0.0, Bound - S.Sign * Engine.objective());
              double F = Up ? Fl + 1.0 - NodeVals[C.Var]
                            : NodeVals[C.Var] - Fl;
              if (S.PT.record(C.Var, Up, Deg / std::max(F, 1e-9)))
                met().PseudocostInits.add();
            } else if (PS == RevisedStatus::Infeasible) {
              // The probe proved this side empty, so its complement is
              // valid for the whole node: tighten and re-solve the node.
              Node.Path.push_back(Up ? BoundChange{C.Var, true, Fl}
                                     : BoundChange{C.Var, false, Fl + 1.0});
              NodeChanged = true;
            }
            if (Up)
              Engine.setLower(C.Var, SaveL);
            else
              Engine.setUpper(C.Var, SaveU);
          }
          if (NodeChanged)
            break;
        }
        if (NodeChanged) {
          Node.Warm = NodeBasis;
          Node.BranchVar = -1; // Parent degradation already recorded.
          HaveNode = true;
          continue;
        }
        BranchVar = Cands.front().Var;
        double BestScore = -1.0;
        for (const BranchCandidate &C : Cands) {
          double UpEst, DownEst;
          S.PT.estimates(C.Var, UpEst, DownEst);
          double Score = pseudocostScore(UpEst, DownEst, C.Frac);
          if (Score > BestScore) {
            BestScore = Score;
            BranchVar = C.Var;
          }
        }
      } else {
        BranchVar = Cands.front().Var; // Most fractional.
      }

      double Val = NodeVals[BranchVar];
      double Floor = std::floor(Val), Ceil = std::ceil(Val);
      double CurLower = Engine.lower(BranchVar);
      double CurUpper = Engine.upper(BranchVar);

      auto MakeChild = [&](bool Up) {
        WarmNode C;
        C.Bound = Bound;
        C.Id = childId(Node.Id, Up);
        C.Path = Node.Path;
        C.Path.push_back(Up ? BoundChange{BranchVar, false, Ceil}
                            : BoundChange{BranchVar, true, Floor});
        C.Warm = NodeBasis;
        C.BranchVar = BranchVar;
        C.BranchUp = Up;
        C.BranchFrac = Up ? Ceil - Val : Val - Floor;
        return C;
      };

      bool DownOk = Floor >= CurLower;
      bool UpOk = Ceil <= CurUpper;
      bool PlungeUp = Val - Floor >= 0.5; // Dive toward the LP value.
      if (DownOk && UpOk) {
        if (S.Opts.PlungeLimit > 0 && ChainLen + 1 >= S.Opts.PlungeLimit) {
          // Diving restart: the chain is deep enough that best-bound
          // selection should re-aim this worker; park both children.
          S.push(MakeChild(false));
          S.push(MakeChild(true));
        } else {
          S.push(MakeChild(!PlungeUp));
          Node = MakeChild(PlungeUp);
          HaveNode = true;
          ++ChainLen;
        }
      } else if (DownOk || UpOk) {
        Node = MakeChild(UpOk);
        HaveNode = true;
        ++ChainLen;
      }
      // Neither child in range: the node is fathomed.
    }
    S.chainDone();
  }
  if (LocalNodes > 0)
    met().NodesPerWorker.observe(static_cast<double>(LocalNodes));
}

//===----------------------------------------------------------------------===//
// Root cutting planes and cut-and-branch restarts
//===----------------------------------------------------------------------===//

/// What the tree search inherits from the root cutting-plane loop.
struct RootResult {
  RevisedStatus Status = RevisedStatus::NumericFail;
  /// Optimal basis of the final cut-strengthened model (null on failure).
  std::shared_ptr<const Basis> Warm;
  double Objective = 0.0; // Model direction.
  std::int64_t Pivots = 0;
  bool Integral = false;
  std::vector<double> Values;
};

/// \p Base plus one LE row per pool cut, in pool order.
Model modelWithCuts(const Model &Base, const CutPool &Pool) {
  Model T = Base;
  int I = 0;
  for (const Cut &C : Pool.cuts())
    T.addRow("cut" + std::to_string(I++), RowKind::LE, C.Rhs, C.Terms);
  return T;
}

/// Remaps \p Old -- a basis of Base + OldCuts cut rows -- onto Base plus
/// the aged pool (\p NewCuts rows): structural and base-row entries are
/// unchanged, surviving cut logicals move by \p OldToNew (sized OldCuts;
/// -1 = retired), and the logicals of rows not sourced from a survivor
/// enter basic with zero reduced cost. A retired cut's row was slack at
/// the optimum, so its logical was basic (a unit column of the basis);
/// deleting the row/column pair keeps the basis square and nonsingular,
/// and a slack-basic new row has a zero dual, so extending the reduced
/// costs with zeros preserves dual feasibility -- the warm start the dual
/// simplex wants.
Basis remapCutBasis(const Basis &Old, int NumStruct, int NumBase,
                    const std::vector<int> &OldToNew, int NewCuts) {
  const int OldCuts = static_cast<int>(OldToNew.size());
  const int OldCols = NumStruct + NumBase + OldCuts;
  const int NewCols = NumStruct + NumBase + NewCuts;
  const bool HaveRed = Old.RedCost.size() == static_cast<size_t>(OldCols);
  const bool HaveDev = Old.DevexW.size() == static_cast<size_t>(OldCols);

  Basis N;
  N.Status.assign(NewCols, VarStatus::Basic);
  if (HaveRed)
    N.RedCost.assign(NewCols, 0.0);
  if (HaveDev)
    N.DevexW.assign(NewCols, 1.0);
  std::vector<bool> Sourced(NewCuts, false);
  auto MapCol = [&](int C) {
    if (C < NumStruct + NumBase)
      return C;
    const int I = OldToNew[C - NumStruct - NumBase];
    return I < 0 ? -1 : NumStruct + NumBase + I;
  };
  for (int C = 0; C < OldCols; ++C) {
    const int NC = MapCol(C);
    if (NC < 0)
      continue;
    if (NC >= NumStruct + NumBase)
      Sourced[NC - NumStruct - NumBase] = true;
    N.Status[NC] = Old.Status[C];
    if (HaveRed)
      N.RedCost[NC] = Old.RedCost[C];
    if (HaveDev)
      N.DevexW[NC] = Old.DevexW[C];
  }

  N.BasicCol.reserve(NumBase + NewCuts);
  for (int C : Old.BasicCol) {
    const int NC = MapCol(C);
    if (NC >= 0)
      N.BasicCol.push_back(NC);
  }
  for (int I = 0; I < NewCuts; ++I)
    if (!Sourced[I])
      N.BasicCol.push_back(NumStruct + NumBase + I);
  return N;
}

/// The root cutting-plane loop: solves \p Base + pool, then alternates
/// separation (GMI from the tableau, divisor cuts from the rows) with
/// warm dual reoptimization of the grown model, aging out cuts that stay
/// slack. On return \p Tree holds the final cut-strengthened model the
/// tree search runs on. The loop stops when a round separates nothing,
/// the round cap is hit, the root goes integral, or the bound stops
/// moving.
RootResult rootCutLoop(const Model &Base, const std::vector<bool> &IsInteger,
                       const IntOptions &Opts, double Sign, CutPool &Pool,
                       Model &Tree, double Elapsed) {
  const int NumStruct = Base.numVars();
  const int NumBase = Base.numRows();
  RootResult Out;
  WallTimer Timer;

  RevisedOptions RO;
  RO.MaxIterations = Opts.LP.Simplex.MaxIterations;
  RO.StallThreshold = Opts.LP.Simplex.StallThreshold;
  RO.Pricing = Opts.LP.Simplex.Pricing;
  auto SetTime = [&] {
    if (Opts.TimeLimitSec > 0.0)
      RO.TimeLimitSec =
          std::max(Opts.TimeLimitSec - Elapsed - Timer.seconds(), 1e-3);
    else
      RO.TimeLimitSec = Opts.LP.Simplex.TimeLimitSec;
  };

  Tree = modelWithCuts(Base, Pool);
  auto Engine = std::make_unique<RevisedSimplex>(Tree);
  SetTime();
  RevisedStatus RS = Engine->solve(RO);
  Out.Pivots += Engine->iterations();

  CutOptions CO;
  double PrevBound = Infinity;
  for (int Round = 0; Round < Opts.CutRounds; ++Round) {
    if (RS != RevisedStatus::Optimal)
      break;
    if (fractionalCandidates(Engine->values(), IsInteger, Opts.IntTol)
            .empty())
      break;
    met().CutRounds.add();

    const int OldCuts = Pool.size();
    int Added =
        separateGomory(Tree, IsInteger, *Engine, CO, Pool) +
        separateDivisor(Tree, IsInteger, Engine->values(), CO, Pool);
    if (Added == 0)
      break;
    met().CutsGenerated.add(static_cast<std::uint64_t>(Added));

    // Age out stale cuts: slack of cut I at the current optimum. Newly
    // admitted cuts are violated here (slack < 0), so scoring them as
    // tight keeps their age at zero.
    std::vector<double> Slack(Pool.size(), 0.0);
    for (int I = 0; I < OldCuts; ++I) {
      const Cut &C = Pool.cuts()[I];
      double Act = 0.0;
      for (const Term &T : C.Terms)
        Act += T.Coef * Engine->values()[T.Var];
      Slack[I] = C.Rhs - Act;
    }
    std::vector<int> Map;
    Pool.age(Slack, CO.MaxSlackAge, &Map);
    Map.resize(OldCuts);

    Basis Warm = remapCutBasis(Engine->basis(), NumStruct, NumBase, Map,
                               Pool.size());
    Tree = modelWithCuts(Base, Pool);
    Engine = std::make_unique<RevisedSimplex>(Tree);
    SetTime();
    RS = Engine->reoptimizeDual(Warm, RO);
    Out.Pivots += Engine->iterations();
    if (RS != RevisedStatus::Optimal)
      break;

    const double Bound = Sign * Engine->objective();
    if (PrevBound - Bound < 1e-9 * (1.0 + std::fabs(Bound)))
      break; // Tailing off: the cuts stopped moving the bound.
    PrevBound = Bound;
  }
  met().CutsActive.add(static_cast<std::uint64_t>(Pool.size()));

  Out.Status = RS;
  if (RS == RevisedStatus::Optimal) {
    Out.Warm = std::make_shared<const Basis>(Engine->basis());
    Out.Objective = Engine->objective();
    Out.Values = Engine->values();
    Out.Integral =
        fractionalCandidates(Out.Values, IsInteger, Opts.IntTol).empty();
  }
  return Out;
}

/// Reduced-cost bound tightening at a restart: any improving solution
/// satisfies internal-objective >= RootBound - Gap with Gap = RootBound -
/// IncBound, and moving a nonbasic integer variable delta off its resting
/// bound costs |reduced cost| * delta of root bound -- so delta <= Gap /
/// |d| bounds the variable's range in every improving solution (the
/// volume least-count lattice makes the floor/ceil rounding exact).
/// Tightens \p Lo / \p Up in place; returns how many bounds moved.
int reducedCostTighten(const Basis &B, double RootBound, double IncBound,
                       const std::vector<bool> &IsInteger, double IntTol,
                       std::vector<double> &Lo, std::vector<double> &Up) {
  const int N = static_cast<int>(Lo.size());
  if (B.RedCost.size() < static_cast<size_t>(N))
    return 0;
  const double Gap = RootBound - IncBound;
  if (!std::isfinite(Gap) || Gap < 0.0)
    return 0;
  int Moved = 0;
  for (int J = 0; J < N; ++J) {
    if (!IsInteger[J])
      continue;
    const double D = B.RedCost[J];
    if (B.Status[J] == VarStatus::AtLower && D > 1e-9 &&
        std::isfinite(Lo[J])) {
      const double NewUp = std::floor(Lo[J] + Gap / D + IntTol);
      if (NewUp < Up[J] - 0.5) {
        Up[J] = std::max(NewUp, Lo[J]);
        ++Moved;
      }
    } else if (B.Status[J] == VarStatus::AtUpper && D < -1e-9 &&
               std::isfinite(Up[J])) {
      const double NewLo = std::ceil(Up[J] - Gap / -D - IntTol);
      if (NewLo > Lo[J] + 0.5) {
        Lo[J] = std::min(NewLo, Up[J]);
        ++Moved;
      }
    }
  }
  return Moved;
}

IntSolution solveIntegerWarm(const Model &M,
                             const std::vector<bool> &IsInteger,
                             const IntOptions &Opts) {
  WallTimer Timer;
  const double Sign = M.isMaximize() ? 1.0 : -1.0;
  PseudocostTable PT(M.numVars());
  CutPool Pool;

  // Bound overlay: reduced-cost fixing at restarts accumulates here and
  // is baked into the next restart's base model.
  std::vector<double> Lo(M.numVars()), Up(M.numVars());
  for (int J = 0; J < M.numVars(); ++J) {
    Lo[J] = M.var(J).Lower;
    Up[J] = M.var(J).Upper;
  }

  IntSolution Result;
  bool HasInc = false;
  double IncObj = 0.0, IncBound = -Infinity;
  std::vector<double> IncVals;
  std::int64_t Nodes = 0, Pivots = 0;

  auto Snap = [&](std::vector<double> V) {
    for (size_t I = 0; I < V.size(); ++I)
      if (IsInteger[I])
        V[I] = std::round(V[I]);
    return V;
  };
  auto Finish = [&](SolveStatus St) {
    Result.Status = St;
    Result.HasIncumbent = HasInc;
    if (HasInc) {
      Result.Objective = IncObj;
      Result.Values = IncVals;
    }
    Result.Nodes = Nodes;
    Result.LpPivots = Pivots;
    Result.Seconds = Timer.seconds();
    return Result;
  };

  bool CutsOn = Opts.CutRounds > 0;
  int Restarts = 0;
  for (;;) {
    Model Base = M;
    for (int J = 0; J < M.numVars(); ++J) {
      Base.tightenLower(J, Lo[J]);
      Base.tightenUpper(J, Up[J]);
    }

    Model Tree;
    RootResult Root;
    std::shared_ptr<const Basis> RootWarm;
    if (CutsOn) {
      Root = rootCutLoop(Base, IsInteger, Opts, Sign, Pool, Tree,
                         Timer.seconds());
      Pivots += Root.Pivots;
      switch (Root.Status) {
      case RevisedStatus::Optimal:
        RootWarm = Root.Warm;
        break;
      case RevisedStatus::Infeasible:
        // With no incumbent the ILP is infeasible outright; with one, the
        // overlay only excludes non-improving solutions, so an infeasible
        // root proves the incumbent optimal.
        return Finish(HasInc ? SolveStatus::Optimal
                             : SolveStatus::Infeasible);
      case RevisedStatus::Unbounded:
        return Finish(SolveStatus::Unbounded);
      case RevisedStatus::NumericFail:
        // Cut machinery lost the root; run the plain warm search.
        CutsOn = false;
        Tree = Base;
        break;
      default: // Iteration or time budget died inside the root LP.
        return Finish(SolveStatus::TimeLimit);
      }
      if (Root.Status == RevisedStatus::Optimal && Root.Integral) {
        // The root relaxation decided the problem; it counts as the one
        // node the tree search would otherwise have processed.
        ++Nodes;
        const double Bound = Sign * Root.Objective;
        if (!HasInc || Bound > IncBound + tol::Prune) {
          HasInc = true;
          IncObj = Root.Objective;
          IncBound = Bound;
          IncVals = Snap(Root.Values);
        }
        return Finish(SolveStatus::Optimal);
      }
    } else {
      Tree = Base;
    }

    WarmSearch S(Tree, IsInteger, Opts, PT);
    S.TimeOffset = Timer.seconds();
    if (CutsOn && Opts.RestartNodes > 0 && Restarts < Opts.MaxRestarts)
      S.NodeCap = Nodes + Opts.RestartNodes;
    if (HasInc) {
      S.HasInc = true;
      S.IncObjective = IncObj;
      S.IncValues = IncVals;
      S.IncBound.store(IncBound, std::memory_order_relaxed);
    }

    WarmNode RootNode;
    RootNode.Warm = RootWarm;
    S.Pool.push(std::move(RootNode));
    const int Threads = std::max(1, Opts.Threads);
    if (Threads == 1) {
      warmWorker(S);
    } else {
      std::vector<std::thread> Workers;
      Workers.reserve(Threads);
      for (int T = 0; T < Threads; ++T)
        Workers.emplace_back([&S] { warmWorker(S); });
      for (std::thread &T : Workers)
        T.join();
    }

    Nodes += S.Nodes.load();
    Pivots += S.Pivots.load();
    if (S.HasInc) {
      HasInc = true;
      IncObj = S.IncObjective;
      IncVals = std::move(S.IncValues);
      IncBound = S.IncBound.load(std::memory_order_relaxed);
    }

    if (S.Unbounded)
      return Finish(SolveStatus::Unbounded);
    if (S.BudgetHit)
      return Finish(SolveStatus::TimeLimit);
    if (!S.CapHit)
      return Finish(HasInc ? SolveStatus::Optimal
                           : SolveStatus::Infeasible);

    // Node cap tripped with an incumbent in hand: tighten what the root's
    // reduced costs allow, re-cut, and restart the search (incumbent and
    // pseudocosts carry over; the node counter does too, so each restart
    // gets RestartNodes fresh nodes).
    ++Restarts;
    met().Restarts.add();
    if (Root.Warm)
      reducedCostTighten(*Root.Warm, Sign * Root.Objective, IncBound,
                         IsInteger, Opts.IntTol, Lo, Up);
  }
}

//===----------------------------------------------------------------------===//
// Dense (legacy) engine
//===----------------------------------------------------------------------===//

/// A pending subproblem: bound overrides on top of the root model.
struct DenseNode {
  std::vector<std::pair<VarId, double>> LowerOverrides;
  std::vector<std::pair<VarId, double>> UpperOverrides;
};

IntSolution solveIntegerDense(const Model &M,
                              const std::vector<bool> &IsInteger,
                              const IntOptions &Opts) {
  WallTimer Timer;
  IntSolution Result;

  // Maximization sign: incumbent comparisons use Sign*objective so that
  // larger is always better internally.
  double Sign = M.isMaximize() ? 1.0 : -1.0;
  double Incumbent = -Infinity;

  std::vector<DenseNode> Stack;
  Stack.push_back(DenseNode{});
  bool Exhausted = true;

  while (!Stack.empty()) {
    if (Opts.MaxNodes > 0 && Result.Nodes >= Opts.MaxNodes) {
      Exhausted = false;
      break;
    }
    if (Opts.TimeLimitSec > 0.0 && Timer.seconds() > Opts.TimeLimitSec) {
      Exhausted = false;
      break;
    }

    DenseNode N = std::move(Stack.back());
    Stack.pop_back();
    ++Result.Nodes;
    met().Nodes.add();

    Model Sub = M;
    bool BadBounds = false;
    for (auto &[V, L] : N.LowerOverrides) {
      Sub.tightenLower(V, L);
      if (Sub.var(V).Lower > Sub.var(V).Upper)
        BadBounds = true;
    }
    for (auto &[V, U] : N.UpperOverrides) {
      Sub.tightenUpper(V, U);
      if (Sub.var(V).Lower > Sub.var(V).Upper)
        BadBounds = true;
    }
    if (BadBounds)
      continue;

    SolverOptions LPOpts = Opts.LP;
    if (Opts.TimeLimitSec > 0.0) {
      double Remaining = Opts.TimeLimitSec - Timer.seconds();
      if (LPOpts.Simplex.TimeLimitSec <= 0.0 ||
          LPOpts.Simplex.TimeLimitSec > Remaining)
        LPOpts.Simplex.TimeLimitSec = std::max(Remaining, 1e-3);
    }
    Solution Relax = solve(Sub, LPOpts);
    Result.LpPivots += Relax.Iterations;
    if (Relax.Status == SolveStatus::Infeasible)
      continue;
    if (Relax.Status == SolveStatus::Unbounded) {
      Result.Status = SolveStatus::Unbounded;
      Result.Seconds = Timer.seconds();
      return Result;
    }
    if (Relax.Status != SolveStatus::Optimal) {
      // Budget expired inside the LP; stop immediately instead of letting
      // the loop header burn whatever budget remains on another node.
      Exhausted = false;
      break;
    }

    double Bound = Sign * Relax.Objective;
    if (Bound <= Incumbent + tol::Prune) {
      met().Pruned.add();
      continue;
    }

    int BranchVar = pickBranchVar(Relax.Values, IsInteger, Opts.IntTol);
    if (BranchVar < 0) {
      // Integral: new incumbent.
      Incumbent = Bound;
      met().Incumbents.add();
      Result.HasIncumbent = true;
      Result.Objective = Relax.Objective;
      Result.Values = Relax.Values;
      // Snap to exact integers for reporting.
      for (size_t I = 0; I < Result.Values.size(); ++I)
        if (IsInteger[I])
          Result.Values[I] = std::round(Result.Values[I]);
      continue;
    }

    double Val = Relax.Values[BranchVar];
    DenseNode Down = N, Up = N;
    Down.UpperOverrides.push_back({BranchVar, std::floor(Val)});
    Up.LowerOverrides.push_back({BranchVar, std::ceil(Val)});
    // DFS: explore the branch nearest the LP value first.
    if (Val - std::floor(Val) < 0.5) {
      Stack.push_back(std::move(Up));
      Stack.push_back(std::move(Down));
    } else {
      Stack.push_back(std::move(Down));
      Stack.push_back(std::move(Up));
    }
  }

  Result.Seconds = Timer.seconds();
  if (Exhausted)
    Result.Status =
        Result.HasIncumbent ? SolveStatus::Optimal : SolveStatus::Infeasible;
  else
    Result.Status = SolveStatus::TimeLimit;
  return Result;
}

} // namespace

IntSolution aqua::lp::solveInteger(const Model &M,
                                   const std::vector<bool> &IsIntegerIn,
                                   const IntOptions &Opts) {
  AQUA_TRACE_SPAN("lp.bb", "lp");
  met().Solves.add();
  std::vector<bool> IsInteger = IsIntegerIn;
  if (IsInteger.empty())
    IsInteger.assign(M.numVars(), true);
  assert(static_cast<int>(IsInteger.size()) == M.numVars() &&
         "integrality mask size mismatch");

  if (Opts.Engine == IntEngine::Dense)
    return solveIntegerDense(M, IsInteger, Opts);

  // The warm engine works on the unreduced model (native bound handling
  // replaces per-node presolve), but presolve's bound propagation proves
  // root infeasibility orders of magnitude faster than a phase-1 solve on
  // an enzyme-scale model -- run it once as a pure feasibility screen.
  if (Opts.LP.Presolve) {
    WallTimer Timer;
    Presolved P = Presolved::run(M);
    if (P.provenInfeasible()) {
      IntSolution Result;
      Result.Status = SolveStatus::Infeasible;
      Result.Seconds = Timer.seconds();
      return Result;
    }
  }

  return solveIntegerWarm(M, IsInteger, Opts);
}
