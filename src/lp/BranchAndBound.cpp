//===- BranchAndBound.cpp - ILP via branch-and-bound -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/BranchAndBound.h"

#include "aqua/support/Timer.h"

#include <cmath>
#include <vector>

using namespace aqua;
using namespace aqua::lp;

namespace {

/// A pending subproblem: bound overrides on top of the root model.
struct Node {
  std::vector<std::pair<VarId, double>> LowerOverrides;
  std::vector<std::pair<VarId, double>> UpperOverrides;
};

/// Returns the index of the most fractional integer-constrained variable,
/// or -1 if all are integral within \p Tol.
int pickBranchVar(const std::vector<double> &Values,
                  const std::vector<bool> &IsInteger, double Tol) {
  int Best = -1;
  double BestDist = Tol;
  for (size_t I = 0; I < Values.size(); ++I) {
    if (!IsInteger[I])
      continue;
    double Frac = Values[I] - std::floor(Values[I]);
    double Dist = std::min(Frac, 1.0 - Frac);
    if (Dist > BestDist) {
      BestDist = Dist;
      Best = static_cast<int>(I);
    }
  }
  return Best;
}

} // namespace

IntSolution aqua::lp::solveInteger(const Model &M,
                                   const std::vector<bool> &IsIntegerIn,
                                   const IntOptions &Opts) {
  WallTimer Timer;
  IntSolution Result;

  std::vector<bool> IsInteger = IsIntegerIn;
  if (IsInteger.empty())
    IsInteger.assign(M.numVars(), true);
  assert(static_cast<int>(IsInteger.size()) == M.numVars() &&
         "integrality mask size mismatch");

  // Maximization sign: incumbent comparisons use Sign*objective so that
  // larger is always better internally.
  double Sign = M.isMaximize() ? 1.0 : -1.0;
  double Incumbent = -Infinity;

  std::vector<Node> Stack;
  Stack.push_back(Node{});
  bool Exhausted = true;

  while (!Stack.empty()) {
    if (Opts.MaxNodes > 0 && Result.Nodes >= Opts.MaxNodes) {
      Exhausted = false;
      break;
    }
    if (Opts.TimeLimitSec > 0.0 && Timer.seconds() > Opts.TimeLimitSec) {
      Exhausted = false;
      break;
    }

    Node N = std::move(Stack.back());
    Stack.pop_back();
    ++Result.Nodes;

    Model Sub = M;
    bool BadBounds = false;
    for (auto &[V, L] : N.LowerOverrides) {
      Sub.tightenLower(V, L);
      if (Sub.var(V).Lower > Sub.var(V).Upper)
        BadBounds = true;
    }
    for (auto &[V, U] : N.UpperOverrides) {
      Sub.tightenUpper(V, U);
      if (Sub.var(V).Lower > Sub.var(V).Upper)
        BadBounds = true;
    }
    if (BadBounds)
      continue;

    SolverOptions LPOpts = Opts.LP;
    if (Opts.TimeLimitSec > 0.0) {
      double Remaining = Opts.TimeLimitSec - Timer.seconds();
      if (LPOpts.Simplex.TimeLimitSec <= 0.0 ||
          LPOpts.Simplex.TimeLimitSec > Remaining)
        LPOpts.Simplex.TimeLimitSec = std::max(Remaining, 1e-3);
    }
    Solution Relax = solve(Sub, LPOpts);
    if (Relax.Status == SolveStatus::Infeasible)
      continue;
    if (Relax.Status == SolveStatus::Unbounded) {
      Result.Status = SolveStatus::Unbounded;
      Result.Seconds = Timer.seconds();
      return Result;
    }
    if (Relax.Status != SolveStatus::Optimal) {
      // Budget expired inside the LP.
      Exhausted = false;
      break;
    }

    double Bound = Sign * Relax.Objective;
    if (Bound <= Incumbent + 1e-9)
      continue; // Pruned.

    int BranchVar = pickBranchVar(Relax.Values, IsInteger, Opts.IntTol);
    if (BranchVar < 0) {
      // Integral: new incumbent.
      Incumbent = Bound;
      Result.HasIncumbent = true;
      Result.Objective = Relax.Objective;
      Result.Values = Relax.Values;
      // Snap to exact integers for reporting.
      for (size_t I = 0; I < Result.Values.size(); ++I)
        if (IsInteger[I])
          Result.Values[I] = std::round(Result.Values[I]);
      continue;
    }

    double Val = Relax.Values[BranchVar];
    Node Down = N, Up = N;
    Down.UpperOverrides.push_back({BranchVar, std::floor(Val)});
    Up.LowerOverrides.push_back({BranchVar, std::ceil(Val)});
    // DFS: explore the branch nearest the LP value first.
    if (Val - std::floor(Val) < 0.5) {
      Stack.push_back(std::move(Up));
      Stack.push_back(std::move(Down));
    } else {
      Stack.push_back(std::move(Down));
      Stack.push_back(std::move(Up));
    }
  }

  Result.Seconds = Timer.seconds();
  if (Exhausted)
    Result.Status =
        Result.HasIncumbent ? SolveStatus::Optimal : SolveStatus::Infeasible;
  else
    Result.Status = SolveStatus::TimeLimit;
  return Result;
}
