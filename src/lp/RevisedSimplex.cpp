//===- RevisedSimplex.cpp - Bounded-variable revised simplex ----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Implementation notes
// --------------------
// Standard computational form: every model row becomes an equality
//   a_i . x  +  s_i  =  rhs_i
// where s_i is the row's logical column with bounds derived from the row
// kind (LE: [0,inf), GE: (-inf,0], EQ: [0,0]). The basis always has
// dimension m = numRows; finite variable bounds never add rows.
//
// The basis is held as a sparse Markowitz LU (BasisLU) plus a product-form
// eta file appended on every pivot; FTRAN/BTRAN replay the etas on top of
// the O(m + nnz) LU solves. The RVol bases factor with ~1.3x fill, so a
// refactorization costs about one FTRAN and the rent-or-buy rule re-factors
// every few pivots -- the eta file stays short, per-pivot work stays
// output-sensitive, and no m x m array is ever materialized.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/RevisedSimplex.h"

#include "aqua/lp/Tolerances.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Timer.h"
#include "aqua/support/Fatal.h"

#include <algorithm>
#include <cmath>

using namespace aqua;
using namespace aqua::lp;

namespace {

/// Global-registry instruments, resolved once. Pivots are counted at the
/// pivot sites (one relaxed increment each) rather than flushed from the
/// member counter, so warm-start fallback chains never double- or
/// under-count.
struct SimplexMetrics {
  obs::Counter &Pivots = obs::metrics().counter("lp.pivots");
  obs::Counter &Refactorizations =
      obs::metrics().counter("lp.refactorizations");
  obs::Counter &ColdSolves = obs::metrics().counter("lp.cold_solves");
  obs::Counter &WarmReopts = obs::metrics().counter("lp.warm_reopts");
  obs::Counter &WarmFastPath = obs::metrics().counter("lp.warm_fast_path");
  obs::Counter &WarmColdFallbacks =
      obs::metrics().counter("lp.warm_cold_fallbacks");
  /// Full rebuilds of the maintained reduced-cost vector (entry, each
  /// refactorization, and drift-control backstops).
  obs::Counter &PricingFullRecomputes =
      obs::metrics().counter("lp.pricing_full_recomputes");
  /// Entering candidates whose maintained reduced cost disagreed with the
  /// factorization beyond tolerance and were repaired in place.
  obs::Counter &PricingDriftRepairs =
      obs::metrics().counter("lp.pricing_drift_repairs");
  /// Devex reference-framework resets (fresh logical-basis installs).
  obs::Counter &DevexResets = obs::metrics().counter("lp.devex_resets");
  /// FTRAN results with a sparse nonzero pattern (< 10% of m) vs dense;
  /// the hypersparse-vs-dense solve mix of the pivot loops.
  obs::Counter &FtranHypersparse =
      obs::metrics().counter("lp.ftran_hypersparse");
  obs::Counter &FtranDense = obs::metrics().counter("lp.ftran_dense");
  /// Reduced costs / devex weights inherited from a warm-start basis
  /// snapshot, skipping the O(m^2) dual recomputation.
  obs::Counter &WarmDualInherits =
      obs::metrics().counter("lp.warm_dual_inherits");
};

SimplexMetrics &met() {
  static SimplexMetrics M;
  return M;
}

} // namespace


const char *aqua::lp::revisedStatusName(RevisedStatus S) {
  switch (S) {
  case RevisedStatus::Optimal:
    return "optimal";
  case RevisedStatus::Infeasible:
    return "infeasible";
  case RevisedStatus::Unbounded:
    return "unbounded";
  case RevisedStatus::IterationLimit:
    return "iteration-limit";
  case RevisedStatus::TimeLimit:
    return "time-limit";
  case RevisedStatus::NumericFail:
    return "numeric-fail";
  }
  AQUA_UNREACHABLE("bad RevisedStatus");
}

const char *aqua::lp::lpPricingName(LpPricing P) {
  switch (P) {
  case LpPricing::Devex:
    return "devex";
  case LpPricing::Dantzig:
    return "dantzig";
  case LpPricing::Bland:
    return "bland";
  }
  AQUA_UNREACHABLE("bad LpPricing");
}

SolveStatus aqua::lp::toSolveStatus(RevisedStatus S) {
  switch (S) {
  case RevisedStatus::Optimal:
    return SolveStatus::Optimal;
  case RevisedStatus::Infeasible:
    return SolveStatus::Infeasible;
  case RevisedStatus::Unbounded:
    return SolveStatus::Unbounded;
  case RevisedStatus::IterationLimit:
  case RevisedStatus::NumericFail:
    return SolveStatus::IterationLimit;
  case RevisedStatus::TimeLimit:
    return SolveStatus::TimeLimit;
  }
  AQUA_UNREACHABLE("bad RevisedStatus");
}

namespace {

/// Slack accepted on reduced-cost signs when validating a warm-start basis
/// for the dual simplex; wider than tol::Cost because the duals come from
/// a refactorized copy of a basis optimized elsewhere.
constexpr double DualFeasTol = 1e-7;

} // namespace

RevisedSimplex::RevisedSimplex(const Model &Model,
                               std::shared_ptr<const SparseMatrix> Shared)
    : M(Model), Cols(std::move(Shared)) {
  if (!Cols)
    Cols = std::make_shared<const SparseMatrix>(M);
  NumRows = M.numRows();
  NumStruct = M.numVars();
  NumCols = NumStruct + NumRows;

  double Sign = M.isMaximize() ? -1.0 : 1.0;
  Cost.assign(NumCols, 0.0);
  Lower.resize(NumStruct);
  Upper.resize(NumStruct);
  for (VarId V = 0; V < NumStruct; ++V) {
    Cost[V] = Sign * M.var(V).ObjCoef;
    Lower[V] = M.var(V).Lower;
    Upper[V] = M.var(V).Upper;
  }
  RootLower = Lower;
  RootUpper = Upper;

  LogLower.assign(NumRows, 0.0);
  LogUpper.assign(NumRows, 0.0);
  Rhs.assign(NumRows, 0.0);
  for (RowId R = 0; R < NumRows; ++R) {
    Rhs[R] = M.row(R).Rhs;
    switch (M.row(R).Kind) {
    case RowKind::LE:
      LogLower[R] = 0.0;
      LogUpper[R] = Infinity;
      break;
    case RowKind::GE:
      LogLower[R] = -Infinity;
      LogUpper[R] = 0.0;
      break;
    case RowKind::EQ:
      LogLower[R] = LogUpper[R] = 0.0;
      break;
    }
  }

  Status.assign(NumCols, VarStatus::AtLower);
  BasicCol.assign(NumRows, -1);
  RowOfBasic.assign(NumCols, -1);
  XB.assign(NumRows, 0.0);
  WorkY.assign(NumRows, 0.0);
  WorkW.assign(NumRows, 0.0);
  WorkC.assign(NumRows, 0.0);
  StructValues.assign(NumStruct, 0.0);

  PrimalD.assign(NumCols, 0.0);
  DevexW.assign(NumCols, 1.0);
  AlphaR.assign(NumCols, 0.0);
  AlphaMark.assign(NumCols, 0);
  AlphaTouched.reserve(NumCols);
  PatW.reserve(NumRows);
  PatRho.reserve(NumRows);
  PatP.reserve(NumRows);
  PatDy.reserve(NumRows);
  ViolState.assign(NumRows, 0);
  DyVal.assign(NumRows, 0.0);
  DyMark.assign(NumRows, 0);
  RhoVec.assign(NumRows, 0.0);
}

double RevisedSimplex::colLower(int Col) const {
  return Col < NumStruct ? Lower[Col] : LogLower[Col - NumStruct];
}

double RevisedSimplex::colUpper(int Col) const {
  return Col < NumStruct ? Upper[Col] : LogUpper[Col - NumStruct];
}

double RevisedSimplex::nonbasicValue(int Col) const {
  switch (Status[Col]) {
  case VarStatus::AtLower:
    return colLower(Col);
  case VarStatus::AtUpper:
    return colUpper(Col);
  case VarStatus::Free:
    return 0.0;
  case VarStatus::Basic:
    break;
  }
  AQUA_UNREACHABLE("nonbasicValue on basic column");
}

double RevisedSimplex::columnDot(int Col, const double *Y) const {
  if (Col < NumStruct)
    return Cols->dotColumn(Col, Y);
  return Y[Col - NumStruct];
}

void RevisedSimplex::ftran(int Col, std::vector<double> &W,
                           std::vector<int> *Pat) const {
  W.assign(NumRows, 0.0);
  if (Col < NumStruct) {
    for (const SparseMatrix::Entry *E = Cols->colBegin(Col),
                                   *End = Cols->colEnd(Col);
         E != End; ++E)
      if (E->Value != 0.0)
        W[E->Row] += E->Value;
  } else {
    W[Col - NumStruct] = 1.0;
  }
  Base.ftran(W);
  applyEtas(W);
  if (!Pat)
    return;
  // One O(m) scan buys every downstream loop (ratio test, XB update,
  // pivot update) a walk over nnz(W) instead of m.
  Pat->clear();
  for (int I = 0; I < NumRows; ++I)
    if (W[I] != 0.0)
      Pat->push_back(I);
  if (10 * static_cast<int>(Pat->size()) < NumRows)
    met().FtranHypersparse.add();
  else
    met().FtranDense.add();
}

void RevisedSimplex::gatherRowAlphas(const double *Rho,
                                     const std::vector<int> &Pat) {
  for (int C : AlphaTouched) {
    AlphaR[C] = 0.0;
    AlphaMark[C] = 0;
  }
  AlphaTouched.clear();
  for (int I : Pat) {
    double RV = Rho[I];
    int LC = NumStruct + I; // Logical column of row I: alpha is Rho[I].
    if (!AlphaMark[LC]) {
      AlphaMark[LC] = 1;
      AlphaTouched.push_back(LC);
    }
    AlphaR[LC] += RV;
    for (const SparseMatrix::RowEntry *E = Cols->rowBegin(I),
                                      *End = Cols->rowEnd(I);
         E != End; ++E) {
      if (!AlphaMark[E->Col]) {
        AlphaMark[E->Col] = 1;
        AlphaTouched.push_back(E->Col);
      }
      AlphaR[E->Col] += RV * E->Value;
    }
  }
}

void RevisedSimplex::installLogicalBasis() {
  // Fresh start: the devex reference framework restarts with it.
  std::fill(DevexW.begin(), DevexW.end(), 1.0);
  met().DevexResets.add();
  for (int C = 0; C < NumCols; ++C) {
    if (C >= NumStruct) {
      Status[C] = VarStatus::Basic;
      continue;
    }
    if (Lower[C] != -Infinity)
      Status[C] = VarStatus::AtLower;
    else if (Upper[C] != Infinity)
      Status[C] = VarStatus::AtUpper;
    else
      Status[C] = VarStatus::Free;
  }
  std::fill(RowOfBasic.begin(), RowOfBasic.end(), -1);
  for (int R = 0; R < NumRows; ++R) {
    BasicCol[R] = NumStruct + R;
    RowOfBasic[NumStruct + R] = R;
  }
  Etas.clear();
  EtaNnzTotal = 0;
  ReplayOps = 0;
  SinceRefactor = 0;
  // The all-logical basis is the identity: its factorization is m trivial
  // singleton pivots and cannot fail.
  Base.factor(*Cols, NumStruct, BasicCol);
}

bool RevisedSimplex::installBasis(const Basis &B) {
  if (static_cast<int>(B.Status.size()) != NumCols ||
      static_cast<int>(B.BasicCol.size()) != NumRows)
    return false;
  // Plunging fast path: when the incoming basis matrix equals the one the
  // engine already holds (a child reusing its parent's basis right after
  // the parent solved), the factorization is still valid -- skip it.
  bool SameBasis = Base.valid() && B.BasicCol == BasicCol;
  Status = B.Status;
  BasicCol = B.BasicCol;
  std::fill(RowOfBasic.begin(), RowOfBasic.end(), -1);
  for (int R = 0; R < NumRows; ++R) {
    int C = BasicCol[R];
    if (C < 0 || C >= NumCols || RowOfBasic[C] >= 0)
      return false;
    RowOfBasic[C] = R;
    if (Status[C] != VarStatus::Basic)
      return false;
  }
  // Sanitize nonbasic statuses against the *current* bounds: branching may
  // have given a finite bound to a column the parent held Free, or removed
  // nothing (bounds only tighten), but a stale status must never reference
  // an infinite bound.
  for (int C = 0; C < NumCols; ++C) {
    if (Status[C] == VarStatus::Basic)
      continue;
    double L = colLower(C), U = colUpper(C);
    switch (Status[C]) {
    case VarStatus::AtLower:
      if (L == -Infinity)
        Status[C] = U != Infinity ? VarStatus::AtUpper : VarStatus::Free;
      break;
    case VarStatus::AtUpper:
      if (U == Infinity)
        Status[C] = L != -Infinity ? VarStatus::AtLower : VarStatus::Free;
      break;
    case VarStatus::Free:
      if (L != -Infinity)
        Status[C] = VarStatus::AtLower;
      else if (U != Infinity)
        Status[C] = VarStatus::AtUpper;
      break;
    case VarStatus::Basic:
      break;
    }
  }
  return SameBasis || refactorize();
}

bool RevisedSimplex::refactorize() {
  if (NumRows == 0)
    return true;
  met().Refactorizations.add();
  // Sparse Markowitz LU of the current basis. The duplicate-logical and
  // kernel-singularity failures of the old dense path both surface as
  // factor() returning false.
  if (!Base.factor(*Cols, NumStruct, BasicCol))
    return false;
  Etas.clear();
  EtaNnzTotal = 0;
  ReplayOps = 0;
  SinceRefactor = 0;
  return true;
}

void RevisedSimplex::computeBasicValues() {
  // XB = B^-1 * (Rhs - sum_j A_j * x_j over nonbasic j with x_j != 0).
  WorkC = Rhs;
  for (int C = 0; C < NumCols; ++C) {
    if (Status[C] == VarStatus::Basic)
      continue;
    double X = nonbasicValue(C);
    if (X == 0.0)
      continue;
    if (C < NumStruct) {
      for (const SparseMatrix::Entry *E = Cols->colBegin(C),
                                     *End = Cols->colEnd(C);
           E != End; ++E)
        WorkC[E->Row] -= E->Value * X;
    } else {
      WorkC[C - NumStruct] -= X;
    }
  }
  XB = WorkC;
  Base.ftran(XB);
  applyEtas(XB);
}

void RevisedSimplex::computeDuals(const std::vector<double> &CostB,
                                  std::vector<double> &Y) const {
  // With an eta file in play the row-space seed passes through the
  // transposed etas (newest first) before hitting the base inverse.
  const std::vector<double> *Src = &CostB;
  std::vector<double> Tmp;
  if (!Etas.empty()) {
    Tmp = CostB;
    for (auto It = Etas.rbegin(); It != Etas.rend(); ++It) {
      const Eta &E = *It;
      double Acc = Tmp[E.Row];
      for (int I : E.Pat)
        Acc -= Tmp[I] * E.Val[I];
      Tmp[E.Row] = Acc / E.Piv;
    }
    Src = &Tmp;
  }
  Y = *Src;
  Base.btran(Y);
}

double RevisedSimplex::reducedCost(int Col, const double *Y) const {
  return Cost[Col] - columnDot(Col, Y);
}

void RevisedSimplex::applyPivot(int LeaveRow, int EnterCol,
                                const std::vector<double> &W,
                                const std::vector<int> &Pat) {
  // Product-form update: record the FTRAN column as an eta instead of
  // touching the dense base inverse -- O(nnz(W)) where the in-place
  // rank-one update was O(nnz(W) * nnz(pivot row)), which goes quadratic
  // once B^-1 fills in. FTRAN/BTRAN replay the eta file on top of B0^-1;
  // the periodic refactorization absorbs it back into the dense base.
  Eta E;
  E.Row = LeaveRow;
  E.Piv = W[LeaveRow];
  E.Val.assign(NumRows, 0.0);
  E.Pat.reserve(Pat.size());
  for (int I : Pat) {
    if (I == LeaveRow || std::fabs(W[I]) < tol::Zero)
      continue;
    E.Val[I] = W[I];
    E.Pat.push_back(I);
  }
  EtaNnzTotal += E.Pat.size();
  Etas.push_back(std::move(E));
  int OldCol = BasicCol[LeaveRow];
  RowOfBasic[OldCol] = -1;
  BasicCol[LeaveRow] = EnterCol;
  RowOfBasic[EnterCol] = LeaveRow;
  Status[EnterCol] = VarStatus::Basic;
  ++SinceRefactor;
}

void RevisedSimplex::applyEtas(std::vector<double> &V) const {
  std::size_t Work = Etas.size();
  for (const Eta &E : Etas) {
    double T = V[E.Row];
    if (T == 0.0)
      continue;
    double Tp = T / E.Piv;
    V[E.Row] = Tp;
    for (int I : E.Pat)
      V[I] -= E.Val[I] * Tp;
    Work += E.Pat.size();
  }
  ReplayOps += Work;
}

void RevisedSimplex::btran(std::vector<double> &YVal,
                           std::vector<unsigned char> &YMark,
                           std::vector<int> &YPat, std::vector<double> &Rho,
                           std::vector<int> &RhoPat) const {
  // y^T B^-1 = ((y^T E_k) E_k-1 ... E_1) B0^-1. A transposed eta changes
  // only component Row, so the seed gains at most one nonzero per eta.
  std::size_t Work = 0;
  for (auto It = Etas.rbegin(); It != Etas.rend(); ++It) {
    const Eta &E = *It;
    double Acc = YVal[E.Row];
    for (int I : YPat)
      if (I != E.Row)
        Acc -= YVal[I] * E.Val[I];
    Acc /= E.Piv;
    if (YVal[E.Row] == 0.0 && Acc != 0.0 && !YMark[E.Row]) {
      YMark[E.Row] = 1;
      YPat.push_back(E.Row);
    }
    YVal[E.Row] = Acc;
    Work += YPat.size();
  }
  // Rho = B0^-T applied to the accumulated seed -- one sparse-LU btran,
  // O(m + nnz(LU)) regardless of how many nonzeros the eta replay added.
  // Only the eta replay itself counts toward the rent-or-buy debt.
  ReplayOps += Work;
  std::fill(Rho.begin(), Rho.end(), 0.0);
  for (int P : YPat)
    Rho[P] = YVal[P];
  Base.btran(Rho);
  RhoPat.clear();
  for (int K = 0; K < NumRows; ++K)
    if (Rho[K] != 0.0)
      RhoPat.push_back(K);
  for (int P : YPat) {
    YVal[P] = 0.0;
    YMark[P] = 0;
  }
  YPat.clear();
}

void RevisedSimplex::btranRow(int P) {
  DyVal[P] = 1.0;
  DyMark[P] = 1;
  PatDy.clear();
  PatDy.push_back(P);
  btran(DyVal, DyMark, PatDy, RhoVec, PatRho);
}

double RevisedSimplex::infeasibilitySum() const {
  double Sum = 0.0;
  for (int R = 0; R < NumRows; ++R) {
    int C = BasicCol[R];
    double L = colLower(C), U = colUpper(C);
    if (XB[R] < L)
      Sum += L - XB[R];
    else if (XB[R] > U)
      Sum += XB[R] - U;
  }
  return Sum;
}

namespace {

/// Internal per-solve budget tracker. The safety cap bounds pivots even
/// when the caller asked for "unlimited": a cycling pivot sequence must
/// surface as NumericFail, never as a hang.
struct Budget {
  const RevisedOptions &Opts;
  WallTimer Timer;
  std::int64_t SafetyCap;

  Budget(const RevisedOptions &Opts, int Rows, int Cols)
      : Opts(Opts),
        SafetyCap(10000 + 500LL * (static_cast<std::int64_t>(Rows) + Cols)) {}

  /// Returns the status that should abort the loop, or Optimal to keep
  /// going.
  RevisedStatus check(std::int64_t Iterations) {
    if (Opts.MaxIterations > 0 && Iterations >= Opts.MaxIterations)
      return RevisedStatus::IterationLimit;
    if (Iterations >= SafetyCap)
      return RevisedStatus::NumericFail;
    if (Opts.TimeLimitSec > 0.0 && (Iterations & 63) == 0 &&
        Timer.seconds() > Opts.TimeLimitSec)
      return RevisedStatus::TimeLimit;
    return RevisedStatus::Optimal;
  }
};

} // namespace

RevisedStatus RevisedSimplex::primal(const RevisedOptions &Opts, bool Phase1) {
  Budget B(Opts, NumRows, NumCols);
  const bool Devex = Opts.Pricing == LpPricing::Devex;
  bool UseBland = Opts.Pricing == LpPricing::Bland;
  int StallCount = 0;
  int RepairStreak = 0;
  double LastMerit = Infinity; // Phase-1 infeasibility or phase-2 objective.
  std::vector<double> &W = WorkW;

  // Everything the iteration needs is *maintained* across pivots: XB
  // (rank-one updates), the reduced costs PrimalD (pivot-row updates),
  // the phase-1 violation states, and the merit itself. Full recomputes
  // happen only here, after each periodic refactorization, and as the
  // drift-control backstop -- never per iteration.
  double Merit = 0.0;
  bool PricesFresh = false;

  // Exact tol-filtered phase-1 infeasibility from the current XB; O(m).
  auto phase1Merit = [&] {
    double Sum = 0.0;
    for (int R = 0; R < NumRows; ++R) {
      int C = BasicCol[R];
      double L = colLower(C), U = colUpper(C);
      if (XB[R] < L - tol::Feas)
        Sum += L - XB[R];
      else if (XB[R] > U + tol::Feas)
        Sum += XB[R] - U;
    }
    return Sum;
  };

  auto refresh = [&] {
    met().PricingFullRecomputes.add();
    computeBasicValues();
    Merit = 0.0;
    if (Phase1) {
      for (int R = 0; R < NumRows; ++R) {
        int C = BasicCol[R];
        double L = colLower(C), U = colUpper(C);
        if (XB[R] < L - tol::Feas) {
          ViolState[R] = -1;
          Merit += L - XB[R];
        } else if (XB[R] > U + tol::Feas) {
          ViolState[R] = 1;
          Merit += XB[R] - U;
        } else {
          ViolState[R] = 0;
        }
      }
    } else {
      for (int R = 0; R < NumRows; ++R)
        Merit += Cost[BasicCol[R]] * XB[R];
      for (int C = 0; C < NumCols; ++C)
        if (Status[C] != VarStatus::Basic && Cost[C] != 0.0)
          Merit += Cost[C] * nonbasicValue(C);
    }
    for (int R = 0; R < NumRows; ++R)
      WorkC[R] =
          Phase1 ? static_cast<double>(ViolState[R]) : Cost[BasicCol[R]];
    computeDuals(WorkC, WorkY);
    for (int C = 0; C < NumCols; ++C)
      PrimalD[C] = Status[C] == VarStatus::Basic
                       ? 0.0
                       : (Phase1 ? 0.0 : Cost[C]) -
                             columnDot(C, WorkY.data());
    PricesFresh = true;
  };
  refresh();

  // Applies the maintained-D corrections after phase-1 basic-cost changes
  // (rows whose violation state flipped): Dy = sum_p DeltaC_p * row p of
  // B^-1, then D_j -= Dy . A_j over the columns those rows touch.
  std::vector<std::pair<int, double>> ChangedRows;
  auto applyCostChanges = [&] {
    if (ChangedRows.empty())
      return;
    PatDy.clear();
    for (const auto &[P, DC] : ChangedRows) {
      if (!DyMark[P]) {
        DyMark[P] = 1;
        PatDy.push_back(P);
      }
      DyVal[P] += DC;
    }
    btran(DyVal, DyMark, PatDy, RhoVec, PatRho);
    gatherRowAlphas(RhoVec.data(), PatRho);
    for (int C : AlphaTouched)
      if (Status[C] != VarStatus::Basic)
        PrimalD[C] -= AlphaR[C];
    ChangedRows.clear();
  };

  // Recomputes violation state + merit contribution of the rows in PatW
  // after their XB moved (ViolOld holds the pre-move contributions) and
  // queues cost-change corrections. OldCostAtLeaveRow: the fixed-c value
  // the maintained D currently assumes for the column basic at LeaveRow
  // (0 right after a pivot brought a nonbasic column in; the stored state
  // on a bound flip). Pass LeaveRow = -1 for bound flips.
  auto updatePhase1Rows = [&](int LeaveRow) {
    for (size_t Idx = 0; Idx < PatW.size(); ++Idx) {
      int R = PatW[Idx];
      int C = BasicCol[R];
      double L = colLower(C), U = colUpper(C);
      double NV = 0.0;
      signed char NS = 0;
      if (XB[R] < L - tol::Feas) {
        NV = L - XB[R];
        NS = -1;
      } else if (XB[R] > U + tol::Feas) {
        NV = XB[R] - U;
        NS = 1;
      }
      Merit += NV - ViolOld[Idx];
      signed char AssumedCost = R == LeaveRow ? 0 : ViolState[R];
      if (NS != AssumedCost)
        ChangedRows.push_back({R, static_cast<double>(NS - AssumedCost)});
      ViolState[R] = NS;
    }
    applyCostChanges();
  };

  auto captureOldViols = [&] {
    ViolOld.resize(PatW.size());
    for (size_t Idx = 0; Idx < PatW.size(); ++Idx) {
      int R = PatW[Idx];
      int C = BasicCol[R];
      double L = colLower(C), U = colUpper(C);
      if (XB[R] < L - tol::Feas)
        ViolOld[Idx] = L - XB[R];
      else if (XB[R] > U + tol::Feas)
        ViolOld[Idx] = XB[R] - U;
      else
        ViolOld[Idx] = 0.0;
    }
  };

  for (;;) {
    if (RevisedStatus S = B.check(Iterations); S != RevisedStatus::Optimal)
      return S;

    if (Phase1 && Merit <= tol::Phase1) {
      // Confirm on an exact O(m) pass before ending the phase; the
      // maintained merit accumulates float dust across pivots.
      Merit = phase1Merit();
      if (Merit <= tol::Phase1)
        return RevisedStatus::Optimal;
    }

    // Stall detection keys off the incrementally maintained merit -- no
    // full O(n + m) recompute per iteration. Degenerate plateaus scale
    // with the basis dimension (phase 1 on an enzyme_n12 model sits
    // thousands of pivots at constant infeasibility before breaking
    // through), so on large bases the watchdog scales the configured
    // threshold with m to tell "degenerate but progressing" from genuine
    // cycling; below 256 rows the configured value applies unscaled.
    const int Stall = Opts.StallThreshold * std::max(1, NumRows / 256);
    if (Merit < LastMerit - 1e-12) {
      StallCount = 0;
      if (Opts.Pricing != LpPricing::Bland)
        UseBland = false;
      LastMerit = Merit;
    } else {
      if (++StallCount > Stall)
        UseBland = true;
      if (StallCount > 4 * Stall)
        return RevisedStatus::NumericFail;
    }
    if (UseBland)
      UsedBland = true;

    // Price from the maintained reduced costs. In phase 1 nonbasic costs
    // are zero, so PrimalD is -y . A_j either way.
    int Enter = -1;
    double EnterDir = 0.0, BestScore = 0.0;
    for (int C = 0; C < NumCols; ++C) {
      VarStatus St = Status[C];
      if (St == VarStatus::Basic)
        continue;
      double D = PrimalD[C];
      double Dir = 0.0;
      if (St == VarStatus::AtLower && D < -tol::Cost)
        Dir = 1.0;
      else if (St == VarStatus::AtUpper && D > tol::Cost)
        Dir = -1.0;
      else if (St == VarStatus::Free && std::fabs(D) > tol::Cost)
        Dir = D < 0.0 ? 1.0 : -1.0;
      if (Dir == 0.0)
        continue;
      if (UseBland) {
        Enter = C;
        EnterDir = Dir;
        break;
      }
      double Score = Devex ? D * D / DevexW[C] : std::fabs(D);
      if (Score > BestScore) {
        BestScore = Score;
        Enter = C;
        EnterDir = Dir;
      }
    }

    if (Enter < 0) {
      if (!PricesFresh) {
        // Maintained prices say optimal; verify against the factorization
        // before declaring it (drift control).
        refresh();
        continue;
      }
      if (Phase1)
        return RevisedStatus::Infeasible; // Infeasibility minimized but > 0.
      return RevisedStatus::Optimal;
    }

    ftran(Enter, W, &PatW);

    // Entering safeguard: the exact reduced cost from the factorization is
    // c_Enter - costB . W, one sparse dot over the FTRAN pattern. A
    // maintained value that drifted past tolerance is repaired in place;
    // if the repair kills the candidate's eligibility, re-price.
    double DTrue = Phase1 ? 0.0 : Cost[Enter];
    for (int I : PatW) {
      double CB =
          Phase1 ? static_cast<double>(ViolState[I]) : Cost[BasicCol[I]];
      if (CB != 0.0)
        DTrue -= CB * W[I];
    }
    bool Drifted = std::fabs(DTrue - PrimalD[Enter]) >
                   1e-7 * (1.0 + std::fabs(DTrue));
    PrimalD[Enter] = DTrue;
    if (Drifted) {
      met().PricingDriftRepairs.add();
      if (++RepairStreak >= 8) {
        // Pervasive drift: rebuild everything instead of repairing one
        // entry at a time.
        if (!refactorize())
          return RevisedStatus::NumericFail;
        refresh();
        RepairStreak = 0;
      }
      continue; // Re-price with the repaired entry.
    }
    RepairStreak = 0;
    double DEnter = DTrue;

    // Bounded-variable ratio test over the FTRAN pattern (rows outside it
    // have W[R] == 0 and can never block). The entering column moves by
    // t >= 0 in direction EnterDir; basic row R changes by -t * Alpha
    // with Alpha = EnterDir * W[R].
    double EnterL = colLower(Enter), EnterU = colUpper(Enter);
    double OwnRange = (EnterL != -Infinity && EnterU != Infinity)
                          ? EnterU - EnterL
                          : Infinity;
    double BestT = OwnRange;
    int LeaveRow = -1;
    double LeavePivot = 0.0;
    bool LeaveAtLower = false;
    for (int R : PatW) {
      double Alpha = EnterDir * W[R];
      if (std::fabs(Alpha) <= tol::Pivot)
        continue;
      int C = BasicCol[R];
      double L = colLower(C), U = colUpper(C);
      double T = Infinity;
      bool AtL = false;
      if (Phase1 && XB[R] < L - tol::Feas) {
        // Infeasible below: blocks only when rising onto its lower bound.
        if (Alpha < 0.0) {
          T = (XB[R] - L) / Alpha;
          AtL = true;
        }
      } else if (Phase1 && XB[R] > U + tol::Feas) {
        // Infeasible above: blocks only when falling onto its upper bound.
        if (Alpha > 0.0) {
          T = (XB[R] - U) / Alpha;
          AtL = false;
        }
      } else if (Alpha > 0.0) {
        if (L != -Infinity) {
          T = (XB[R] - L) / Alpha;
          AtL = true;
        }
      } else {
        if (U != Infinity) {
          T = (XB[R] - U) / Alpha;
          AtL = false;
        }
      }
      if (T == Infinity)
        continue;
      if (T < 0.0)
        T = 0.0; // Degenerate: already at (or past) the bound.
      if (T < BestT - 1e-12 ||
          (T < BestT + 1e-12 &&
           (LeaveRow < 0 || std::fabs(Alpha) > std::fabs(LeavePivot)))) {
        BestT = T;
        LeaveRow = R;
        LeavePivot = Alpha;
        LeaveAtLower = AtL;
      }
    }

    if (LeaveRow < 0) {
      if (BestT == Infinity) {
        // No block anywhere. In phase 2 that is unboundedness; in phase 1
        // it cannot happen (the infeasibility would fall below zero), so
        // treat it as numeric trouble.
        return Phase1 ? RevisedStatus::NumericFail : RevisedStatus::Unbounded;
      }
      // Bound flip: the entering column traverses its whole range. The
      // basis is untouched, so the maintained reduced costs survive as-is
      // (modulo phase-1 state flips on the rows whose XB moved).
      Status[Enter] = Status[Enter] == VarStatus::AtLower ? VarStatus::AtUpper
                                                          : VarStatus::AtLower;
      double Delta = EnterDir * OwnRange;
      if (Phase1)
        captureOldViols();
      else
        Merit += DEnter * Delta;
      for (int R : PatW)
        XB[R] -= Delta * W[R];
      if (Phase1)
        updatePhase1Rows(/*LeaveRow=*/-1);
      ++Iterations;
      met().Pivots.add();
      PricesFresh = false;
    } else {
      int LeaveCol = BasicCol[LeaveRow];
      double EnterVal = nonbasicValue(Enter) + EnterDir * BestT;

      // Pivot-row alphas from the *pre-pivot* B^-1 row (BTRAN through the
      // eta file), gathered row-sparsely through the CSR mirror; they
      // drive both the reduced-cost update and the devex weight update.
      btranRow(LeaveRow);
      gatherRowAlphas(RhoVec.data(), PatRho);

      // Consistency check: the gathered alpha of the entering column and
      // the FTRAN pivot element are the same number computed two ways; a
      // mismatch means the factorization is inconsistent.
      if (std::fabs(AlphaR[Enter] - W[LeaveRow]) >
          1e-6 * (1.0 + std::fabs(W[LeaveRow]))) {
        if (!refactorize())
          return RevisedStatus::NumericFail;
        refresh();
        continue;
      }

      double Theta = DEnter / W[LeaveRow];
      double WEnter = DevexW[Enter];
      double PivA = W[LeaveRow];

      if (Phase1)
        captureOldViols();
      else
        Merit += DEnter * EnterDir * BestT;
      for (int R : PatW)
        XB[R] -= EnterDir * BestT * W[R];

      // Incremental pricing: D_j -= theta * alpha_j over the touched
      // columns only; everything untouched has alpha exactly zero. Devex
      // reference weights ride the same loop.
      for (int C : AlphaTouched) {
        if (Status[C] == VarStatus::Basic)
          continue;
        if (C != Enter)
          PrimalD[C] -= Theta * AlphaR[C];
        if (Devex) {
          double Rq = AlphaR[C] / PivA;
          double Cand = Rq * Rq * WEnter;
          if (Cand > DevexW[C])
            DevexW[C] = Cand;
        }
      }

      applyPivot(LeaveRow, Enter, W, PatW);
      Status[LeaveCol] =
          LeaveAtLower ? VarStatus::AtLower : VarStatus::AtUpper;
      XB[LeaveRow] = EnterVal;
      PrimalD[Enter] = 0.0;
      PrimalD[LeaveCol] = -Theta;
      if (Devex)
        DevexW[LeaveCol] = std::max(WEnter / (PivA * PivA), 1.0);

      if (Phase1) {
        // The leaving column's own phase-1 cost drops from its old state
        // to zero (it is nonbasic now); its reduced cost shifts by the
        // same amount directly.
        double OldS = static_cast<double>(ViolState[LeaveRow]);
        if (OldS != 0.0)
          PrimalD[LeaveCol] -= OldS;
        updatePhase1Rows(LeaveRow);
      }

      ++Iterations;
      met().Pivots.add();
      PricesFresh = false;
      // Rent-or-buy factorization reset: refactorization with the sparse
      // LU costs about one FTRAN, so once the flops burned replaying the
      // eta file exceed a few times the measured factor price, pay it
      // again. The configured interval is only a drift-control ceiling.
      if (ReplayOps >=
              4 * (Base.factorCost() + static_cast<std::size_t>(NumRows)) ||
          SinceRefactor >= std::max(1, Opts.RefactorInterval)) {
        if (!refactorize())
          return RevisedStatus::NumericFail;
        refresh();
      }
    }
  }
}

RevisedStatus RevisedSimplex::solve(const RevisedOptions &Opts) {
  met().ColdSolves.add();
  Iterations = 0;
  UsedBland = Opts.Pricing == LpPricing::Bland;
  // Primal pivots rebuild the dual-state cache below only on success.
  DualStateValid = false;
  installLogicalBasis();
  RevisedStatus S = primal(Opts, /*Phase1=*/true);
  if (S != RevisedStatus::Optimal)
    return S;
  S = primal(Opts, /*Phase1=*/false);
  if (S == RevisedStatus::Optimal) {
    // Phase 2 only declares Optimal with freshly verified prices, so the
    // maintained reduced costs are exact for this basis: publish them as
    // the dual-state cache so branch-and-bound children of a cold-solved
    // root take the plunge fast path instead of an O(m^2) validation.
    DualRedCost = PrimalD;
    LastNonbasic.assign(NumCols, 0.0);
    for (int C = 0; C < NumCols; ++C)
      if (Status[C] != VarStatus::Basic)
        LastNonbasic[C] = nonbasicValue(C);
    DualStateValid = true;
    extract();
  }
  return S;
}

bool RevisedSimplex::plungeFastPathOk(const Basis &Start) const {
  if (!DualStateValid || !Base.valid() || Start.empty() ||
      Start.BasicCol != BasicCol || Start.Status != Status)
    return false;
  // Every nonbasic status must still match its bounds. A mismatch (a bound
  // relaxed to infinity under an AtLower/AtUpper column, or a Free column
  // gaining a finite bound) forces a status flip, which changes that
  // column's dual-feasibility requirement -- only the slow path's
  // validation pass can vouch for the basis then. Branch-and-bound only
  // ever tightens bounds, so plunges never hit this.
  for (int C = 0; C < NumStruct; ++C) {
    switch (Status[C]) {
    case VarStatus::AtLower:
      if (Lower[C] == -Infinity)
        return false;
      break;
    case VarStatus::AtUpper:
      if (Upper[C] == Infinity)
        return false;
      break;
    case VarStatus::Free:
      if (Lower[C] != -Infinity || Upper[C] != Infinity)
        return false;
      break;
    case VarStatus::Basic:
      break;
    }
  }
  return true;
}

RevisedStatus RevisedSimplex::reoptimizeDual(const Basis &Start,
                                             const RevisedOptions &Opts) {
  met().WarmReopts.add();
  Iterations = 0;
  UsedBland = Opts.Pricing == LpPricing::Bland;

  // Plunge fast path: the child reuses the exact basis the engine already
  // holds from a dual solve that ended Optimal (branch-and-bound plunging
  // snapshots the basis right after the parent's solve). The LU, XB, and the
  // reduced costs are all still current, and reduced costs depend only on
  // the basis -- not on bounds -- so the only state the branching touched
  // is the resting value of the tightened nonbasic columns. Diff those
  // against LastNonbasic, adjust XB by one ftran per changed column, and
  // enter the dual loop directly, skipping installBasis, the
  // dual-feasibility validation, and the O(m^2) refresh. Any numeric drift
  // this lets through is caught by the dual stall watchdog (NumericFail ->
  // cold solve below) and by the periodic refactorization.
  if (plungeFastPathOk(Start)) {
    met().WarmFastPath.add();
    for (int C = 0; C < NumStruct; ++C) {
      if (Status[C] == VarStatus::Basic)
        continue;
      double NewVal = nonbasicValue(C);
      double Delta = NewVal - LastNonbasic[C];
      if (Delta == 0.0)
        continue;
      ftran(C, WorkW, &PatW);
      for (int R : PatW)
        XB[R] -= Delta * WorkW[R];
      LastNonbasic[C] = NewVal;
    }
    RevisedStatus S = dual(Opts, /*ReuseDualState=*/true);
    if (S == RevisedStatus::NumericFail) {
      met().WarmColdFallbacks.add();
      return solve(Opts);
    }
    if (S == RevisedStatus::Optimal)
      extract();
    return S;
  }

  if (Start.empty() || !installBasis(Start)) {
    met().WarmColdFallbacks.add();
    return solve(Opts);
  }

  bool Inherited = false;
  if (Start.RedCost.size() == static_cast<size_t>(NumCols)) {
    // The snapshot carries its reduced costs (and devex weights).
    // Reduced costs depend only on basis and costs -- not bounds -- so
    // the parent's vector is exact here; the sign check below is the
    // same validation the recompute path does, minus its O(m^2) BTRAN.
    met().WarmDualInherits.add();
    DualRedCost = Start.RedCost;
    if (Start.DevexW.size() == static_cast<size_t>(NumCols))
      DevexW = Start.DevexW;
    for (int C = 0; C < NumCols; ++C) {
      if (Status[C] == VarStatus::Basic)
        continue;
      double D = DualRedCost[C];
      bool Bad = (Status[C] == VarStatus::AtLower && D < -DualFeasTol) ||
                 (Status[C] == VarStatus::AtUpper && D > DualFeasTol) ||
                 (Status[C] == VarStatus::Free && std::fabs(D) > DualFeasTol);
      if (Bad) {
        met().WarmColdFallbacks.add();
        return solve(Opts);
      }
    }
    computeBasicValues();
    LastNonbasic.assign(NumCols, 0.0);
    for (int C = 0; C < NumCols; ++C)
      if (Status[C] != VarStatus::Basic)
        LastNonbasic[C] = nonbasicValue(C);
    Inherited = true;
  } else {
    // Legacy snapshot without prices: validate dual feasibility the slow
    // way. A basis that was optimal before a bound change keeps its
    // reduced costs, so this only fails on stale snapshots or numeric
    // drift -- fall back to a cold solve.
    std::vector<double> CostB(NumRows, 0.0);
    for (int R = 0; R < NumRows; ++R)
      CostB[R] = Cost[BasicCol[R]];
    computeDuals(CostB, WorkY);
    for (int C = 0; C < NumCols; ++C) {
      if (Status[C] == VarStatus::Basic)
        continue;
      double D = reducedCost(C, WorkY.data());
      bool Bad = (Status[C] == VarStatus::AtLower && D < -DualFeasTol) ||
                 (Status[C] == VarStatus::AtUpper && D > DualFeasTol) ||
                 (Status[C] == VarStatus::Free && std::fabs(D) > DualFeasTol);
      if (Bad) {
        met().WarmColdFallbacks.add();
        return solve(Opts);
      }
    }
  }

  RevisedStatus S = dual(Opts, /*ReuseDualState=*/Inherited);
  if (S == RevisedStatus::NumericFail) {
    met().WarmColdFallbacks.add();
    return solve(Opts);
  }
  if (S == RevisedStatus::Optimal)
    extract();
  return S;
}

RevisedStatus RevisedSimplex::dual(const RevisedOptions &Opts,
                                   bool ReuseDualState) {
  Budget B(Opts, NumRows, NumCols);
  const bool Devex = Opts.Pricing == LpPricing::Devex;
  std::vector<double> CostB(NumRows, 0.0);
  std::vector<double> &Y = WorkY;
  std::vector<double> &W = WorkW;
  std::vector<double> &RedCost = DualRedCost;
  int StallCount = 0;
  double LastViol = Infinity;

  // The cache is only valid again if this run ends Optimal with the basis
  // left untouched afterwards.
  DualStateValid = false;

  // Basic values and reduced costs are maintained *incrementally* across
  // pivots -- the O(m) rank-one updates below -- and recomputed from
  // scratch only here and after each periodic refactorization. This drops
  // two O(m^2) passes per pivot, which is what makes warm node throughput
  // in branch-and-bound scale. With ReuseDualState even the entry refresh
  // is skipped: the caller guarantees XB, RedCost, and LastNonbasic are
  // current for the held basis.
  auto Refresh = [&] {
    met().PricingFullRecomputes.add();
    computeBasicValues();
    for (int R = 0; R < NumRows; ++R)
      CostB[R] = Cost[BasicCol[R]];
    computeDuals(CostB, Y);
    for (int C = 0; C < NumCols; ++C) {
      if (Status[C] == VarStatus::Basic) {
        RedCost[C] = 0.0;
        continue;
      }
      RedCost[C] = reducedCost(C, Y.data());
      LastNonbasic[C] = nonbasicValue(C);
    }
  };
  if (!ReuseDualState) {
    RedCost.assign(NumCols, 0.0);
    LastNonbasic.assign(NumCols, 0.0);
    Refresh();
  }

  for (;;) {
    if (RevisedStatus S = B.check(Iterations); S != RevisedStatus::Optimal)
      return S;

    // Leaving: the basic variable with the largest bound violation.
    int LeaveRow = -1;
    double WorstViol = tol::Feas;
    bool Below = false;
    for (int R = 0; R < NumRows; ++R) {
      int C = BasicCol[R];
      double L = colLower(C), U = colUpper(C);
      double V = 0.0;
      bool IsBelow = false;
      if (XB[R] < L - tol::Feas) {
        V = L - XB[R];
        IsBelow = true;
      } else if (XB[R] > U + tol::Feas) {
        V = XB[R] - U;
      }
      if (V > WorstViol) {
        WorstViol = V;
        LeaveRow = R;
        Below = IsBelow;
      }
    }
    if (LeaveRow < 0) {
      DualStateValid = true;
      return RevisedStatus::Optimal;
    }

    // Pivot-row alphas gathered row-sparsely: BTRAN the leaving row
    // through the eta file, then scatter its nonzeros through the CSR
    // mirror instead of one columnDot per nonbasic column. Columns
    // outside AlphaTouched have alpha exactly zero and can neither enter
    // nor see their reduced cost move.
    btranRow(LeaveRow);
    gatherRowAlphas(RhoVec.data(), PatRho);

    // Entering: dual ratio test over the pivot row. Eligibility depends on
    // which bound the leaving variable violates (see header notes); the
    // minimum ratio |d_j / alpha_j| keeps every other reduced cost dual
    // feasible.
    int Enter = -1;
    double BestRatio = Infinity, EnterAlpha = 0.0;
    for (int C : AlphaTouched) {
      VarStatus St = Status[C];
      if (St == VarStatus::Basic)
        continue;
      double A = AlphaR[C];
      if (std::fabs(A) <= tol::Pivot)
        continue;
      bool Eligible;
      if (Below)
        Eligible = (St == VarStatus::AtLower && A < 0.0) ||
                   (St == VarStatus::AtUpper && A > 0.0) ||
                   St == VarStatus::Free;
      else
        Eligible = (St == VarStatus::AtLower && A > 0.0) ||
                   (St == VarStatus::AtUpper && A < 0.0) ||
                   St == VarStatus::Free;
      if (!Eligible)
        continue;
      double Ratio = std::fabs(RedCost[C]) / std::fabs(A);
      if (Ratio < BestRatio - 1e-12 ||
          (Ratio < BestRatio + 1e-12 &&
           (Enter < 0 || std::fabs(A) > std::fabs(EnterAlpha)))) {
        BestRatio = Ratio;
        Enter = C;
        EnterAlpha = A;
      }
    }
    if (Enter < 0)
      return RevisedStatus::Infeasible; // Farkas: no entering column exists.

    ftran(Enter, W, &PatW);
    if (std::fabs(W[LeaveRow]) <= tol::Pivot)
      return RevisedStatus::NumericFail;
    // The gathered alpha and the FTRAN pivot element are the same number
    // computed two ways; a mismatch means the factorization drifted.
    if (std::fabs(AlphaR[Enter] - W[LeaveRow]) >
        1e-6 * (1.0 + std::fabs(W[LeaveRow])))
      return RevisedStatus::NumericFail;

    int LeaveCol = BasicCol[LeaveRow];

    // Incremental primal update: pushing the entering variable by T lands
    // the leaving variable exactly on its violated bound.
    double VOut = Below ? colLower(LeaveCol) : colUpper(LeaveCol);
    double T = (XB[LeaveRow] - VOut) / W[LeaveRow];
    double EnterVal = nonbasicValue(Enter) + T;
    for (int R : PatW)
      XB[R] -= T * W[R];

    // Incremental dual update: y' = y + theta * rho_r zeroes the entering
    // reduced cost, shifts every other one by -theta * alpha_j, and leaves
    // the departing variable at -theta. Devex reference weights ride the
    // same sparse loop so a later primal or child solve inherits them.
    double Theta = RedCost[Enter] / AlphaR[Enter];
    double WEnter = DevexW[Enter];
    double PivA = W[LeaveRow];
    for (int C : AlphaTouched) {
      if (Status[C] == VarStatus::Basic)
        continue;
      if (C != Enter)
        RedCost[C] -= Theta * AlphaR[C];
      if (Devex) {
        double Rq = AlphaR[C] / PivA;
        double Cand = Rq * Rq * WEnter;
        if (Cand > DevexW[C])
          DevexW[C] = Cand;
      }
    }

    applyPivot(LeaveRow, Enter, W, PatW);
    Status[LeaveCol] = Below ? VarStatus::AtLower : VarStatus::AtUpper;
    XB[LeaveRow] = EnterVal;
    RedCost[Enter] = 0.0;
    RedCost[LeaveCol] = -Theta;
    if (Devex)
      DevexW[LeaveCol] = std::max(WEnter / (PivA * PivA), 1.0);
    LastNonbasic[LeaveCol] = VOut;
    ++Iterations;
    met().Pivots.add();
    // Same rent-or-buy factorization reset as the primal loop: refactor
    // once eta replay has burned a few times the measured factor price.
    if (ReplayOps >=
            4 * (Base.factorCost() + static_cast<std::size_t>(NumRows)) ||
        SinceRefactor >= std::max(1, Opts.RefactorInterval)) {
      if (!refactorize())
        return RevisedStatus::NumericFail;
      Refresh();
    }

    // Stall watchdog: the worst violation must shrink over time; dual
    // degeneracy can plateau briefly, persistent plateaus are numeric
    // trouble and the caller's cold-solve fallback handles them.
    if (WorstViol >= LastViol - 1e-12) {
      if (++StallCount >
          4 * Opts.StallThreshold * std::max(1, NumRows / 256))
        return RevisedStatus::NumericFail;
    } else {
      StallCount = 0;
      LastViol = WorstViol;
    }
  }
}

void RevisedSimplex::tableauRow(int P, std::vector<int> &OutCols,
                                std::vector<double> &OutVals) {
  btranRow(P);
  gatherRowAlphas(RhoVec.data(), PatRho);
  OutCols.clear();
  OutVals.clear();
  OutCols.reserve(AlphaTouched.size());
  OutVals.reserve(AlphaTouched.size());
  for (int C : AlphaTouched) {
    if (AlphaR[C] == 0.0)
      continue;
    OutCols.push_back(C);
    OutVals.push_back(AlphaR[C]);
  }
}

Basis RevisedSimplex::basis() const {
  Basis B;
  B.Status = Status;
  B.BasicCol = BasicCol;
  // Reduced costs depend only on the basis and costs, so a snapshot taken
  // while the dual-state cache is valid lets a warm child skip the O(m^2)
  // dual-feasibility recompute. Devex weights are heuristic state -- any
  // values work, inherited ones just price better.
  if (DualStateValid)
    B.RedCost = DualRedCost;
  B.DevexW = DevexW;
  return B;
}

Solution aqua::lp::solveRevisedSimplex(const Model &M,
                                       const SolveOptions &Opts) {
  return solveRevisedSimplex(M, Opts, nullptr, nullptr);
}

Solution aqua::lp::solveRevisedSimplex(const Model &M, const SolveOptions &Opts,
                                       const Basis *Warm,
                                       std::shared_ptr<const Basis> *Captured) {
  WallTimer Timer;
  Solution Sol;
  // The engine's working set is O(nnz) -- the sparse LU plus the eta file
  // -- so no memory gate is needed: models the dense tableau would refuse
  // as TooLarge solve comfortably here.
  RevisedSimplex RS(M);
  RevisedOptions RO;
  RO.MaxIterations = Opts.MaxIterations;
  RO.TimeLimitSec = Opts.TimeLimitSec;
  RO.StallThreshold = Opts.StallThreshold;
  RO.Pricing = Opts.Pricing;
  RevisedStatus S = Warm ? RS.reoptimizeDual(*Warm, RO) : RS.solve(RO);
  Sol.Iterations = RS.iterations();
  if (S == RevisedStatus::NumericFail) {
    Solution Dense = solveSimplex(M, Opts);
    Dense.Iterations += Sol.Iterations;
    Dense.Seconds = Timer.seconds();
    return Dense;
  }
  Sol.Status = toSolveStatus(S);
  Sol.Seconds = Timer.seconds();
  if (Sol.Status == SolveStatus::Optimal) {
    Sol.Values = RS.values();
    Sol.Objective = RS.objective();
    if (Captured)
      *Captured = std::make_shared<Basis>(RS.basis());
  }
  return Sol;
}

void RevisedSimplex::extract() {
  computeBasicValues();
  for (int V = 0; V < NumStruct; ++V)
    StructValues[V] =
        Status[V] == VarStatus::Basic ? XB[RowOfBasic[V]] : nonbasicValue(V);
  // Clamp basic structurals onto their bounds within feasibility noise so
  // downstream exact checks (integral snapping, verification) see clean
  // values.
  for (int V = 0; V < NumStruct; ++V) {
    if (StructValues[V] < Lower[V] && StructValues[V] > Lower[V] - tol::Feas)
      StructValues[V] = Lower[V];
    if (StructValues[V] > Upper[V] && StructValues[V] < Upper[V] + tol::Feas)
      StructValues[V] = Upper[V];
  }
  Objective = M.objectiveValue(StructValues);
}
