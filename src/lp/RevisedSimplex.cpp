//===- RevisedSimplex.cpp - Bounded-variable revised simplex ----------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Implementation notes
// --------------------
// Standard computational form: every model row becomes an equality
//   a_i . x  +  s_i  =  rhs_i
// where s_i is the row's logical column with bounds derived from the row
// kind (LE: [0,inf), GE: (-inf,0], EQ: [0,0]). The basis always has
// dimension m = numRows; finite variable bounds never add rows.
//
// The basis inverse is kept dense (m x m) and updated in place on every
// pivot (product-form update); a full Gauss-Jordan refactorization runs
// every RefactorInterval pivots to shed accumulated drift. Basic values are
// recomputed from the inverse each iteration -- an O(m^2) term that the
// dual pricing already pays, bought back many times over by the warm-start
// node throughput in branch-and-bound.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/RevisedSimplex.h"

#include "aqua/lp/Tolerances.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Timer.h"
#include "aqua/support/Fatal.h"

#include <algorithm>
#include <cmath>

using namespace aqua;
using namespace aqua::lp;

namespace {

/// Global-registry instruments, resolved once. Pivots are counted at the
/// pivot sites (one relaxed increment each) rather than flushed from the
/// member counter, so warm-start fallback chains never double- or
/// under-count.
struct SimplexMetrics {
  obs::Counter &Pivots = obs::metrics().counter("lp.pivots");
  obs::Counter &Refactorizations =
      obs::metrics().counter("lp.refactorizations");
  obs::Counter &ColdSolves = obs::metrics().counter("lp.cold_solves");
  obs::Counter &WarmReopts = obs::metrics().counter("lp.warm_reopts");
  obs::Counter &WarmFastPath = obs::metrics().counter("lp.warm_fast_path");
  obs::Counter &WarmColdFallbacks =
      obs::metrics().counter("lp.warm_cold_fallbacks");
};

SimplexMetrics &met() {
  static SimplexMetrics M;
  return M;
}

} // namespace


const char *aqua::lp::revisedStatusName(RevisedStatus S) {
  switch (S) {
  case RevisedStatus::Optimal:
    return "optimal";
  case RevisedStatus::Infeasible:
    return "infeasible";
  case RevisedStatus::Unbounded:
    return "unbounded";
  case RevisedStatus::IterationLimit:
    return "iteration-limit";
  case RevisedStatus::TimeLimit:
    return "time-limit";
  case RevisedStatus::NumericFail:
    return "numeric-fail";
  }
  AQUA_UNREACHABLE("bad RevisedStatus");
}

SolveStatus aqua::lp::toSolveStatus(RevisedStatus S) {
  switch (S) {
  case RevisedStatus::Optimal:
    return SolveStatus::Optimal;
  case RevisedStatus::Infeasible:
    return SolveStatus::Infeasible;
  case RevisedStatus::Unbounded:
    return SolveStatus::Unbounded;
  case RevisedStatus::IterationLimit:
  case RevisedStatus::NumericFail:
    return SolveStatus::IterationLimit;
  case RevisedStatus::TimeLimit:
    return SolveStatus::TimeLimit;
  }
  AQUA_UNREACHABLE("bad RevisedStatus");
}

namespace {

/// Slack accepted on reduced-cost signs when validating a warm-start basis
/// for the dual simplex; wider than tol::Cost because the duals come from
/// a refactorized copy of a basis optimized elsewhere.
constexpr double DualFeasTol = 1e-7;

} // namespace

RevisedSimplex::RevisedSimplex(const Model &Model,
                               std::shared_ptr<const SparseMatrix> Shared)
    : M(Model), Cols(std::move(Shared)) {
  if (!Cols)
    Cols = std::make_shared<const SparseMatrix>(M);
  NumRows = M.numRows();
  NumStruct = M.numVars();
  NumCols = NumStruct + NumRows;

  double Sign = M.isMaximize() ? -1.0 : 1.0;
  Cost.assign(NumCols, 0.0);
  Lower.resize(NumStruct);
  Upper.resize(NumStruct);
  for (VarId V = 0; V < NumStruct; ++V) {
    Cost[V] = Sign * M.var(V).ObjCoef;
    Lower[V] = M.var(V).Lower;
    Upper[V] = M.var(V).Upper;
  }
  RootLower = Lower;
  RootUpper = Upper;

  LogLower.assign(NumRows, 0.0);
  LogUpper.assign(NumRows, 0.0);
  Rhs.assign(NumRows, 0.0);
  for (RowId R = 0; R < NumRows; ++R) {
    Rhs[R] = M.row(R).Rhs;
    switch (M.row(R).Kind) {
    case RowKind::LE:
      LogLower[R] = 0.0;
      LogUpper[R] = Infinity;
      break;
    case RowKind::GE:
      LogLower[R] = -Infinity;
      LogUpper[R] = 0.0;
      break;
    case RowKind::EQ:
      LogLower[R] = LogUpper[R] = 0.0;
      break;
    }
  }

  Status.assign(NumCols, VarStatus::AtLower);
  BasicCol.assign(NumRows, -1);
  RowOfBasic.assign(NumCols, -1);
  Binv.assign(static_cast<size_t>(NumRows) * NumRows, 0.0);
  XB.assign(NumRows, 0.0);
  WorkY.assign(NumRows, 0.0);
  WorkW.assign(NumRows, 0.0);
  WorkC.assign(NumRows, 0.0);
  StructValues.assign(NumStruct, 0.0);
}

double RevisedSimplex::colLower(int Col) const {
  return Col < NumStruct ? Lower[Col] : LogLower[Col - NumStruct];
}

double RevisedSimplex::colUpper(int Col) const {
  return Col < NumStruct ? Upper[Col] : LogUpper[Col - NumStruct];
}

double RevisedSimplex::nonbasicValue(int Col) const {
  switch (Status[Col]) {
  case VarStatus::AtLower:
    return colLower(Col);
  case VarStatus::AtUpper:
    return colUpper(Col);
  case VarStatus::Free:
    return 0.0;
  case VarStatus::Basic:
    break;
  }
  AQUA_UNREACHABLE("nonbasicValue on basic column");
}

double RevisedSimplex::columnDot(int Col, const double *Y) const {
  if (Col < NumStruct)
    return Cols->dotColumn(Col, Y);
  return Y[Col - NumStruct];
}

void RevisedSimplex::ftran(int Col, std::vector<double> &W) const {
  W.assign(NumRows, 0.0);
  if (Col < NumStruct) {
    for (const SparseMatrix::Entry *E = Cols->colBegin(Col),
                                   *End = Cols->colEnd(Col);
         E != End; ++E) {
      if (E->Value == 0.0)
        continue;
      const double *BCol = &Binv[static_cast<size_t>(E->Row)];
      for (int I = 0; I < NumRows; ++I)
        W[I] += E->Value * BCol[static_cast<size_t>(I) * NumRows];
    }
  } else {
    int R = Col - NumStruct;
    for (int I = 0; I < NumRows; ++I)
      W[I] = Binv[static_cast<size_t>(I) * NumRows + R];
  }
}

void RevisedSimplex::installLogicalBasis() {
  for (int C = 0; C < NumCols; ++C) {
    if (C >= NumStruct) {
      Status[C] = VarStatus::Basic;
      continue;
    }
    if (Lower[C] != -Infinity)
      Status[C] = VarStatus::AtLower;
    else if (Upper[C] != Infinity)
      Status[C] = VarStatus::AtUpper;
    else
      Status[C] = VarStatus::Free;
  }
  std::fill(RowOfBasic.begin(), RowOfBasic.end(), -1);
  for (int R = 0; R < NumRows; ++R) {
    BasicCol[R] = NumStruct + R;
    RowOfBasic[NumStruct + R] = R;
  }
  std::fill(Binv.begin(), Binv.end(), 0.0);
  for (int R = 0; R < NumRows; ++R)
    Binv[static_cast<size_t>(R) * NumRows + R] = 1.0;
}

bool RevisedSimplex::installBasis(const Basis &B) {
  if (static_cast<int>(B.Status.size()) != NumCols ||
      static_cast<int>(B.BasicCol.size()) != NumRows)
    return false;
  // Plunging fast path: when the incoming basis matrix equals the one the
  // engine already holds (a child reusing its parent's basis right after
  // the parent solved), Binv is still valid -- skip the O(m^3) refactorize.
  bool SameBasis = !Binv.empty() && B.BasicCol == BasicCol;
  Status = B.Status;
  BasicCol = B.BasicCol;
  std::fill(RowOfBasic.begin(), RowOfBasic.end(), -1);
  for (int R = 0; R < NumRows; ++R) {
    int C = BasicCol[R];
    if (C < 0 || C >= NumCols || RowOfBasic[C] >= 0)
      return false;
    RowOfBasic[C] = R;
    if (Status[C] != VarStatus::Basic)
      return false;
  }
  // Sanitize nonbasic statuses against the *current* bounds: branching may
  // have given a finite bound to a column the parent held Free, or removed
  // nothing (bounds only tighten), but a stale status must never reference
  // an infinite bound.
  for (int C = 0; C < NumCols; ++C) {
    if (Status[C] == VarStatus::Basic)
      continue;
    double L = colLower(C), U = colUpper(C);
    switch (Status[C]) {
    case VarStatus::AtLower:
      if (L == -Infinity)
        Status[C] = U != Infinity ? VarStatus::AtUpper : VarStatus::Free;
      break;
    case VarStatus::AtUpper:
      if (U == Infinity)
        Status[C] = L != -Infinity ? VarStatus::AtLower : VarStatus::Free;
      break;
    case VarStatus::Free:
      if (L != -Infinity)
        Status[C] = VarStatus::AtLower;
      else if (U != Infinity)
        Status[C] = VarStatus::AtUpper;
      break;
    case VarStatus::Basic:
      break;
    }
  }
  return SameBasis || refactorize();
}

bool RevisedSimplex::refactorize() {
  if (NumRows == 0)
    return true;
  met().Refactorizations.add();
  // Every basic *logical* column is an identity column, so the basis has
  // the block form (after permuting logical-covered rows L first)
  //
  //     B ~ [ I  S_L ]        B^-1 ~ [ I  -S_L * S_J^-1 ]
  //         [ 0  S_J ]               [ 0       S_J^-1   ]
  //
  // and only the k x k structural kernel S_J needs a dense inversion --
  // k is the number of basic structural columns, typically well below m.
  size_t N = static_cast<size_t>(NumRows);

  // Partition: PosOfLRow[l] = basis position holding logical e_l (or -1);
  // SPos = positions holding structural columns; JRows = rows not covered
  // by a basic logical, indexed for the kernel.
  std::vector<int> PosOfLRow(NumRows, -1);
  std::vector<int> SPos;
  SPos.reserve(NumRows);
  for (int P = 0; P < NumRows; ++P) {
    int C = BasicCol[P];
    if (C >= NumStruct) {
      int L = C - NumStruct;
      if (PosOfLRow[L] >= 0)
        return false; // Duplicate logical: singular.
      PosOfLRow[L] = P;
    } else {
      SPos.push_back(P);
    }
  }
  int NumK = static_cast<int>(SPos.size());
  size_t K = static_cast<size_t>(NumK);
  std::vector<int> JRows;
  JRows.reserve(K);
  std::vector<int> JIndexOfRow(NumRows, -1);
  for (int R = 0; R < NumRows; ++R)
    if (PosOfLRow[R] < 0) {
      JIndexOfRow[R] = static_cast<int>(JRows.size());
      JRows.push_back(R);
    }
  if (JRows.size() != K)
    return false; // Row/column count mismatch: singular.

  // Kernel[a][b] = A_{c(SPos[b])}[JRows[a]], inverted in place by
  // Gauss-Jordan with partial pivoting (the [S_J | I] -> [I | S_J^-1]
  // sweep, fused into one k x 2k scratch would gain little -- k^2 fits in
  // cache for the model sizes this engine targets).
  std::vector<double> Ker(K * K, 0.0);
  for (size_t B = 0; B < K; ++B) {
    int C = BasicCol[SPos[B]];
    for (const SparseMatrix::Entry *E = Cols->colBegin(C),
                                   *End = Cols->colEnd(C);
         E != End; ++E)
      if (JIndexOfRow[E->Row] >= 0)
        Ker[static_cast<size_t>(JIndexOfRow[E->Row]) * K + B] += E->Value;
  }
  std::vector<double> Kinv(K * K, 0.0);
  for (size_t I = 0; I < K; ++I)
    Kinv[I * K + I] = 1.0;
  for (size_t Col = 0; Col < K; ++Col) {
    size_t Piv = Col;
    double Best = std::fabs(Ker[Col * K + Col]);
    for (size_t I = Col + 1; I < K; ++I) {
      double V = std::fabs(Ker[I * K + Col]);
      if (V > Best) {
        Best = V;
        Piv = I;
      }
    }
    if (Best <= tol::Pivot)
      return false; // Singular kernel.
    if (Piv != Col) {
      for (size_t J = 0; J < K; ++J) {
        std::swap(Ker[Piv * K + J], Ker[Col * K + J]);
        std::swap(Kinv[Piv * K + J], Kinv[Col * K + J]);
      }
    }
    double PivInv = 1.0 / Ker[Col * K + Col];
    for (size_t J = 0; J < K; ++J) {
      Ker[Col * K + J] *= PivInv;
      Kinv[Col * K + J] *= PivInv;
    }
    for (size_t I = 0; I < K; ++I) {
      if (I == Col)
        continue;
      double F = Ker[I * K + Col];
      if (F == 0.0)
        continue;
      for (size_t J = 0; J < K; ++J) {
        Ker[I * K + J] -= F * Ker[Col * K + J];
        Kinv[I * K + J] -= F * Kinv[Col * K + J];
      }
    }
  }

  // Assemble B^-1. Structural position SPos[b] row: S_J^-1 scattered onto
  // the J columns. Logical position PosOfLRow[l] row: identity at l plus
  // the -S_L * S_J^-1 correction, accumulated column-sparse from the basic
  // structural columns' entries in L rows.
  std::fill(Binv.begin(), Binv.end(), 0.0);
  for (size_t B = 0; B < K; ++B) {
    double *Row = &Binv[static_cast<size_t>(SPos[B]) * N];
    const double *KRow = &Kinv[B * K];
    for (size_t A = 0; A < K; ++A)
      Row[JRows[A]] = KRow[A];
  }
  for (int L = 0; L < NumRows; ++L) {
    int P = PosOfLRow[L];
    if (P >= 0)
      Binv[static_cast<size_t>(P) * N + L] = 1.0;
  }
  for (size_t T = 0; T < K; ++T) {
    int C = BasicCol[SPos[T]];
    const double *KRow = &Kinv[T * K];
    for (const SparseMatrix::Entry *E = Cols->colBegin(C),
                                   *End = Cols->colEnd(C);
         E != End; ++E) {
      int P = PosOfLRow[E->Row];
      if (P < 0 || E->Value == 0.0)
        continue;
      double V = E->Value;
      double *Row = &Binv[static_cast<size_t>(P) * N];
      for (size_t B = 0; B < K; ++B)
        Row[JRows[B]] -= V * KRow[B];
    }
  }
  SinceRefactor = 0;
  return true;
}

void RevisedSimplex::computeBasicValues() {
  // XB = Binv * (Rhs - sum_j A_j * x_j over nonbasic j with x_j != 0).
  WorkC = Rhs;
  for (int C = 0; C < NumCols; ++C) {
    if (Status[C] == VarStatus::Basic)
      continue;
    double X = nonbasicValue(C);
    if (X == 0.0)
      continue;
    if (C < NumStruct) {
      for (const SparseMatrix::Entry *E = Cols->colBegin(C),
                                     *End = Cols->colEnd(C);
           E != End; ++E)
        WorkC[E->Row] -= E->Value * X;
    } else {
      WorkC[C - NumStruct] -= X;
    }
  }
  for (int I = 0; I < NumRows; ++I) {
    const double *Row = &Binv[static_cast<size_t>(I) * NumRows];
    double Sum = 0.0;
    for (int K = 0; K < NumRows; ++K)
      Sum += Row[K] * WorkC[K];
    XB[I] = Sum;
  }
}

void RevisedSimplex::computeDuals(const std::vector<double> &CostB,
                                  std::vector<double> &Y) const {
  Y.assign(NumRows, 0.0);
  for (int I = 0; I < NumRows; ++I) {
    double C = CostB[I];
    if (C == 0.0)
      continue;
    const double *Row = &Binv[static_cast<size_t>(I) * NumRows];
    for (int K = 0; K < NumRows; ++K)
      Y[K] += C * Row[K];
  }
}

double RevisedSimplex::reducedCost(int Col, const double *Y) const {
  return Cost[Col] - columnDot(Col, Y);
}

void RevisedSimplex::applyPivot(int LeaveRow, int EnterCol,
                                const std::vector<double> &W) {
  double PivVal = W[LeaveRow];
  double Inv = 1.0 / PivVal;
  double *PRow = &Binv[static_cast<size_t>(LeaveRow) * NumRows];
  for (int K = 0; K < NumRows; ++K)
    PRow[K] *= Inv;
  for (int I = 0; I < NumRows; ++I) {
    if (I == LeaveRow)
      continue;
    double F = W[I];
    if (F == 0.0)
      continue;
    double *RowI = &Binv[static_cast<size_t>(I) * NumRows];
    // The snap-to-zero keeps B^-1 rows sparse, which the F == 0.0 skip
    // above converts directly into skipped rows on later pivots; dropping
    // it measures ~35% slower despite the cleaner inner loop.
    for (int K = 0; K < NumRows; ++K) {
      RowI[K] -= F * PRow[K];
      if (std::fabs(RowI[K]) < tol::Zero)
        RowI[K] = 0.0;
    }
  }
  int OldCol = BasicCol[LeaveRow];
  RowOfBasic[OldCol] = -1;
  BasicCol[LeaveRow] = EnterCol;
  RowOfBasic[EnterCol] = LeaveRow;
  Status[EnterCol] = VarStatus::Basic;
  ++SinceRefactor;
}

double RevisedSimplex::infeasibilitySum() const {
  double Sum = 0.0;
  for (int R = 0; R < NumRows; ++R) {
    int C = BasicCol[R];
    double L = colLower(C), U = colUpper(C);
    if (XB[R] < L)
      Sum += L - XB[R];
    else if (XB[R] > U)
      Sum += XB[R] - U;
  }
  return Sum;
}

namespace {

/// Internal per-solve budget tracker. The safety cap bounds pivots even
/// when the caller asked for "unlimited": a cycling pivot sequence must
/// surface as NumericFail, never as a hang.
struct Budget {
  const RevisedOptions &Opts;
  WallTimer Timer;
  std::int64_t SafetyCap;

  Budget(const RevisedOptions &Opts, int Rows, int Cols)
      : Opts(Opts),
        SafetyCap(10000 + 500LL * (static_cast<std::int64_t>(Rows) + Cols)) {}

  /// Returns the status that should abort the loop, or Optimal to keep
  /// going.
  RevisedStatus check(std::int64_t Iterations) {
    if (Opts.MaxIterations > 0 && Iterations >= Opts.MaxIterations)
      return RevisedStatus::IterationLimit;
    if (Iterations >= SafetyCap)
      return RevisedStatus::NumericFail;
    if (Opts.TimeLimitSec > 0.0 && (Iterations & 63) == 0 &&
        Timer.seconds() > Opts.TimeLimitSec)
      return RevisedStatus::TimeLimit;
    return RevisedStatus::Optimal;
  }
};

} // namespace

RevisedStatus RevisedSimplex::primal(const RevisedOptions &Opts, bool Phase1) {
  Budget B(Opts, NumRows, NumCols);
  bool UseBland = false;
  int StallCount = 0;
  double LastMerit = Infinity; // Phase-1 infeasibility or phase-2 objective.
  std::vector<double> CostB(NumRows, 0.0);
  std::vector<double> &Y = WorkY;
  std::vector<double> &W = WorkW;

  // XB is maintained incrementally across pivots (rank-one updates below)
  // and recomputed from scratch only here and after each periodic
  // refactorization, saving an O(m^2) pass per iteration.
  computeBasicValues();

  for (;;) {
    if (RevisedStatus S = B.check(Iterations); S != RevisedStatus::Optimal)
      return S;

    // Build the iteration's cost vector over basic columns; the phase
    // merit (infeasibility sum or objective) doubles as the stall metric.
    double Merit = 0.0;
    if (Phase1) {
      for (int R = 0; R < NumRows; ++R) {
        int C = BasicCol[R];
        double L = colLower(C), U = colUpper(C);
        if (XB[R] < L - tol::Feas) {
          CostB[R] = -1.0;
          Merit += L - XB[R];
        } else if (XB[R] > U + tol::Feas) {
          CostB[R] = 1.0;
          Merit += XB[R] - U;
        } else {
          CostB[R] = 0.0;
        }
      }
      if (Merit <= tol::Phase1)
        return RevisedStatus::Optimal; // Feasible: phase 1 done.
    } else {
      for (int R = 0; R < NumRows; ++R) {
        CostB[R] = Cost[BasicCol[R]];
        Merit += CostB[R] * XB[R];
      }
      for (int C = 0; C < NumCols; ++C)
        if (Status[C] != VarStatus::Basic && Cost[C] != 0.0)
          Merit += Cost[C] * nonbasicValue(C);
    }
    if (Merit < LastMerit - 1e-12) {
      StallCount = 0;
      UseBland = false;
      LastMerit = Merit;
    } else {
      if (++StallCount > Opts.StallThreshold)
        UseBland = true;
      if (StallCount > 4 * Opts.StallThreshold)
        return RevisedStatus::NumericFail;
    }
    computeDuals(CostB, Y);

    // Price nonbasic columns. In phase 1 nonbasic costs are zero.
    int Enter = -1;
    double EnterDir = 0.0, BestScore = tol::Cost;
    for (int C = 0; C < NumCols; ++C) {
      VarStatus St = Status[C];
      if (St == VarStatus::Basic)
        continue;
      double D = (Phase1 ? 0.0 : Cost[C]) - columnDot(C, Y.data());
      double Dir = 0.0;
      if (St == VarStatus::AtLower && D < -tol::Cost)
        Dir = 1.0;
      else if (St == VarStatus::AtUpper && D > tol::Cost)
        Dir = -1.0;
      else if (St == VarStatus::Free && std::fabs(D) > tol::Cost)
        Dir = D < 0.0 ? 1.0 : -1.0;
      if (Dir == 0.0)
        continue;
      if (UseBland) {
        Enter = C;
        EnterDir = Dir;
        break;
      }
      if (std::fabs(D) > BestScore) {
        BestScore = std::fabs(D);
        Enter = C;
        EnterDir = Dir;
      }
    }

    if (Enter < 0) {
      if (Phase1)
        return RevisedStatus::Infeasible; // Infeasibility minimized but > 0.
      return RevisedStatus::Optimal;
    }

    ftran(Enter, W);

    // Bounded-variable ratio test. The entering column moves by t >= 0 in
    // direction EnterDir; basic row R changes by -t * Alpha with
    // Alpha = EnterDir * W[R].
    double EnterL = colLower(Enter), EnterU = colUpper(Enter);
    double OwnRange = (EnterL != -Infinity && EnterU != Infinity)
                          ? EnterU - EnterL
                          : Infinity;
    double BestT = OwnRange;
    int LeaveRow = -1;
    double LeavePivot = 0.0;
    bool LeaveAtLower = false;
    for (int R = 0; R < NumRows; ++R) {
      double Alpha = EnterDir * W[R];
      if (std::fabs(Alpha) <= tol::Pivot)
        continue;
      int C = BasicCol[R];
      double L = colLower(C), U = colUpper(C);
      double T = Infinity;
      bool AtL = false;
      if (Phase1 && XB[R] < L - tol::Feas) {
        // Infeasible below: blocks only when rising onto its lower bound.
        if (Alpha < 0.0) {
          T = (XB[R] - L) / Alpha;
          AtL = true;
        }
      } else if (Phase1 && XB[R] > U + tol::Feas) {
        // Infeasible above: blocks only when falling onto its upper bound.
        if (Alpha > 0.0) {
          T = (XB[R] - U) / Alpha;
          AtL = false;
        }
      } else if (Alpha > 0.0) {
        if (L != -Infinity) {
          T = (XB[R] - L) / Alpha;
          AtL = true;
        }
      } else {
        if (U != Infinity) {
          T = (XB[R] - U) / Alpha;
          AtL = false;
        }
      }
      if (T == Infinity)
        continue;
      if (T < 0.0)
        T = 0.0; // Degenerate: already at (or past) the bound.
      if (T < BestT - 1e-12 ||
          (T < BestT + 1e-12 &&
           (LeaveRow < 0 || std::fabs(Alpha) > std::fabs(LeavePivot)))) {
        BestT = T;
        LeaveRow = R;
        LeavePivot = Alpha;
        LeaveAtLower = AtL;
      }
    }

    if (LeaveRow < 0) {
      if (BestT == Infinity) {
        // No block anywhere. In phase 2 that is unboundedness; in phase 1
        // it cannot happen (the infeasibility would fall below zero), so
        // treat it as numeric trouble.
        return Phase1 ? RevisedStatus::NumericFail : RevisedStatus::Unbounded;
      }
      // Bound flip: the entering column traverses its whole range.
      Status[Enter] = Status[Enter] == VarStatus::AtLower ? VarStatus::AtUpper
                                                          : VarStatus::AtLower;
      for (int R = 0; R < NumRows; ++R)
        XB[R] -= EnterDir * OwnRange * W[R];
      ++Iterations;
      met().Pivots.add();
    } else {
      int LeaveCol = BasicCol[LeaveRow];
      double EnterVal = nonbasicValue(Enter) + EnterDir * BestT;
      for (int R = 0; R < NumRows; ++R)
        XB[R] -= EnterDir * BestT * W[R];
      applyPivot(LeaveRow, Enter, W);
      Status[LeaveCol] =
          LeaveAtLower ? VarStatus::AtLower : VarStatus::AtUpper;
      XB[LeaveRow] = EnterVal;
      ++Iterations;
      met().Pivots.add();
      if (SinceRefactor >= std::max(1, Opts.RefactorInterval)) {
        if (!refactorize())
          return RevisedStatus::NumericFail;
        computeBasicValues();
      }
    }
  }
}

RevisedStatus RevisedSimplex::solve(const RevisedOptions &Opts) {
  met().ColdSolves.add();
  Iterations = 0;
  // Primal pivots do not maintain the dual-state cache.
  DualStateValid = false;
  installLogicalBasis();
  RevisedStatus S = primal(Opts, /*Phase1=*/true);
  if (S != RevisedStatus::Optimal)
    return S;
  S = primal(Opts, /*Phase1=*/false);
  if (S == RevisedStatus::Optimal)
    extract();
  return S;
}

bool RevisedSimplex::plungeFastPathOk(const Basis &Start) const {
  if (!DualStateValid || Binv.empty() || Start.empty() ||
      Start.BasicCol != BasicCol || Start.Status != Status)
    return false;
  // Every nonbasic status must still match its bounds. A mismatch (a bound
  // relaxed to infinity under an AtLower/AtUpper column, or a Free column
  // gaining a finite bound) forces a status flip, which changes that
  // column's dual-feasibility requirement -- only the slow path's
  // validation pass can vouch for the basis then. Branch-and-bound only
  // ever tightens bounds, so plunges never hit this.
  for (int C = 0; C < NumStruct; ++C) {
    switch (Status[C]) {
    case VarStatus::AtLower:
      if (Lower[C] == -Infinity)
        return false;
      break;
    case VarStatus::AtUpper:
      if (Upper[C] == Infinity)
        return false;
      break;
    case VarStatus::Free:
      if (Lower[C] != -Infinity || Upper[C] != Infinity)
        return false;
      break;
    case VarStatus::Basic:
      break;
    }
  }
  return true;
}

RevisedStatus RevisedSimplex::reoptimizeDual(const Basis &Start,
                                             const RevisedOptions &Opts) {
  met().WarmReopts.add();
  Iterations = 0;

  // Plunge fast path: the child reuses the exact basis the engine already
  // holds from a dual solve that ended Optimal (branch-and-bound plunging
  // snapshots the basis right after the parent's solve). Binv, XB, and the
  // reduced costs are all still current, and reduced costs depend only on
  // the basis -- not on bounds -- so the only state the branching touched
  // is the resting value of the tightened nonbasic columns. Diff those
  // against LastNonbasic, adjust XB by one ftran per changed column, and
  // enter the dual loop directly, skipping installBasis, the
  // dual-feasibility validation, and the O(m^2) refresh. Any numeric drift
  // this lets through is caught by the dual stall watchdog (NumericFail ->
  // cold solve below) and by the periodic refactorization.
  if (plungeFastPathOk(Start)) {
    met().WarmFastPath.add();
    for (int C = 0; C < NumStruct; ++C) {
      if (Status[C] == VarStatus::Basic)
        continue;
      double NewVal = nonbasicValue(C);
      double Delta = NewVal - LastNonbasic[C];
      if (Delta == 0.0)
        continue;
      ftran(C, WorkW);
      for (int R = 0; R < NumRows; ++R)
        XB[R] -= Delta * WorkW[R];
      LastNonbasic[C] = NewVal;
    }
    RevisedStatus S = dual(Opts, /*ReuseDualState=*/true);
    if (S == RevisedStatus::NumericFail) {
      met().WarmColdFallbacks.add();
      return solve(Opts);
    }
    if (S == RevisedStatus::Optimal)
      extract();
    return S;
  }

  if (Start.empty() || !installBasis(Start)) {
    met().WarmColdFallbacks.add();
    return solve(Opts);
  }

  // Validate dual feasibility of the start basis; a basis that was optimal
  // before a bound change keeps its reduced costs, so this only fails on
  // stale snapshots or numeric drift -- fall back to a cold solve.
  std::vector<double> CostB(NumRows, 0.0);
  for (int R = 0; R < NumRows; ++R)
    CostB[R] = Cost[BasicCol[R]];
  computeDuals(CostB, WorkY);
  for (int C = 0; C < NumCols; ++C) {
    if (Status[C] == VarStatus::Basic)
      continue;
    double D = reducedCost(C, WorkY.data());
    bool Bad = (Status[C] == VarStatus::AtLower && D < -DualFeasTol) ||
               (Status[C] == VarStatus::AtUpper && D > DualFeasTol) ||
               (Status[C] == VarStatus::Free && std::fabs(D) > DualFeasTol);
    if (Bad) {
      met().WarmColdFallbacks.add();
      return solve(Opts);
    }
  }

  RevisedStatus S = dual(Opts, /*ReuseDualState=*/false);
  if (S == RevisedStatus::NumericFail) {
    met().WarmColdFallbacks.add();
    return solve(Opts);
  }
  if (S == RevisedStatus::Optimal)
    extract();
  return S;
}

RevisedStatus RevisedSimplex::dual(const RevisedOptions &Opts,
                                   bool ReuseDualState) {
  Budget B(Opts, NumRows, NumCols);
  std::vector<double> CostB(NumRows, 0.0);
  std::vector<double> &Y = WorkY;
  std::vector<double> &W = WorkW;
  std::vector<double> Rho(NumRows, 0.0);
  std::vector<double> &RedCost = DualRedCost;
  std::vector<double> Alpha(NumCols, 0.0);
  int StallCount = 0;
  double LastViol = Infinity;

  // The cache is only valid again if this run ends Optimal with the basis
  // left untouched afterwards.
  DualStateValid = false;

  // Basic values and reduced costs are maintained *incrementally* across
  // pivots -- the O(m) rank-one updates below -- and recomputed from
  // scratch only here and after each periodic refactorization. This drops
  // two O(m^2) passes per pivot, which is what makes warm node throughput
  // in branch-and-bound scale. With ReuseDualState even the entry refresh
  // is skipped: the caller guarantees XB, RedCost, and LastNonbasic are
  // current for the held basis.
  auto Refresh = [&] {
    computeBasicValues();
    for (int R = 0; R < NumRows; ++R)
      CostB[R] = Cost[BasicCol[R]];
    computeDuals(CostB, Y);
    for (int C = 0; C < NumCols; ++C) {
      if (Status[C] == VarStatus::Basic) {
        RedCost[C] = 0.0;
        continue;
      }
      RedCost[C] = reducedCost(C, Y.data());
      LastNonbasic[C] = nonbasicValue(C);
    }
  };
  if (!ReuseDualState) {
    RedCost.assign(NumCols, 0.0);
    LastNonbasic.assign(NumCols, 0.0);
    Refresh();
  }

  for (;;) {
    if (RevisedStatus S = B.check(Iterations); S != RevisedStatus::Optimal)
      return S;

    // Leaving: the basic variable with the largest bound violation.
    int LeaveRow = -1;
    double WorstViol = tol::Feas;
    bool Below = false;
    for (int R = 0; R < NumRows; ++R) {
      int C = BasicCol[R];
      double L = colLower(C), U = colUpper(C);
      double V = 0.0;
      bool IsBelow = false;
      if (XB[R] < L - tol::Feas) {
        V = L - XB[R];
        IsBelow = true;
      } else if (XB[R] > U + tol::Feas) {
        V = XB[R] - U;
      }
      if (V > WorstViol) {
        WorstViol = V;
        LeaveRow = R;
        Below = IsBelow;
      }
    }
    if (LeaveRow < 0) {
      DualStateValid = true;
      return RevisedStatus::Optimal;
    }

    const double *BRow = &Binv[static_cast<size_t>(LeaveRow) * NumRows];
    for (int R = 0; R < NumRows; ++R)
      Rho[R] = BRow[R];

    // Entering: dual ratio test over the pivot row. Eligibility depends on
    // which bound the leaving variable violates (see header notes); the
    // minimum ratio |d_j / alpha_j| keeps every other reduced cost dual
    // feasible. Alpha is kept for *every* nonbasic column because the
    // incremental reduced-cost update below needs the full pivot row.
    int Enter = -1;
    double BestRatio = Infinity, EnterAlpha = 0.0;
    for (int C = 0; C < NumCols; ++C) {
      VarStatus St = Status[C];
      if (St == VarStatus::Basic)
        continue;
      double A = columnDot(C, Rho.data());
      Alpha[C] = A;
      if (std::fabs(A) <= tol::Pivot)
        continue;
      bool Eligible;
      if (Below)
        Eligible = (St == VarStatus::AtLower && A < 0.0) ||
                   (St == VarStatus::AtUpper && A > 0.0) ||
                   St == VarStatus::Free;
      else
        Eligible = (St == VarStatus::AtLower && A > 0.0) ||
                   (St == VarStatus::AtUpper && A < 0.0) ||
                   St == VarStatus::Free;
      if (!Eligible)
        continue;
      double Ratio = std::fabs(RedCost[C]) / std::fabs(A);
      if (Ratio < BestRatio - 1e-12 ||
          (Ratio < BestRatio + 1e-12 &&
           (Enter < 0 || std::fabs(A) > std::fabs(EnterAlpha)))) {
        BestRatio = Ratio;
        Enter = C;
        EnterAlpha = A;
      }
    }
    if (Enter < 0)
      return RevisedStatus::Infeasible; // Farkas: no entering column exists.

    ftran(Enter, W);
    if (std::fabs(W[LeaveRow]) <= tol::Pivot)
      return RevisedStatus::NumericFail;

    int LeaveCol = BasicCol[LeaveRow];

    // Incremental primal update: pushing the entering variable by T lands
    // the leaving variable exactly on its violated bound.
    double VOut = Below ? colLower(LeaveCol) : colUpper(LeaveCol);
    double T = (XB[LeaveRow] - VOut) / W[LeaveRow];
    double EnterVal = nonbasicValue(Enter) + T;
    for (int R = 0; R < NumRows; ++R)
      XB[R] -= T * W[R];

    // Incremental dual update: y' = y + theta * rho_r zeroes the entering
    // reduced cost, shifts every other one by -theta * alpha_j, and leaves
    // the departing variable at -theta.
    double Theta = RedCost[Enter] / Alpha[Enter];
    for (int C = 0; C < NumCols; ++C)
      if (Status[C] != VarStatus::Basic)
        RedCost[C] -= Theta * Alpha[C];

    applyPivot(LeaveRow, Enter, W);
    Status[LeaveCol] = Below ? VarStatus::AtLower : VarStatus::AtUpper;
    XB[LeaveRow] = EnterVal;
    RedCost[Enter] = 0.0;
    RedCost[LeaveCol] = -Theta;
    LastNonbasic[LeaveCol] = VOut;
    ++Iterations;
    met().Pivots.add();
    if (SinceRefactor >= std::max(1, Opts.RefactorInterval)) {
      if (!refactorize())
        return RevisedStatus::NumericFail;
      Refresh();
    }

    // Stall watchdog: the worst violation must shrink over time; dual
    // degeneracy can plateau briefly, persistent plateaus are numeric
    // trouble and the caller's cold-solve fallback handles them.
    if (WorstViol >= LastViol - 1e-12) {
      if (++StallCount > 4 * Opts.StallThreshold)
        return RevisedStatus::NumericFail;
    } else {
      StallCount = 0;
      LastViol = WorstViol;
    }
  }
}

Basis RevisedSimplex::basis() const {
  Basis B;
  B.Status = Status;
  B.BasicCol = BasicCol;
  return B;
}

Solution aqua::lp::solveRevisedSimplex(const Model &M,
                                       const SolveOptions &Opts) {
  WallTimer Timer;
  Solution Sol;
  // The engine's working set is ~3 dense m x m panels (inverse plus the
  // refactorization scratch); honor the caller's memory budget the same
  // way the dense tableau does.
  size_t M2 = static_cast<size_t>(M.numRows()) * M.numRows();
  if (3 * M2 * sizeof(double) > Opts.MaxTableauBytes) {
    Sol.Status = SolveStatus::TooLarge;
    return Sol;
  }
  RevisedSimplex RS(M);
  RevisedOptions RO;
  RO.MaxIterations = Opts.MaxIterations;
  RO.TimeLimitSec = Opts.TimeLimitSec;
  RO.StallThreshold = Opts.StallThreshold;
  RevisedStatus S = RS.solve(RO);
  Sol.Iterations = RS.iterations();
  if (S == RevisedStatus::NumericFail) {
    Solution Dense = solveSimplex(M, Opts);
    Dense.Iterations += Sol.Iterations;
    Dense.Seconds = Timer.seconds();
    return Dense;
  }
  Sol.Status = toSolveStatus(S);
  Sol.Seconds = Timer.seconds();
  if (Sol.Status == SolveStatus::Optimal) {
    Sol.Values = RS.values();
    Sol.Objective = RS.objective();
  }
  return Sol;
}

void RevisedSimplex::extract() {
  computeBasicValues();
  for (int V = 0; V < NumStruct; ++V)
    StructValues[V] =
        Status[V] == VarStatus::Basic ? XB[RowOfBasic[V]] : nonbasicValue(V);
  // Clamp basic structurals onto their bounds within feasibility noise so
  // downstream exact checks (integral snapping, verification) see clean
  // values.
  for (int V = 0; V < NumStruct; ++V) {
    if (StructValues[V] < Lower[V] && StructValues[V] > Lower[V] - tol::Feas)
      StructValues[V] = Lower[V];
    if (StructValues[V] > Upper[V] && StructValues[V] < Upper[V] + tol::Feas)
      StructValues[V] = Upper[V];
  }
  Objective = M.objectiveValue(StructValues);
}
