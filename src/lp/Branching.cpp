//===- Branching.cpp - Branch-and-bound branching layer ---------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Branching.h"

#include <cassert>
#include <cmath>

using namespace aqua;
using namespace aqua::lp;

int aqua::lp::pickBranchVar(const std::vector<double> &Values,
                            const std::vector<bool> &IsInteger, double Tol) {
  assert(Values.size() == IsInteger.size() && "mask/value size mismatch");
  int Best = -1;
  double BestDist = Tol;
  for (size_t I = 0; I < Values.size(); ++I) {
    if (!IsInteger[I])
      continue;
    double Frac = Values[I] - std::floor(Values[I]);
    double Dist = std::min(Frac, 1.0 - Frac);
    if (Dist > BestDist) {
      BestDist = Dist;
      Best = static_cast<int>(I);
    }
  }
  return Best;
}

void aqua::lp::applyBoundPath(const std::vector<BoundChange> &Path,
                              std::vector<double> &Lower,
                              std::vector<double> &Upper) {
  for (const BoundChange &C : Path) {
    if (C.IsUpper)
      Upper[C.Var] = C.Bound;
    else
      Lower[C.Var] = C.Bound;
  }
}

void aqua::lp::undoBoundPath(const std::vector<BoundChange> &Path,
                             const std::vector<double> &RootLower,
                             const std::vector<double> &RootUpper,
                             std::vector<double> &Lower,
                             std::vector<double> &Upper) {
  for (const BoundChange &C : Path) {
    Lower[C.Var] = RootLower[C.Var];
    Upper[C.Var] = RootUpper[C.Var];
  }
}
