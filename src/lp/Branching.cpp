//===- Branching.cpp - Branch-and-bound branching layer ---------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Branching.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace aqua;
using namespace aqua::lp;

int aqua::lp::pickBranchVar(const std::vector<double> &Values,
                            const std::vector<bool> &IsInteger, double Tol) {
  assert(Values.size() == IsInteger.size() && "mask/value size mismatch");
  int Best = -1;
  double BestDist = Tol;
  for (size_t I = 0; I < Values.size(); ++I) {
    if (!IsInteger[I])
      continue;
    double Frac = Values[I] - std::floor(Values[I]);
    double Dist = std::min(Frac, 1.0 - Frac);
    if (Dist > BestDist) {
      BestDist = Dist;
      Best = static_cast<int>(I);
    }
  }
  return Best;
}

std::vector<BranchCandidate>
aqua::lp::fractionalCandidates(const std::vector<double> &Values,
                               const std::vector<bool> &IsInteger,
                               double Tol) {
  assert(Values.size() == IsInteger.size() && "mask/value size mismatch");
  std::vector<BranchCandidate> Out;
  for (size_t I = 0; I < Values.size(); ++I) {
    if (!IsInteger[I])
      continue;
    double Frac = Values[I] - std::floor(Values[I]);
    if (std::min(Frac, 1.0 - Frac) > Tol)
      Out.push_back({static_cast<int>(I), Frac});
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const BranchCandidate &A, const BranchCandidate &B) {
                     return std::min(A.Frac, 1.0 - A.Frac) >
                            std::min(B.Frac, 1.0 - B.Frac);
                   });
  return Out;
}

bool aqua::lp::PseudocostTable::record(int Var, bool Up, double PerUnit) {
  PerUnit = std::max(PerUnit, 0.0);
  std::lock_guard<std::mutex> L(Mu);
  Entry &E = Tab[Var];
  Dir &D = Up ? E.UpD : E.DownD;
  Dir &G = Up ? GlobalUp : GlobalDown;
  const bool First = D.Cnt == 0;
  D.Sum += PerUnit;
  ++D.Cnt;
  G.Sum += PerUnit;
  ++G.Cnt;
  return First;
}

int aqua::lp::PseudocostTable::count(int Var, bool Up) const {
  std::lock_guard<std::mutex> L(Mu);
  const Entry &E = Tab[Var];
  return Up ? E.UpD.Cnt : E.DownD.Cnt;
}

double aqua::lp::PseudocostTable::estimateLocked(const Entry &E,
                                                bool Up) const {
  const Dir &D = Up ? E.UpD : E.DownD;
  if (D.Cnt > 0)
    return D.Sum / D.Cnt;
  const Dir &G = Up ? GlobalUp : GlobalDown;
  return G.Cnt > 0 ? G.Sum / G.Cnt : 0.0;
}

double aqua::lp::PseudocostTable::estimate(int Var, bool Up) const {
  std::lock_guard<std::mutex> L(Mu);
  return estimateLocked(Tab[Var], Up);
}

int aqua::lp::PseudocostTable::reliability(int Var) const {
  std::lock_guard<std::mutex> L(Mu);
  const Entry &E = Tab[Var];
  return std::min(E.UpD.Cnt, E.DownD.Cnt);
}

void aqua::lp::PseudocostTable::estimates(int Var, double &UpEst,
                                          double &DownEst) const {
  std::lock_guard<std::mutex> L(Mu);
  UpEst = estimateLocked(Tab[Var], true);
  DownEst = estimateLocked(Tab[Var], false);
}

double aqua::lp::pseudocostScore(double UpEst, double DownEst, double Frac) {
  constexpr double Eps = 1e-6;
  const double UpGain = UpEst * (1.0 - Frac);
  const double DownGain = DownEst * Frac;
  return std::max(UpGain, Eps) * std::max(DownGain, Eps);
}

void aqua::lp::applyBoundPath(const std::vector<BoundChange> &Path,
                              std::vector<double> &Lower,
                              std::vector<double> &Upper) {
  for (const BoundChange &C : Path) {
    if (C.IsUpper)
      Upper[C.Var] = C.Bound;
    else
      Lower[C.Var] = C.Bound;
  }
}

void aqua::lp::undoBoundPath(const std::vector<BoundChange> &Path,
                             const std::vector<double> &RootLower,
                             const std::vector<double> &RootUpper,
                             std::vector<double> &Lower,
                             std::vector<double> &Upper) {
  for (const BoundChange &C : Path) {
    Lower[C.Var] = RootLower[C.Var];
    Upper[C.Var] = RootUpper[C.Var];
  }
}
