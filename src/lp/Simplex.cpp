//===- Simplex.cpp - Two-phase primal simplex ------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Simplex.h"

#include "aqua/lp/Tolerances.h"
#include "aqua/support/Fatal.h"
#include "aqua/obs/Timer.h"

#include <algorithm>
#include <cmath>

using namespace aqua;
using namespace aqua::lp;

const char *aqua::lp::solveStatusName(SolveStatus S) {
  switch (S) {
  case SolveStatus::Optimal:
    return "optimal";
  case SolveStatus::Infeasible:
    return "infeasible";
  case SolveStatus::Unbounded:
    return "unbounded";
  case SolveStatus::IterationLimit:
    return "iteration-limit";
  case SolveStatus::TimeLimit:
    return "time-limit";
  case SolveStatus::TooLarge:
    return "too-large";
  }
  AQUA_UNREACHABLE("bad SolveStatus");
}

namespace {

// Shared LP-layer tolerances (see aqua/lp/Tolerances.h for the policy).
constexpr double CostTol = tol::Cost;
constexpr double PivotTol = tol::Pivot;
constexpr double ZeroTol = tol::Zero;

/// Dense two-phase simplex working state.
///
/// Column layout: [structural y-columns][slack/surplus][artificials].
/// Structural columns correspond to the shifted model variables; a free
/// model variable contributes two structural columns (positive and negative
/// parts). Row `NumRows` of the tableau is the objective row.
class Tableau {
public:
  Tableau(const Model &M, const SolveOptions &Opts);

  /// Runs both phases. Fills and returns the Solution.
  Solution run();

private:
  bool buildFailedTooLarge() const { return TooLarge; }

  double &at(int Row, int Col) { return Data[size_t(Row) * Stride + Col]; }
  double at(int Row, int Col) const {
    return Data[size_t(Row) * Stride + Col];
  }
  double &rhs(int Row) { return at(Row, NumCols); }
  double &obj(int Col) { return at(NumRows, Col); }

  void pivot(int Row, int Col);
  /// Returns the entering column, or -1 at optimality.
  int chooseEntering() const;
  /// Returns the leaving row for entering column \p Col, or -1 if the
  /// column is unbounded below.
  int chooseLeaving(int Col) const;
  /// Runs the pivot loop on the current objective row.
  SolveStatus iterate();
  /// Prices the current basis out of the objective row.
  void priceOutBasis(const std::vector<double> &Costs);
  /// Pivots or deactivates rows whose basic variable is an artificial.
  void expelArtificials();
  void extractValues(Solution &Sol) const;

  const Model &M;
  const SolveOptions &Opts;
  WallTimer Timer;

  int NumRows = 0;
  int NumCols = 0;       // Excluding the rhs column.
  int NumStructCols = 0; // Structural (shifted-variable) columns.
  int FirstArtificial = 0;
  size_t Stride = 0;
  std::vector<double> Data;
  std::vector<int> Basis;         // Basic column per row.
  std::vector<char> RowActive;    // Redundant rows get deactivated.
  std::vector<char> ColBarred;    // Artificials barred in phase 2.
  // Mapping from structural columns back to model variables.
  struct ColOrigin {
    VarId Var;
    double Sign; // +1 for positive part, -1 for negative part.
  };
  std::vector<ColOrigin> Origins;
  std::vector<double> Shift; // Lower-bound shift per model variable.

  std::int64_t Iterations = 0;
  bool UseBland = false;
  int StallCount = 0;
  double LastObjective = 0.0;
  bool TooLarge = false;
  bool OutOfBudget = false;
  SolveStatus BudgetStatus = SolveStatus::Optimal;
};

Tableau::Tableau(const Model &M, const SolveOptions &Opts) : M(M), Opts(Opts) {
  // Shift variables to a zero lower bound; split free variables.
  int N = M.numVars();
  Shift.assign(N, 0.0);
  Origins.clear();
  std::vector<int> FirstColOfVar(N, -1);
  for (VarId V = 0; V < N; ++V) {
    const Variable &Var = M.var(V);
    FirstColOfVar[V] = static_cast<int>(Origins.size());
    if (Var.Lower == -Infinity) {
      // Free (or upper-bounded-only) variable: x = y+ - y-.
      Origins.push_back({V, +1.0});
      Origins.push_back({V, -1.0});
      Shift[V] = 0.0;
    } else {
      Origins.push_back({V, +1.0});
      Shift[V] = Var.Lower;
    }
  }
  NumStructCols = static_cast<int>(Origins.size());

  // Count rows: model rows plus one per finite upper bound.
  int UpperRows = 0;
  for (VarId V = 0; V < N; ++V)
    if (M.var(V).Upper != Infinity)
      ++UpperRows;
  NumRows = M.numRows() + UpperRows;

  // Assemble raw rows (dense) with shifted rhs, then normalize rhs >= 0 and
  // attach slack/surplus/artificial columns.
  struct RawRow {
    std::vector<Term> Terms;
    RowKind Kind;
    double Rhs;
  };
  std::vector<RawRow> Raw;
  Raw.reserve(NumRows);
  for (const Row &R : M.rows()) {
    RawRow RR;
    RR.Kind = R.Kind;
    double Adjust = 0.0;
    for (const Term &T : R.Terms)
      Adjust += T.Coef * Shift[T.Var];
    RR.Rhs = R.Rhs - Adjust;
    RR.Terms = R.Terms;
    Raw.push_back(std::move(RR));
  }
  for (VarId V = 0; V < N; ++V) {
    const Variable &Var = M.var(V);
    if (Var.Upper == Infinity)
      continue;
    RawRow RR;
    RR.Kind = RowKind::LE;
    RR.Rhs = Var.Upper - Shift[V];
    RR.Terms = {Term{V, 1.0}};
    Raw.push_back(std::move(RR));
  }

  // Normalize rhs >= 0.
  for (RawRow &RR : Raw) {
    if (RR.Rhs >= 0.0)
      continue;
    RR.Rhs = -RR.Rhs;
    for (Term &T : RR.Terms)
      T.Coef = -T.Coef;
    if (RR.Kind == RowKind::LE)
      RR.Kind = RowKind::GE;
    else if (RR.Kind == RowKind::GE)
      RR.Kind = RowKind::LE;
  }

  // Column budget: structural + one slack/surplus per row + one artificial
  // per GE/EQ row.
  int SlackCount = 0, ArtCount = 0;
  for (const RawRow &RR : Raw) {
    if (RR.Kind != RowKind::EQ)
      ++SlackCount;
    if (RR.Kind != RowKind::LE)
      ++ArtCount;
  }
  NumCols = NumStructCols + SlackCount + ArtCount;
  FirstArtificial = NumStructCols + SlackCount;
  Stride = static_cast<size_t>(NumCols) + 1;

  size_t Bytes = (static_cast<size_t>(NumRows) + 1) * Stride * sizeof(double);
  if (Bytes > Opts.MaxTableauBytes) {
    TooLarge = true;
    return;
  }
  Data.assign((static_cast<size_t>(NumRows) + 1) * Stride, 0.0);
  Basis.assign(NumRows, -1);
  RowActive.assign(NumRows, 1);
  ColBarred.assign(NumCols, 0);

  int NextSlack = NumStructCols;
  int NextArt = FirstArtificial;
  for (int I = 0; I < NumRows; ++I) {
    const RawRow &RR = Raw[I];
    for (const Term &T : RR.Terms) {
      int C = FirstColOfVar[T.Var];
      at(I, C) += T.Coef;
      if (M.var(T.Var).Lower == -Infinity)
        at(I, C + 1) -= T.Coef; // Negative part of the free split.
    }
    rhs(I) = RR.Rhs;
    switch (RR.Kind) {
    case RowKind::LE:
      at(I, NextSlack) = 1.0;
      Basis[I] = NextSlack++;
      break;
    case RowKind::GE:
      at(I, NextSlack) = -1.0;
      ++NextSlack;
      at(I, NextArt) = 1.0;
      Basis[I] = NextArt++;
      break;
    case RowKind::EQ:
      at(I, NextArt) = 1.0;
      Basis[I] = NextArt++;
      break;
    }
  }
  assert(NextSlack == FirstArtificial && NextArt == NumCols &&
         "column accounting mismatch");
}

void Tableau::pivot(int PivRow, int PivCol) {
  double *PR = &Data[size_t(PivRow) * Stride];
  double Inv = 1.0 / PR[PivCol];
  for (int J = 0; J <= NumCols; ++J)
    PR[J] *= Inv;
  PR[PivCol] = 1.0;
  for (int I = 0; I <= NumRows; ++I) {
    if (I == PivRow)
      continue;
    double *R = &Data[size_t(I) * Stride];
    double Factor = R[PivCol];
    if (Factor == 0.0)
      continue;
    for (int J = 0; J <= NumCols; ++J) {
      R[J] -= Factor * PR[J];
      if (std::fabs(R[J]) < ZeroTol)
        R[J] = 0.0;
    }
    R[PivCol] = 0.0;
  }
  Basis[PivRow] = PivCol;
  ++Iterations;
}

int Tableau::chooseEntering() const {
  const double *ObjRow = &Data[size_t(NumRows) * Stride];
  if (UseBland) {
    for (int J = 0; J < NumCols; ++J)
      if (!ColBarred[J] && ObjRow[J] < -CostTol)
        return J;
    return -1;
  }
  int Best = -1;
  double BestCost = -CostTol;
  for (int J = 0; J < NumCols; ++J) {
    if (ColBarred[J])
      continue;
    if (ObjRow[J] < BestCost) {
      BestCost = ObjRow[J];
      Best = J;
    }
  }
  return Best;
}

int Tableau::chooseLeaving(int Col) const {
  int BestRow = -1;
  double BestRatio = 0.0;
  for (int I = 0; I < NumRows; ++I) {
    if (!RowActive[I])
      continue;
    double A = at(I, Col);
    if (A <= PivotTol)
      continue;
    double Ratio = at(I, NumCols) / A;
    if (BestRow == -1 || Ratio < BestRatio - 1e-12 ||
        (Ratio < BestRatio + 1e-12 && Basis[I] < Basis[BestRow])) {
      BestRow = I;
      BestRatio = Ratio;
    }
  }
  return BestRow;
}

SolveStatus Tableau::iterate() {
  for (;;) {
    if (Opts.MaxIterations > 0 && Iterations >= Opts.MaxIterations)
      return SolveStatus::IterationLimit;
    if (Opts.TimeLimitSec > 0.0 && (Iterations & 63) == 0 &&
        Timer.seconds() > Opts.TimeLimitSec)
      return SolveStatus::TimeLimit;

    int Col = chooseEntering();
    if (Col < 0)
      return SolveStatus::Optimal;
    int Row = chooseLeaving(Col);
    if (Row < 0)
      return SolveStatus::Unbounded;
    pivot(Row, Col);

    // Degeneracy watchdog: if the objective value stops moving, fall back
    // to Bland's rule, which cannot cycle.
    double Obj = at(NumRows, NumCols);
    if (std::fabs(Obj - LastObjective) < 1e-12) {
      if (++StallCount > Opts.StallThreshold)
        UseBland = true;
    } else {
      StallCount = 0;
      LastObjective = Obj;
    }
  }
}

void Tableau::priceOutBasis(const std::vector<double> &Costs) {
  double *ObjRow = &Data[size_t(NumRows) * Stride];
  std::fill(ObjRow, ObjRow + NumCols + 1, 0.0);
  for (size_t J = 0; J < Costs.size(); ++J)
    ObjRow[J] = Costs[J];
  for (int I = 0; I < NumRows; ++I) {
    if (!RowActive[I])
      continue;
    double C = Costs[Basis[I]];
    if (C == 0.0)
      continue;
    const double *R = &Data[size_t(I) * Stride];
    for (int J = 0; J <= NumCols; ++J)
      ObjRow[J] -= C * R[J];
  }
}

void Tableau::expelArtificials() {
  for (int I = 0; I < NumRows; ++I) {
    if (!RowActive[I] || Basis[I] < FirstArtificial)
      continue;
    // The basic artificial sits at value ~0 (phase 1 succeeded). Pivot it
    // out on any usable non-artificial column; otherwise the row is
    // redundant and is deactivated.
    int PivCol = -1;
    for (int J = 0; J < FirstArtificial; ++J) {
      if (std::fabs(at(I, J)) > PivotTol) {
        PivCol = J;
        break;
      }
    }
    if (PivCol >= 0)
      pivot(I, PivCol);
    else
      RowActive[I] = 0;
  }
}

void Tableau::extractValues(Solution &Sol) const {
  std::vector<double> ColValue(NumCols, 0.0);
  for (int I = 0; I < NumRows; ++I)
    if (RowActive[I])
      ColValue[Basis[I]] = at(I, NumCols);
  Sol.Values.assign(M.numVars(), 0.0);
  for (int J = 0; J < NumStructCols; ++J)
    Sol.Values[Origins[J].Var] += Origins[J].Sign * ColValue[J];
  for (VarId V = 0; V < M.numVars(); ++V)
    Sol.Values[V] += Shift[V];
  Sol.Objective = M.objectiveValue(Sol.Values);
}

Solution Tableau::run() {
  Solution Sol;
  if (TooLarge) {
    Sol.Status = SolveStatus::TooLarge;
    return Sol;
  }

  // ----- Phase 1: minimize the sum of artificials.
  bool HaveArtificials = FirstArtificial < NumCols;
  if (HaveArtificials) {
    std::vector<double> Phase1Costs(NumCols, 0.0);
    for (int J = FirstArtificial; J < NumCols; ++J)
      Phase1Costs[J] = 1.0;
    priceOutBasis(Phase1Costs);
    LastObjective = at(NumRows, NumCols);
    SolveStatus S = iterate();
    Sol.Iterations = Iterations;
    Sol.Seconds = Timer.seconds();
    if (S != SolveStatus::Optimal) {
      Sol.Status = S == SolveStatus::Unbounded ? SolveStatus::Infeasible : S;
      return Sol;
    }
    // Objective row rhs holds -sum(artificials).
    double ArtSum = -at(NumRows, NumCols);
    if (ArtSum > tol::Phase1) {
      Sol.Status = SolveStatus::Infeasible;
      Sol.Iterations = Iterations;
      Sol.Seconds = Timer.seconds();
      return Sol;
    }
    expelArtificials();
    for (int J = FirstArtificial; J < NumCols; ++J)
      ColBarred[J] = 1;
  }

  // ----- Phase 2: optimize the user objective (internally minimized).
  double Sign = M.isMaximize() ? -1.0 : 1.0;
  std::vector<double> Costs(NumCols, 0.0);
  for (int J = 0; J < NumStructCols; ++J)
    Costs[J] = Sign * M.var(Origins[J].Var).ObjCoef * Origins[J].Sign;
  priceOutBasis(Costs);
  UseBland = false;
  StallCount = 0;
  LastObjective = at(NumRows, NumCols);
  SolveStatus S = iterate();
  Sol.Iterations = Iterations;
  Sol.Seconds = Timer.seconds();
  Sol.Status = S;
  if (S == SolveStatus::Optimal)
    extractValues(Sol);
  return Sol;
}

} // namespace

Solution aqua::lp::solveSimplex(const Model &M, const SolveOptions &Opts) {
  Tableau T(M, Opts);
  return T.run();
}
