//===- BasisLU.cpp - Sparse LU basis factorization ---------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Right-looking sparse Gaussian elimination with Markowitz pivot selection.
//
// The active submatrix lives in row-major scatter form (one short vector of
// (position, value) pairs per row) with a position -> active-rows index.
// Pivots are chosen from the lowest column-count buckets by Markowitz cost
// (rowlen-1)*(collen-1), restricted to entries within a relative threshold
// of their column's magnitude so the elimination never divides by a tiny
// pivot that a healthier candidate could replace. Bucket entries are lazy:
// every count change pushes a fresh entry and pops validate against the
// live count, so maintenance is O(1) per change without a decrease-key
// structure.
//
// The RVol bases this factors are 2-3 nonzeros per row, and the measured
// fill on the enzyme sweep is ~1.3x, so elimination costs are dominated by
// the O(nnz) setup -- refactorization becomes cheap enough to run every few
// pivots, which in turn keeps the product-form eta file short.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/BasisLU.h"

#include "aqua/lp/Tolerances.h"

#include <algorithm>
#include <cmath>

using namespace aqua;
using namespace aqua::lp;

namespace {

/// Candidate columns examined per pivot choice. More candidates buy
/// slightly less fill for more selection time; fill is already near 1 on
/// these bases, so a small panel wins.
constexpr int CandidateLimit = 8;

/// Relative magnitude threshold for an entry to be pivot-eligible within
/// its column (classic Markowitz threshold pivoting).
constexpr double PivotThreshold = 0.1;

} // namespace

bool BasisLU::factor(const SparseMatrix &A, int NumStruct,
                     const std::vector<int> &BasicCol) {
  Valid = false;
  M = static_cast<int>(BasicCol.size());
  LNnz = UNnz = 0;
  std::size_t Flops = 0;

  PivRow.clear();
  PivPos.clear();
  PivVal.clear();
  PivRow.reserve(M);
  PivPos.reserve(M);
  PivVal.reserve(M);
  LStart.assign(1, 0);
  LRow.clear();
  LVal.clear();
  UStart.assign(1, 0);
  UPos.clear();
  UVal.clear();

  // Active matrix: clear() keeps each inner buffer's capacity across
  // factor calls, so steady-state refactorizations allocate nothing.
  if (static_cast<int>(Rows.size()) < M) {
    Rows.resize(M);
    ColRows.resize(M);
  }
  for (int I = 0; I < M; ++I) {
    Rows[I].clear();
    ColRows[I].clear();
  }
  RowDone.assign(M, 0);
  ColDone.assign(M, 0);

  std::size_t Nnz = 0;
  for (int P = 0; P < M; ++P) {
    int C = BasicCol[P];
    if (C >= NumStruct) {
      Rows[C - NumStruct].push_back({P, 1.0});
      ++Nnz;
    } else {
      for (const SparseMatrix::Entry *E = A.colBegin(C), *End = A.colEnd(C);
           E != End; ++E)
        if (E->Value != 0.0) {
          Rows[E->Row].push_back({P, E->Value});
          ++Nnz;
        }
    }
  }
  for (int R = 0; R < M; ++R)
    for (const auto &[P, V] : Rows[R])
      ColRows[P].push_back(R);

  if (static_cast<int>(CountBucket.size()) < M + 1)
    CountBucket.resize(M + 1);
  for (auto &B : CountBucket)
    B.clear();
  for (int P = 0; P < M; ++P) {
    std::size_t C = ColRows[P].size();
    if (C == 0)
      return false; // Structurally singular: empty basis column.
    if (C < CountBucket.size())
      CountBucket[C].push_back(P);
  }
  std::size_t CurMin = 1;

  auto columnValue = [&](int Row, int Pos) -> double {
    for (const auto &[Q, V] : Rows[Row])
      if (Q == Pos)
        return V;
    return 0.0;
  };

  for (int T = 0; T < M; ++T) {
    // --- pivot selection
    int BestR = -1, BestP = -1;
    double BestV = 0.0;
    std::size_t BestCost = static_cast<std::size_t>(-1);
    int Seen = 0;
    for (std::size_t C = CurMin; C < CountBucket.size(); ++C) {
      auto &B = CountBucket[C];
      // Drop stale entries as we scan; a column whose live count differs
      // has a fresh entry in its current bucket.
      for (std::size_t I = 0; I < B.size() && Seen < CandidateLimit;) {
        int P = B[I];
        if (ColDone[P] || ColRows[P].size() != C) {
          B[I] = B.back();
          B.pop_back();
          continue;
        }
        ++I;
        ++Seen;
        double MaxV = 0.0;
        for (int R : ColRows[P])
          MaxV = std::max(MaxV, std::fabs(columnValue(R, P)));
        if (MaxV <= tol::Pivot)
          return false; // Numerically empty column: singular.
        for (int R : ColRows[P]) {
          double V = columnValue(R, P);
          if (std::fabs(V) < PivotThreshold * MaxV ||
              std::fabs(V) <= tol::Pivot)
            continue;
          std::size_t Cost = (Rows[R].size() - 1) * (ColRows[P].size() - 1);
          if (Cost < BestCost) {
            BestCost = Cost;
            BestR = R;
            BestP = P;
            BestV = V;
          }
        }
      }
      if (B.empty() && C == CurMin)
        ++CurMin;
      if (Seen >= CandidateLimit)
        break;
      // A count-c column can't beat a cost of (c-1)^2 from a lower bucket.
      if (BestR >= 0 && BestCost <= (C - 1) * (C - 1))
        break;
    }
    if (BestR < 0)
      return false; // No acceptable pivot anywhere: singular.

    // --- elimination step
    const int R0 = BestR, P0 = BestP;
    const double Piv = BestV;
    auto &PivotRow = Rows[R0];
    for (int I : ColRows[P0]) {
      if (I == R0)
        continue;
      auto &Ri = Rows[I];
      double V = 0.0;
      for (std::size_t X = 0; X < Ri.size(); ++X)
        if (Ri[X].first == P0) {
          V = Ri[X].second;
          Ri[X] = Ri.back();
          Ri.pop_back();
          break;
        }
      double Mult = V / Piv;
      LRow.push_back(I);
      LVal.push_back(Mult);
      ++LNnz;
      for (const auto &[Q, U] : PivotRow) {
        if (Q == P0)
          continue;
        ++Flops;
        bool Found = false;
        for (auto &[Q2, W] : Ri)
          if (Q2 == Q) {
            W -= Mult * U;
            Found = true;
            break;
          }
        if (!Found) {
          Ri.push_back({Q, -Mult * U});
          auto &CR = ColRows[Q];
          CR.push_back(I);
          if (CR.size() < CountBucket.size())
            CountBucket[CR.size()].push_back(Q);
        }
      }
    }
    PivRow.push_back(R0);
    PivPos.push_back(P0);
    PivVal.push_back(Piv);
    LStart.push_back(static_cast<int>(LRow.size()));
    for (const auto &[Q, U] : PivotRow) {
      if (Q == P0)
        continue;
      UPos.push_back(Q);
      UVal.push_back(U);
      ++UNnz;
      auto &CR = ColRows[Q];
      for (std::size_t X = 0; X < CR.size(); ++X)
        if (CR[X] == R0) {
          CR[X] = CR.back();
          CR.pop_back();
          break;
        }
      std::size_t C = CR.size();
      if (C > 0 && C < CountBucket.size()) {
        CountBucket[C].push_back(Q);
        if (C < CurMin)
          CurMin = C;
      }
    }
    UStart.push_back(static_cast<int>(UPos.size()));
    RowDone[R0] = 1;
    ColDone[P0] = 1;
    ColRows[P0].clear();
    PivotRow.clear();
  }

  FactorOps = Flops + Nnz + LNnz + UNnz + 2 * static_cast<std::size_t>(M);
  Work.assign(M, 0.0);
  Valid = true;
  return true;
}

void BasisLU::ftran(std::vector<double> &X) const {
  // Forward L pass on the row-indexed input, stage order.
  for (int T = 0; T < M; ++T) {
    double Xr = X[PivRow[T]];
    if (Xr == 0.0)
      continue;
    for (int I = LStart[T]; I < LStart[T + 1]; ++I)
      X[LRow[I]] -= LVal[I] * Xr;
  }
  // Stage gather, then backward U substitution into position indexing.
  // Rows and positions share the index space, so the gather must finish
  // before any position is written.
  for (int T = 0; T < M; ++T)
    Work[T] = X[PivRow[T]];
  for (int T = M - 1; T >= 0; --T) {
    double V = Work[T];
    for (int I = UStart[T]; I < UStart[T + 1]; ++I)
      V -= UVal[I] * X[UPos[I]];
    X[PivPos[T]] = V / PivVal[T];
  }
}

void BasisLU::btran(std::vector<double> &Y) const {
  // Forward U^T pass: each stage's solved value scatters into the later
  // positions its U row touches.
  for (int T = 0; T < M; ++T) {
    double W = Y[PivPos[T]] / PivVal[T];
    Work[T] = W;
    if (W == 0.0)
      continue;
    for (int I = UStart[T]; I < UStart[T + 1]; ++I)
      Y[UPos[I]] -= UVal[I] * W;
  }
  // Backward L^T pass into row indexing.
  for (int T = 0; T < M; ++T)
    Y[PivRow[T]] = Work[T];
  for (int T = M - 1; T >= 0; --T) {
    double Acc = Y[PivRow[T]];
    for (int I = LStart[T]; I < LStart[T + 1]; ++I)
      Acc -= LVal[I] * Y[LRow[I]];
    Y[PivRow[T]] = Acc;
  }
}
