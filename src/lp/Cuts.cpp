//===- Cuts.cpp - GMI and Chvatal-Gomory cut separation -------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Gomory mixed-integer cuts from the bounded-variable tableau.
//
// The engine's computational form is a_i . x + s_i = rhs_i with structural
// bounds [l_j, u_j] and logical bounds fixed by the row kind (LE: [0, inf),
// GE: (-inf, 0], EQ: [0, 0]). A basis row P with basic variable x_B reads
//
//   x_B + sum_{nonbasic j} alpha_j x_j  =  const,
//
// and every nonbasic rests at a bound, so substituting the shifted
// variables t_j = x_j - l_j (at lower, alpha_bar = alpha) or t_j = u_j -
// x_j (at upper, alpha_bar = -alpha), all t_j >= 0 and t_j = 0 at the
// current vertex:
//
//   x_B  =  xbar - sum alpha_bar_j t_j,     xbar = basic value, frac f0.
//
// The GMI inequality over this row is sum gamma_j t_j >= f0 with
//
//   gamma_j = fj <= f0 ? fj : f0 (1 - fj) / (1 - f0)   (integer t_j,
//                                                       fj = frac(alpha_bar))
//   gamma_j = alpha_bar >= 0 ? alpha_bar
//                            : f0 (-alpha_bar) / (1 - f0)   (continuous)
//
// -- treating an integer column with the continuous formula is valid (just
// weaker), which is what happens when its resting bound is not integral
// (the shift then breaks integrality of t_j). The cut is violated by f0 at
// the current vertex by construction. Expanding the shifts and
// substituting each logical s_r = rhs_r - a_r . x turns it into an LE row
// over structural variables only; since the branch-and-bound tree solves
// the unreduced model, no postsolve bookkeeping is needed.
//
// A row is skipped entirely when a nonbasic Free column has a nonzero
// alpha: a Free column rests at no bound, so the shift -- and with it the
// cut -- is unavailable.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Cuts.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace aqua::lp {

namespace {

/// Below this, a coefficient is treated as exact zero.
constexpr double CoefDrop = 1e-12;

/// FNV-1a over the normalized cut: terms sorted by variable, coefficients
/// and rhs scaled so max|coef| = 1 and rounded to 1e-9. Heuristic
/// fingerprint -- a collision only costs a skipped duplicate-looking cut.
std::uint64_t fingerprint(const Cut &C) {
  double MaxC = 0.0;
  for (const Term &T : C.Terms)
    MaxC = std::max(MaxC, std::abs(T.Coef));
  const double Scale = MaxC > 0.0 ? 1.0 / MaxC : 1.0;
  std::uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](std::uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  auto MixD = [&Mix](double D) {
    Mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::llround(D * 1e9))));
  };
  for (const Term &T : C.Terms) {
    Mix(static_cast<std::uint64_t>(T.Var));
    MixD(T.Coef * Scale);
  }
  MixD(C.Rhs * Scale);
  return H;
}

/// A separated-but-not-yet-admitted cut with its scaled violation.
struct Candidate {
  Cut C;
  double Score;
};

/// Violation of \p C at \p X divided by the coefficient 2-norm, or a
/// negative value when the cut is not violated / fails the shape filters.
double scoreCut(const Cut &C, const std::vector<double> &X,
                const CutOptions &Opts) {
  if (C.Terms.empty() ||
      static_cast<int>(C.Terms.size()) > Opts.MaxDensity)
    return -1.0;
  double MaxC = 0.0, MinC = std::numeric_limits<double>::infinity();
  double Act = 0.0, Norm = 0.0;
  for (const Term &T : C.Terms) {
    const double A = std::abs(T.Coef);
    MaxC = std::max(MaxC, A);
    MinC = std::min(MinC, A);
    Act += T.Coef * X[T.Var];
    Norm += T.Coef * T.Coef;
  }
  if (MaxC > Opts.MaxDynamism * MinC)
    return -1.0;
  return (Act - C.Rhs) / std::max(1.0, std::sqrt(Norm));
}

/// Admits the best-scoring candidates (at most Opts.MaxCuts) to the pool.
int admit(std::vector<Candidate> &Cands, const CutOptions &Opts,
          CutPool &Pool) {
  std::sort(Cands.begin(), Cands.end(),
            [](const Candidate &A, const Candidate &B) {
              return A.Score > B.Score;
            });
  int Added = 0;
  for (Candidate &Cand : Cands) {
    if (Added >= Opts.MaxCuts)
      break;
    if (Pool.add(std::move(Cand.C)))
      ++Added;
  }
  return Added;
}

} // namespace

bool CutPool::add(Cut C) {
  std::sort(C.Terms.begin(), C.Terms.end(),
            [](const Term &A, const Term &B) { return A.Var < B.Var; });
  if (!Seen.insert(fingerprint(C)).second)
    return false;
  C.SlackAge = 0;
  Pool.push_back(std::move(C));
  return true;
}

int CutPool::age(const std::vector<double> &Slack, int MaxAge,
                 std::vector<int> *OldToNew, double Eps) {
  if (OldToNew)
    OldToNew->assign(Pool.size(), -1);
  int Keep = 0, Dropped = 0;
  for (std::size_t I = 0; I < Pool.size(); ++I) {
    Cut &C = Pool[I];
    C.SlackAge = Slack[I] > Eps ? C.SlackAge + 1 : 0;
    if (C.SlackAge >= MaxAge) {
      ++Dropped;
      continue;
    }
    if (OldToNew)
      (*OldToNew)[I] = Keep;
    if (Keep != static_cast<int>(I))
      Pool[Keep] = std::move(C);
    ++Keep;
  }
  Pool.resize(Keep);
  return Dropped;
}

int separateGomory(const Model &M, const std::vector<bool> &IsInteger,
                   RevisedSimplex &Engine, const CutOptions &Opts,
                   CutPool &Pool) {
  const int NumStruct = Engine.numStructural();
  const int NumRows = Engine.numRows();
  const Basis B = Engine.basis();
  const std::vector<double> &X = Engine.values();

  std::vector<int> RowCols;
  std::vector<double> RowVals;
  // Dense accumulator for the expanded cut plus its touched-entry list.
  std::vector<double> Coef(NumStruct, 0.0);
  std::vector<int> Touched;
  auto Accumulate = [&](VarId V, double D) {
    if (Coef[V] == 0.0)
      Touched.push_back(V);
    Coef[V] += D;
  };
  std::vector<Candidate> Cands;

  for (int P = 0; P < NumRows; ++P) {
    const int BC = Engine.basicCol(P);
    if (BC >= NumStruct || !IsInteger[BC])
      continue;
    const double Xb = Engine.basicValue(P);
    const double F0 = Xb - std::floor(Xb);
    if (F0 < Opts.MinFrac || F0 > 1.0 - Opts.MinFrac)
      continue;

    Engine.tableauRow(P, RowCols, RowVals);

    Touched.clear();
    // Constant accumulated on the cut's left side while the inequality is
    // still in >= orientation.
    double Const = 0.0;
    bool Ok = true;
    const double Ratio = F0 / (1.0 - F0);
    for (std::size_t K = 0; K < RowCols.size(); ++K) {
      const int C = RowCols[K];
      // The basic column itself (alpha exactly 1) and other basic columns
      // (alpha zero up to factorization noise) stay out of the cut.
      if (C == BC || B.Status[C] == VarStatus::Basic)
        continue;
      const double Alpha = RowVals[K];
      if (std::abs(Alpha) < CoefDrop)
        continue;
      if (B.Status[C] == VarStatus::Free) {
        Ok = false;
        break;
      }
      const bool AtUp = B.Status[C] == VarStatus::AtUpper;
      const double Bound =
          C < NumStruct ? (AtUp ? Engine.upper(C) : Engine.lower(C)) : 0.0;
      const double AlphaBar = AtUp ? -Alpha : Alpha;
      double Gamma;
      if (C < NumStruct && IsInteger[C] &&
          std::abs(Bound - std::round(Bound)) < 1e-9) {
        const double Fj = AlphaBar - std::floor(AlphaBar);
        Gamma = Fj <= F0 ? Fj : Ratio * (1.0 - Fj);
      } else {
        Gamma = AlphaBar >= 0.0 ? AlphaBar : Ratio * -AlphaBar;
      }
      if (Gamma < CoefDrop)
        continue;
      if (C < NumStruct) {
        // Gamma * t = Gamma * (x - l) or Gamma * (u - x).
        Accumulate(C, AtUp ? -Gamma : Gamma);
        Const += AtUp ? Gamma * Bound : -Gamma * Bound;
      } else {
        // Logical bounds are 0 on whichever side it rests, so Gamma * t
        // is +/- Gamma * s_r; substitute s_r = rhs_r - a_r . x.
        const Row &R = M.row(C - NumStruct);
        const double S = AtUp ? -Gamma : Gamma;
        Const += S * R.Rhs;
        for (const Term &T : R.Terms)
          Accumulate(T.Var, -S * T.Coef);
      }
    }
    if (!Ok) {
      for (int V : Touched)
        Coef[V] = 0.0;
      continue;
    }

    // sum Coef . x + Const >= F0  ->  sum (-Coef) . x <= Const - F0.
    Candidate Cand;
    for (int V : Touched) {
      const double A = -Coef[V];
      Coef[V] = 0.0;
      if (std::abs(A) >= CoefDrop)
        Cand.C.Terms.push_back({V, A});
    }
    Cand.C.Rhs = Const - F0;
    Cand.Score = scoreCut(Cand.C, X, Opts);
    if (Cand.Score >= Opts.MinViolation)
      Cands.push_back(std::move(Cand));
  }
  return admit(Cands, Opts, Pool);
}

int separateDivisor(const Model &M, const std::vector<bool> &IsInteger,
                    const std::vector<double> &X, const CutOptions &Opts,
                    CutPool &Pool) {
  std::vector<Candidate> Cands;
  std::vector<double> Divisors;

  for (int R = 0; R < M.numRows(); ++R) {
    const Row &Rw = M.row(R);
    if (Rw.Kind == RowKind::GE || Rw.Terms.empty())
      continue;
    bool Ok = true;
    for (const Term &T : Rw.Terms)
      if (T.Coef < 0.0 || !IsInteger[T.Var] || M.var(T.Var).Lower < 0.0) {
        Ok = false;
        break;
      }
    if (!Ok)
      continue;

    // The row's own distinct coefficients >= 2 are the divisors: dividing
    // by a present coefficient turns that column's entry into exactly 1
    // and floors everything smaller away, the strongest single-row
    // rounding available without enumeration.
    Divisors.clear();
    for (const Term &T : Rw.Terms) {
      if (T.Coef < 2.0)
        continue;
      bool Dup = false;
      for (double D : Divisors)
        if (std::abs(D - T.Coef) < 1e-9) {
          Dup = true;
          break;
        }
      if (!Dup && Divisors.size() < 8)
        Divisors.push_back(T.Coef);
    }

    for (double D : Divisors) {
      Candidate Cand;
      for (const Term &T : Rw.Terms) {
        // The 1e-9 nudge reads 6.99999999 back as the 7 it arithmetically
        // is; genuine sub-epsilon coefficient noise is below it.
        const double A = std::floor(T.Coef / D + 1e-9);
        if (A != 0.0)
          Cand.C.Terms.push_back({T.Var, A});
      }
      Cand.C.Rhs = std::floor(Rw.Rhs / D + 1e-9);
      Cand.Score = scoreCut(Cand.C, X, Opts);
      if (Cand.Score >= Opts.MinViolation)
        Cands.push_back(std::move(Cand));
    }
  }
  return admit(Cands, Opts, Pool);
}

} // namespace aqua::lp
