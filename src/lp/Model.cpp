//===- Model.cpp - Linear program description ------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Model.h"

#include "aqua/support/StringUtils.h"

#include <cmath>

using namespace aqua;
using namespace aqua::lp;

double Model::objectiveValue(const std::vector<double> &Values) const {
  assert(Values.size() == Vars.size() && "value vector size mismatch");
  double Obj = 0.0;
  for (size_t I = 0; I < Vars.size(); ++I)
    Obj += Vars[I].ObjCoef * Values[I];
  return Obj;
}

double Model::maxViolation(const std::vector<double> &Values) const {
  assert(Values.size() == Vars.size() && "value vector size mismatch");
  double Worst = 0.0;
  for (size_t I = 0; I < Vars.size(); ++I) {
    const Variable &V = Vars[I];
    if (V.Lower != -Infinity)
      Worst = std::max(Worst, V.Lower - Values[I]);
    if (V.Upper != Infinity)
      Worst = std::max(Worst, Values[I] - V.Upper);
  }
  for (const Row &R : Rows) {
    double Lhs = 0.0;
    for (const Term &T : R.Terms)
      Lhs += T.Coef * Values[T.Var];
    switch (R.Kind) {
    case RowKind::LE:
      Worst = std::max(Worst, Lhs - R.Rhs);
      break;
    case RowKind::GE:
      Worst = std::max(Worst, R.Rhs - Lhs);
      break;
    case RowKind::EQ:
      Worst = std::max(Worst, std::fabs(Lhs - R.Rhs));
      break;
    }
  }
  return Worst;
}

std::string Model::str() const {
  std::string Out = MaximizeFlag ? "maximize" : "minimize";
  Out += "\n  ";
  bool First = true;
  for (size_t I = 0; I < Vars.size(); ++I) {
    if (Vars[I].ObjCoef == 0.0)
      continue;
    if (!First)
      Out += " + ";
    Out += format("%g %s", Vars[I].ObjCoef, Vars[I].Name.c_str());
    First = false;
  }
  if (First)
    Out += "0";
  Out += "\nsubject to\n";
  for (const Row &R : Rows) {
    Out += "  " + R.Name + ": ";
    for (size_t I = 0; I < R.Terms.size(); ++I) {
      if (I != 0)
        Out += " + ";
      Out += format("%g %s", R.Terms[I].Coef, Vars[R.Terms[I].Var].Name.c_str());
    }
    switch (R.Kind) {
    case RowKind::LE:
      Out += " <= ";
      break;
    case RowKind::GE:
      Out += " >= ";
      break;
    case RowKind::EQ:
      Out += " == ";
      break;
    }
    Out += format("%g\n", R.Rhs);
  }
  Out += "bounds\n";
  for (const Variable &V : Vars) {
    Out += format("  %g <= %s", V.Lower, V.Name.c_str());
    if (V.Upper != Infinity)
      Out += format(" <= %g", V.Upper);
    Out += "\n";
  }
  return Out;
}
