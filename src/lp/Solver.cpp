//===- Solver.cpp - Presolve-enabled LP entry point -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Solver.h"

#include "aqua/lp/RevisedSimplex.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Timer.h"
#include "aqua/obs/Trace.h"

#include <cstring>

using namespace aqua;
using namespace aqua::lp;

namespace {

/// FNV-1a over raw bytes; the shape hash needs stability within a build,
/// not across platforms (warm bases live in process memory and in the
/// solve store, both consumed by the same binary family).
struct ShapeHasher {
  std::uint64_t H = 1469598103934665603ULL;
  void bytes(const void *P, size_t N) {
    const unsigned char *B = static_cast<const unsigned char *>(P);
    for (size_t I = 0; I < N; ++I) {
      H ^= B[I];
      H *= 1099511628211ULL;
    }
  }
  void add(std::uint64_t V) { bytes(&V, sizeof(V)); }
  void add(double V) {
    std::uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    add(Bits);
  }
};

Solution runSimplex(const Model &M, const SolverOptions &Opts,
                    SolveInfo *Info) {
  if (Opts.Engine != LpEngine::Revised)
    return solveSimplex(M, Opts.Simplex);

  const bool WantBasis = Opts.CaptureBasis || Opts.WarmStart != nullptr;
  if (!WantBasis)
    return solveRevisedSimplex(M, Opts.Simplex);

  const std::uint64_t Shape = modelShapeHash(M);
  if (Info)
    Info->ShapeHash = Shape;
  const Basis *Warm = (Opts.WarmStart && Opts.WarmShapeHash == Shape)
                          ? Opts.WarmStart.get()
                          : nullptr;
  std::shared_ptr<const Basis> Captured;
  Solution Sol = solveRevisedSimplex(M, Opts.Simplex, Warm,
                                     Opts.CaptureBasis ? &Captured : nullptr);
  if (Info) {
    Info->OptBasis = std::move(Captured);
    Info->WarmStarted = Warm != nullptr;
  }
  if (Warm)
    obs::metrics().counter("lp.warm_shape_repairs").add();
  return Sol;
}

} // namespace

std::uint64_t aqua::lp::modelShapeHash(const Model &M) {
  ShapeHasher H;
  H.bytes("aqua.lp.shape.v1", 16);
  H.add(std::uint64_t(M.isMaximize()));
  H.add(std::uint64_t(M.numVars()));
  for (int V = 0; V < M.numVars(); ++V)
    H.add(M.var(V).ObjCoef);
  H.add(std::uint64_t(M.numRows()));
  for (int R = 0; R < M.numRows(); ++R) {
    const Row &Rw = M.row(R);
    H.add(std::uint64_t(Rw.Kind));
    H.add(std::uint64_t(Rw.Terms.size()));
    for (const Term &T : Rw.Terms) {
      H.add(std::uint64_t(T.Var));
      H.add(T.Coef);
    }
  }
  return H.H;
}

Solution aqua::lp::solve(const Model &M, const SolverOptions &Opts,
                         SolveInfo *Info) {
  obs::SpanGuard Span("lp.solve", "lp");
  Span.arg("rows", M.numRows());
  Span.arg("vars", M.numVars());
  WallTimer Timer;
  if (!Opts.Presolve) {
    Solution Sol = runSimplex(M, Opts, Info);
    Sol.Seconds = Timer.seconds();
    Span.arg("status", solveStatusName(Sol.Status));
    if (Info)
      Span.arg("warm", Info->WarmStarted ? "1" : "0");
    return Sol;
  }

  Presolved P = Presolved::run(M);
  if (Info) {
    Info->Presolve = P.stats();
    Info->ReducedRows = P.reduced().numRows();
    Info->ReducedVars = P.reduced().numVars();
  }
  if (P.provenInfeasible()) {
    Solution Sol;
    Sol.Status = SolveStatus::Infeasible;
    Sol.Seconds = Timer.seconds();
    Span.arg("status", "infeasible_presolve");
    return Sol;
  }

  Solution Reduced = runSimplex(P.reduced(), Opts, Info);
  Solution Sol;
  Sol.Status = Reduced.Status;
  Sol.Iterations = Reduced.Iterations;
  Sol.Seconds = Timer.seconds();
  if (Reduced.Status == SolveStatus::Optimal) {
    Sol.Values = P.postsolve(Reduced.Values);
    Sol.Objective = M.objectiveValue(Sol.Values);
  }
  Span.arg("status", solveStatusName(Sol.Status));
  if (Info)
    Span.arg("warm", Info->WarmStarted ? "1" : "0");
  return Sol;
}
