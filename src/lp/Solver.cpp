//===- Solver.cpp - Presolve-enabled LP entry point -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Solver.h"

#include "aqua/support/Timer.h"

using namespace aqua;
using namespace aqua::lp;

Solution aqua::lp::solve(const Model &M, const SolverOptions &Opts,
                         SolveInfo *Info) {
  WallTimer Timer;
  if (!Opts.Presolve) {
    Solution Sol = solveSimplex(M, Opts.Simplex);
    Sol.Seconds = Timer.seconds();
    return Sol;
  }

  Presolved P = Presolved::run(M);
  if (Info) {
    Info->Presolve = P.stats();
    Info->ReducedRows = P.reduced().numRows();
    Info->ReducedVars = P.reduced().numVars();
  }
  if (P.provenInfeasible()) {
    Solution Sol;
    Sol.Status = SolveStatus::Infeasible;
    Sol.Seconds = Timer.seconds();
    return Sol;
  }

  Solution Reduced = solveSimplex(P.reduced(), Opts.Simplex);
  Solution Sol;
  Sol.Status = Reduced.Status;
  Sol.Iterations = Reduced.Iterations;
  Sol.Seconds = Timer.seconds();
  if (Reduced.Status == SolveStatus::Optimal) {
    Sol.Values = P.postsolve(Reduced.Values);
    Sol.Objective = M.objectiveValue(Sol.Values);
  }
  return Sol;
}
