//===- Solver.cpp - Presolve-enabled LP entry point -------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lp/Solver.h"

#include "aqua/lp/RevisedSimplex.h"
#include "aqua/obs/Timer.h"

using namespace aqua;
using namespace aqua::lp;

namespace {

Solution runSimplex(const Model &M, const SolverOptions &Opts) {
  if (Opts.Engine == LpEngine::Revised)
    return solveRevisedSimplex(M, Opts.Simplex);
  return solveSimplex(M, Opts.Simplex);
}

} // namespace

Solution aqua::lp::solve(const Model &M, const SolverOptions &Opts,
                         SolveInfo *Info) {
  WallTimer Timer;
  if (!Opts.Presolve) {
    Solution Sol = runSimplex(M, Opts);
    Sol.Seconds = Timer.seconds();
    return Sol;
  }

  Presolved P = Presolved::run(M);
  if (Info) {
    Info->Presolve = P.stats();
    Info->ReducedRows = P.reduced().numRows();
    Info->ReducedVars = P.reduced().numVars();
  }
  if (P.provenInfeasible()) {
    Solution Sol;
    Sol.Status = SolveStatus::Infeasible;
    Sol.Seconds = Timer.seconds();
    return Sol;
  }

  Solution Reduced = runSimplex(P.reduced(), Opts);
  Solution Sol;
  Sol.Status = Reduced.Status;
  Sol.Iterations = Reduced.Iterations;
  Sol.Seconds = Timer.seconds();
  if (Reduced.Status == SolveStatus::Optimal) {
    Sol.Values = P.postsolve(Reduced.Values);
    Sol.Objective = M.objectiveValue(Sol.Values);
  }
  return Sol;
}
