//===- Compiler.cpp - AIS to bytecode lowering ----------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/vm/Compiler.h"

#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"
#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::ir;
using namespace aqua::vm;

namespace {

struct CompileMetrics {
  obs::Counter &Programs = obs::metrics().counter("vm.compile.programs");
  obs::Counter &Instrs = obs::metrics().counter("vm.compile.instrs");
};

CompileMetrics &met() {
  static CompileMetrics M;
  return M;
}

/// Dense key for a location; must match the simulator's locKey so slot
/// order reproduces its std::map iteration order.
int locKey(const Loc &L) {
  return (static_cast<int>(L.Kind) << 20) | (L.Index << 4) |
         static_cast<int>(L.Sub);
}

bool isFunctionalUnit(LocKind Kind) {
  return Kind == LocKind::Mixer || Kind == LocKind::Heater ||
         Kind == LocKind::Sensor || Kind == LocKind::Separator;
}

/// Replicates the simulator's planRelativeMoves: the consuming unit is
/// filled to capacity at the requested part ratio. The arithmetic
/// (MaxCapacityNl * parts / total, in this association) must stay
/// identical for bit-for-bit equivalence.
std::vector<double> planRelativeMoves(const AISProgram &Prog,
                                      const core::MachineSpec &Spec) {
  std::vector<double> Planned(Prog.Instrs.size(), -1.0);
  std::vector<char> Done(Prog.Instrs.size(), 0);
  for (size_t I = 0; I < Prog.Instrs.size(); ++I) {
    const Instruction &In = Prog.Instrs[I];
    if (In.Op != Opcode::Move || In.RelParts <= 0 || Done[I])
      continue;
    std::vector<size_t> Group;
    std::int64_t Total = 0;
    for (size_t J = I; J < Prog.Instrs.size(); ++J) {
      const Instruction &C = Prog.Instrs[J];
      bool SameUnit = C.Dst.Kind == In.Dst.Kind && C.Dst.Index == In.Dst.Index;
      if (C.Op == Opcode::Move && SameUnit && C.RelParts > 0) {
        Group.push_back(J);
        Total += C.RelParts;
        continue;
      }
      if (SameUnit && C.Op != Opcode::Move && C.Op != Opcode::MoveAbs &&
          C.Op != Opcode::Input)
        break; // The consuming operation.
    }
    for (size_t J : Group) {
      Planned[J] = Spec.MaxCapacityNl *
                   static_cast<double>(Prog.Instrs[J].RelParts) /
                   static_cast<double>(Total);
      Done[J] = 1;
    }
  }
  return Planned;
}

} // namespace

Expected<Program> aqua::vm::compile(const AISProgram &P,
                                    const CompileOptions &Opts) {
  AQUA_TRACE_SPAN("vm.compile", "vm");
  Program Out;
  Out.Spec = Opts.Spec;

  // ----- Slot assignment: every referenced location, in ascending locKey
  // order (the simulator's Contents map order).
  std::map<int, Loc> Locs;
  auto intern = [&Locs](const Loc &L) {
    if (L.valid())
      Locs.emplace(locKey(L), L);
  };
  for (const Instruction &I : P.Instrs) {
    intern(I.Dst);
    intern(I.Src);
    if (I.Op == Opcode::SeparateAF || I.Op == Opcode::SeparateLC) {
      Loc Sub = I.Dst;
      Sub.Sub = SubPort::Out1;
      intern(Sub);
      Sub.Sub = SubPort::Matrix;
      intern(Sub);
      Sub.Sub = SubPort::Pusher;
      intern(Sub);
    }
  }
  if (Locs.size() >= NoSlot)
    return Expected<Program>::error(
        format("program references %zu locations; the bytecode operand "
               "space holds %u",
               Locs.size(), static_cast<unsigned>(NoSlot)));
  std::map<int, std::uint16_t> SlotOf;
  for (const auto &[Key, L] : Locs) {
    SlotOf[Key] = static_cast<std::uint16_t>(Out.NumSlots++);
    Out.SlotIsFunctionalUnit.push_back(isFunctionalUnit(L.Kind) ? 1 : 0);
  }
  auto slot = [&SlotOf](const Loc &L) {
    return L.valid() ? SlotOf.at(locKey(L)) : NoSlot;
  };

  // ----- Fluid-name interning (sorted ids; composition rows index by
  // these).
  std::set<std::string> FluidSet;
  for (const Instruction &I : P.Instrs)
    if (I.Op == Opcode::Input)
      FluidSet.insert(I.Note);
  Out.FluidNames.assign(FluidSet.begin(), FluidSet.end());
  if (Out.FluidNames.size() > 0xffff)
    return Expected<Program>::error(
        format("program draws %zu distinct fluids; the bytecode id space "
               "holds 65536",
               Out.FluidNames.size()));
  std::map<std::string, std::uint16_t> FluidId;
  for (size_t I = 0; I < Out.FluidNames.size(); ++I)
    FluidId[Out.FluidNames[I]] = static_cast<std::uint16_t>(I);

  // ----- Constant-folded volumes: relative part counts planned once, all
  // metered volumes in one patchable table.
  std::vector<double> Planned = planRelativeMoves(P, Opts.Spec);

  // ----- Regeneration slices: the backward slice of every producing node,
  // resolved to sorted instruction indices, shared per node.
  std::map<NodeId, std::vector<int>> NodeInstrs;
  for (size_t I = 0; I < P.Instrs.size(); ++I)
    if (P.Instrs[I].Node != InvalidNode)
      NodeInstrs[P.Instrs[I].Node].push_back(static_cast<int>(I));
  std::map<NodeId, std::pair<std::int32_t, std::int32_t>> SliceOf;
  auto sliceFor = [&](NodeId N) -> std::pair<std::int32_t, std::int32_t> {
    if (!Opts.Graph || N == InvalidNode)
      return {NoSlice, 0};
    auto It = SliceOf.find(N);
    if (It != SliceOf.end())
      return It->second;
    std::set<int> Replay;
    for (NodeId S : Opts.Graph->backwardSlice(N)) {
      auto NI = NodeInstrs.find(S);
      if (NI == NodeInstrs.end())
        continue;
      for (int Idx : NI->second)
        Replay.insert(Idx);
    }
    std::pair<std::int32_t, std::int32_t> Slice = {
        static_cast<std::int32_t>(Out.RegenSlices.size()),
        static_cast<std::int32_t>(Replay.size())};
    Out.RegenSlices.insert(Out.RegenSlices.end(), Replay.begin(), Replay.end());
    SliceOf[N] = Slice;
    return Slice;
  };

  // ----- Instruction lowering (1:1, same indices).
  Out.Code.reserve(P.Instrs.size());
  Out.InstrText.reserve(P.Instrs.size());
  Out.SrcText.reserve(P.Instrs.size());
  for (size_t Idx = 0; Idx < P.Instrs.size(); ++Idx) {
    const Instruction &I = P.Instrs[Idx];
    Instr B;
    B.Orig = I.Op;
    B.Dst = slot(I.Dst);
    B.Src = slot(I.Src);
    B.DstIsOutput = I.Dst.Kind == LocKind::OutputPort;
    B.Seconds = I.Seconds;
    std::tie(B.RegenBegin, B.RegenCount) = sliceFor(I.Node);

    switch (I.Op) {
    case Opcode::Input:
      B.Code = Op::Input;
      B.Name = FluidId.at(I.Note);
      break;
    case Opcode::Move:
      if (I.RelParts > 0) {
        B.Code = Op::MoveVol;
        B.VolIdx = static_cast<std::uint32_t>(Out.VolumeTable.size());
        Out.VolumeTable.push_back(Planned[Idx]);
      } else {
        B.Code = Op::MoveAll;
      }
      break;
    case Opcode::MoveAbs:
      B.Code = Op::MoveVol;
      B.VolIdx = static_cast<std::uint32_t>(Out.VolumeTable.size());
      Out.VolumeTable.push_back(I.VolumeNl);
      break;
    case Opcode::Mix:
      B.Code = Op::Mix;
      break;
    case Opcode::Incubate:
      B.Code = Op::Incubate;
      break;
    case Opcode::Concentrate:
      B.Code = Op::Concentrate;
      break;
    case Opcode::SeparateAF:
    case Opcode::SeparateLC: {
      B.Code = Op::Separate;
      Loc Sub = I.Dst;
      Sub.Sub = SubPort::Out1;
      B.Out1 = slot(Sub);
      Sub.Sub = SubPort::Matrix;
      B.Matrix = slot(Sub);
      Sub.Sub = SubPort::Pusher;
      B.Pusher = slot(Sub);
      break;
    }
    case Opcode::SenseOD:
    case Opcode::SenseFL:
      B.Code = Op::Sense;
      if (Out.SenseNames.size() >= 0xffff)
        return Expected<Program>::error(
            format("program records %zu sense readings; the bytecode id "
                   "space holds 65535",
                   Out.SenseNames.size() + 1));
      B.Name = static_cast<std::uint16_t>(Out.SenseNames.size());
      Out.SenseNames.push_back(I.Note);
      break;
    case Opcode::Output:
      B.Code = Op::Output;
      break;
    }

    Out.Code.push_back(B);
    Out.InstrText.push_back(I.str());
    Out.SrcText.push_back(I.Src.str());
  }

  met().Programs.add();
  met().Instrs.add(static_cast<std::uint64_t>(Out.Code.size()));
  return Out;
}
