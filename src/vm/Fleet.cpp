//===- Fleet.cpp - Many-chip fleet simulation -----------------------------------===//
//
// Part of AquaVol. MIT license.
//
// A chip's normal path mirrors runtime::executePartitioned step for step
// (same availability chain, same dispensing, same RNG stream layout:
// yields from Seed ^ 0xa55a, partition P simulated at Seed + 17 * P), so
// with online re-management disabled a ChipResult is bit-for-bit equal to
// a PartitionRunResult. The difference is compile-once execution: instead
// of regenerating AIS per partition per run, the chip patches the shared
// segment template's volume table, guarded by the residue-shape check
// (the single volume-dependent codegen decision).
//
//===----------------------------------------------------------------------===//

#include "aqua/vm/Fleet.h"

#include "aqua/core/Manager.h"
#include "aqua/core/Rounding.h"
#include "aqua/obs/Log.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"
#include "aqua/support/Random.h"
#include "aqua/support/StringUtils.h"
#include "aqua/vm/Compiler.h"
#include "aqua/vm/VM.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace aqua::vm;

namespace {

struct FleetMetrics {
  obs::Counter &Chips = obs::metrics().counter("vm.fleet.chips");
  obs::Counter &ChipsFailed = obs::metrics().counter("vm.fleet.chips_failed");
  obs::Counter &Segments = obs::metrics().counter("vm.fleet.segments");
  obs::Counter &OnlineRemanages =
      obs::metrics().counter("vm.fleet.online_remanages");
  obs::Counter &PartitionReruns =
      obs::metrics().counter("vm.fleet.partition_reruns");
  obs::Counter &SegmentRecompiles =
      obs::metrics().counter("vm.fleet.segment_recompiles");
  obs::Gauge &MakespanSec = obs::metrics().gauge("vm.fleet.makespan_sec");
  obs::Gauge &ReservoirWaitSec =
      obs::metrics().gauge("vm.fleet.reservoir_wait_sec");
};

FleetMetrics &met() {
  static FleetMetrics M;
  return M;
}

/// Extracts one partition as a standalone graph (the same construction as
/// runtime::executePartitioned: members sorted, in-edges in plan order, so
/// subgraph floating-point summation orders match the plan's).
FleetSegment extractSegment(const PartitionPlan &Plan, int PartIndex) {
  const AssayGraph &PG = Plan.Graph;
  FleetSegment S;
  std::vector<NodeId> Members = Plan.Parts[PartIndex].Members;
  std::sort(Members.begin(), Members.end());
  for (NodeId N : Members) {
    const Node &Src = PG.node(N);
    NodeId Clone = S.SubG.addNode(Src.Kind, Src.Name);
    Node &Dst = S.SubG.node(Clone);
    Dst.OutFraction = Src.OutFraction;
    Dst.UnknownVolume = Src.UnknownVolume;
    Dst.NoExcess = Src.NoExcess;
    Dst.ExcessShare = Src.ExcessShare;
    Dst.Params = Src.Params;
    S.ToPlanNode.push_back(N);
    S.FromPlanNode[N] = Clone;
  }
  for (NodeId N : Members)
    for (EdgeId E : PG.inEdges(N)) {
      const Edge &Ed = PG.edge(E);
      assert(S.FromPlanNode.count(Ed.Src) &&
             "partition member consumes a non-member value");
      S.SubG.addEdge(S.FromPlanNode[Ed.Src], S.FromPlanNode[N], Ed.Fraction);
      S.ToPlanEdge.push_back(E);
    }
  return S;
}

/// Shared refilling pools, one per external input fluid. All timing is on
/// the fleet's virtual clock; draws always succeed volumetrically and a
/// shortage only charges a refill stall (which keeps per-chip volume math
/// independent of contention and thread count).
class ReservoirBank {
public:
  ReservoirBank(double CapacityNl, double RefillNlPerSec)
      : CapacityNl(CapacityNl), RefillNlPerSec(RefillNlPerSec) {}

  double draw(const std::string &Fluid, double Nl, double AtSec) {
    std::lock_guard<std::mutex> Lock(M);
    auto [It, Inserted] = Pools.try_emplace(Fluid);
    Pool &P = It->second;
    if (Inserted)
      P.AvailableNl = CapacityNl;
    if (AtSec > P.LastSec) {
      P.AvailableNl = std::min(CapacityNl,
                               P.AvailableNl +
                                   (AtSec - P.LastSec) * RefillNlPerSec);
      P.LastSec = AtSec;
    }
    if (P.AvailableNl + 1e-12 >= Nl) {
      P.AvailableNl -= Nl;
      return 0.0;
    }
    double Deficit = Nl - P.AvailableNl;
    P.AvailableNl = 0.0;
    if (RefillNlPerSec <= 0.0)
      return 0.0;
    double Wait = Deficit / RefillNlPerSec;
    P.LastSec = AtSec + Wait; // The stall consumed the refill stream.
    return Wait;
  }

private:
  struct Pool {
    double AvailableNl = 0.0;
    double LastSec = 0.0;
  };
  std::mutex M;
  std::map<std::string, Pool> Pools;
  double CapacityNl;
  double RefillNlPerSec;
};

/// One chip's execution state across segments. Only one worker touches a
/// runner at a time (the virtual-time queue holds a chip at most once).
class ChipRunner : public Hooks {
public:
  ChipRunner(const FleetImage &Image, const FleetOptions &Opts,
             std::uint64_t Seed, int Chip, ReservoirBank *Bank)
      : Image(Image), Plan(Image.Plan), Opts(Opts), Seed(Seed), Chip(Chip),
        Bank(Bank), Yields(Seed ^ 0xa55aULL) {
    Res.Volumes.NodeVolumeNl.assign(Plan.Graph.numNodeSlots(), 0.0);
    Res.Volumes.EdgeVolumeNl.assign(Plan.Graph.numEdgeSlots(), 0.0);
    Available.assign(Plan.Inputs.size(), -1.0);
  }

  bool done() const {
    return NextPart >= Image.Segments.size() || !Res.Error.empty();
  }
  double clock() const { return Clock; }

  ChipResult finalize() {
    Res.Completed = Res.Error.empty();
    return std::move(Res);
  }

  /// Runs the chip's next partition (dispense, patch-or-recompile,
  /// execute, publish), applying Section 3.5 online re-management when
  /// dispensing underflows.
  void runNextPartition(Interp &I) {
    std::size_t P = NextPart;
    const FleetSegment &Seg = Image.Segments[P];

    // ----- Constrained-input availability from earlier measurements.
    if (!refreshAvailability(P))
      return;

    int Attempt = 0;
    for (;;) {
      VolumeAssignment V = dispensePartition(Plan, static_cast<int>(P),
                                             Available, Image.Spec);
      for (NodeId N : Plan.Parts[P].Members) {
        Res.Volumes.NodeVolumeNl[N] = V.NodeVolumeNl[N];
        for (EdgeId E : Plan.Graph.inEdges(N))
          Res.Volumes.EdgeVolumeNl[E] = V.EdgeVolumeNl[E];
      }
      VolumeAssignment SubV;
      SubV.NodeVolumeNl.assign(Seg.SubG.numNodeSlots(), 0.0);
      SubV.EdgeVolumeNl.assign(Seg.SubG.numEdgeSlots(), 0.0);
      for (int J = 0; J < Seg.SubG.numNodeSlots(); ++J)
        SubV.NodeVolumeNl[J] = V.NodeVolumeNl[Seg.ToPlanNode[J]];
      for (int J = 0; J < Seg.SubG.numEdgeSlots(); ++J)
        SubV.EdgeVolumeNl[J] = V.EdgeVolumeNl[Seg.ToPlanEdge[J]];

      IntegerAssignment IVol =
          roundToLeastCount(Seg.SubG, SubV, Image.Spec);
      if (!IVol.Underflow) {
        VolumeAssignment Metered = integerToNl(Seg.SubG, IVol, Image.Spec);
        if (!execSegment(I, P, Seg, Seg.SubG, Metered, /*AllowPatch=*/true))
          return;
        // Publishing reads the *dispensed* (pre-rounding) volumes, like
        // executePartitioned.
        publishMeasured(P, Seg, Seg.SubG, SubV);
        ++NextPart;
        return;
      }

      // ----- Dispensing underflowed the least count (Section 3.5).
      if (!Opts.EnableOnlineRemanage) {
        fail(format("partition %zu underflows the least count after "
                    "dispensing (scarce upstream measurement); regeneration "
                    "of the producing slice is required",
                    P));
        return;
      }
      if (Attempt++ >= Opts.MaxOnlineRetries) {
        fail(format("partition %zu: online re-management exhausted after %d "
                    "attempts",
                    P, Opts.MaxOnlineRetries));
        return;
      }
      int Re = tryRemanage(I, P, Seg);
      if (Re > 0) {
        if (Res.Error.empty())
          ++NextPart;
        return;
      }
      if (Re < 0)
        return; // Hard error recorded.
      // The manager could not help under this availability: regeneration
      // storm -- re-run the producing partitions for a fresh measurement.
      if (!rerunProducers(I, P))
        return;
    }
  }

  // Hooks: shared-reservoir contention for external input fluids.
  double onInputDraw(int FluidId, double DrawNl, double VirtualSec) override {
    if (!Bank || !CurFluids)
      return 0.0;
    const std::string &Name = (*CurFluids)[FluidId];
    if (!Image.ExternalFluids.count(Name))
      return 0.0;
    double Wait = Bank->draw(Name, DrawNl, ClockBase + VirtualSec);
    Res.ReservoirWaitSec += Wait;
    return Wait;
  }

private:
  void fail(std::string Msg) {
    if (Res.Error.empty())
      Res.Error = std::move(Msg);
  }

  double drawYield() {
    if (Opts.FixedSeparationYield >= 0.0)
      return Opts.FixedSeparationYield;
    return Opts.MinSeparationYield +
           (Opts.MaxSeparationYield - Opts.MinSeparationYield) *
               Yields.nextUnit();
  }

  bool refreshAvailability(std::size_t P) {
    for (int Ref : Plan.Parts[P].InputRefs) {
      const PartitionPlan::ConstrainedInput &CI = Plan.Inputs[Ref];
      if (CI.FromInputPort)
        continue; // Share * capacity, handled by dispensePartition.
      if (Plan.NodePartition[CI.Source] == static_cast<int>(P))
        continue; // Same-partition input: scale-invariant.
      auto It = Measured.find(CI.Source);
      if (It == Measured.end()) {
        fail(format("partition %zu consumes '%s' before it was measured", P,
                    Plan.Graph.node(CI.Source).Name.c_str()));
        return false;
      }
      Available[Ref] = CI.Share.toDouble() * It->second;
    }
    return true;
  }

  /// Patches (or recompiles) and executes one segment; accumulates its
  /// SimResult into the chip.
  bool execSegment(Interp &I, std::size_t P, const FleetSegment &Seg,
                   const AssayGraph &UsedG, const VolumeAssignment &Metered,
                   bool AllowPatch) {
    RunOptions RO;
    RO.EnableRegeneration = Opts.EnableRegeneration;
    RO.Seed = Seed + 17 * P;
    RO.MinSeparationYield = Opts.MinSeparationYield;
    RO.MaxSeparationYield = Opts.MaxSeparationYield;
    RO.FixedSeparationYield = Opts.FixedSeparationYield;
    RO.MoveSeconds = Opts.MoveSeconds;
    RO.MaxRegenRetries = Opts.MaxRegenRetries;
    RO.FleetChip = Chip;

    const Program *Run = nullptr;
    if (AllowPatch && residueShape(Seg.SubG, Metered) == Seg.ResidueShape) {
      // Fast path: the template's instruction stream is valid for these
      // volumes; re-meter by patching the volume table.
      I.bind(Seg.Prog);
      for (std::size_t J = 0; J < Seg.MeteredEdgeOfInstr.size(); ++J) {
        EdgeId E = Seg.MeteredEdgeOfInstr[J];
        if (E >= 0)
          I.volume(Seg.Prog.Code[J].VolIdx) = Metered.EdgeVolumeNl[E];
      }
      Run = &Seg.Prog;
    } else {
      ++Res.SegmentRecompiles;
      met().SegmentRecompiles.add();
      codegen::CodegenOptions CG;
      CG.Mode = codegen::VolumeMode::Managed;
      CG.Volumes = &Metered;
      auto Prog = codegen::generateAIS(UsedG, {}, CG);
      if (!Prog.ok()) {
        fail(format("partition %zu codegen: %s", P, Prog.message().c_str()));
        return false;
      }
      CompileOptions CO;
      CO.Spec = Image.Spec;
      CO.Graph = &UsedG;
      auto BC = vm::compile(*Prog, CO);
      if (!BC.ok()) {
        fail(format("partition %zu compile: %s", P, BC.message().c_str()));
        return false;
      }
      Scratch = std::move(*BC);
      I.bind(Scratch);
      Run = &Scratch;
    }

    ClockBase = Clock;
    CurFluids = &Run->FluidNames;
    I.reset(RO);
    I.run(0, -1, Bank ? this : nullptr);
    runtime::SimResult Sim = I.finish();
    CurFluids = nullptr;

    met().Segments.add();
    Res.InstructionsExecuted +=
        static_cast<std::uint64_t>(Sim.InstructionsExecuted);
    if (!Sim.Completed) {
      fail(format("partition %zu: %s", P, Sim.Error.c_str()));
      return false;
    }
    Res.FluidSeconds += Sim.FluidSeconds;
    Res.Regenerations += Sim.Regenerations;
    for (runtime::SenseReading &Reading : Sim.Senses)
      Res.Senses.push_back(std::move(Reading));
    Res.DeliveredNl += Sim.DeliveredNl;
    Res.WasteNl += Sim.WasteNl;
    ++Res.PartitionsExecuted;
    Clock += Sim.FluidSeconds;
    return true;
  }

  /// Publishes this partition's outputs to later constrained inputs
  /// (unknown volumes "measured" by the yield stream standing in for the
  /// on-chip volume sensor). \p UsedVol holds pre-rounding volumes over
  /// \p UsedG, whose original node/edge ids coincide with Seg.SubG's.
  void publishMeasured(std::size_t P, const FleetSegment &Seg,
                       const AssayGraph &UsedG,
                       const VolumeAssignment &UsedVol) {
    for (NodeId N : Plan.Parts[P].Members) {
      const Node &Nd = Plan.Graph.node(N);
      bool FeedsConstrainedInput = false;
      for (const PartitionPlan::ConstrainedInput &CI : Plan.Inputs)
        if (CI.Source == N)
          FeedsConstrainedInput = true;
      if (!FeedsConstrainedInput)
        continue;
      NodeId S = Seg.FromPlanNode.at(N);
      double MeasuredNl;
      if (Nd.UnknownVolume) {
        double InputVol = 0.0;
        for (EdgeId E : UsedG.inEdges(S))
          InputVol += UsedVol.EdgeVolumeNl[E];
        MeasuredNl = InputVol * drawYield();
      } else {
        MeasuredNl = UsedVol.NodeVolumeNl[S];
      }
      Measured[N] = MeasuredNl;
      Res.MeasuredNl[Nd.Name] = MeasuredNl;
    }
  }

  /// Section 3.5 online re-management: re-solve the partition's subgraph
  /// with the most binding constrained input pinned at its measured
  /// availability. Returns 1 when the partition ran (or a hard error was
  /// recorded: -1), 0 when the manager cannot help (caller escalates to a
  /// regeneration storm).
  int tryRemanage(Interp &I, std::size_t P, const FleetSegment &Seg) {
    NodeId PinSub = InvalidNode;
    double PinVol = 0.0;
    double BestRatio = 0.0;
    for (int Ref : Plan.Parts[P].InputRefs) {
      const PartitionPlan::ConstrainedInput &CI = Plan.Inputs[Ref];
      if (CI.FromInputPort || Available[Ref] < 0.0)
        continue;
      double Vnorm = Plan.Vnorms.NodeVnorm[CI.Node].toDouble();
      double Ratio = Vnorm > 0.0 ? Available[Ref] / Vnorm : 1e300;
      if (PinSub == InvalidNode || Ratio < BestRatio) {
        BestRatio = Ratio;
        PinSub = Seg.FromPlanNode.at(CI.Node);
        PinVol = Available[Ref];
      }
    }
    if (PinSub == InvalidNode)
      return 0; // Nothing measurable to pin; storm.

    ManagerOptions MO;
    // The LP fallback ignores the pin, so stay on the DagSolve + transform
    // path, which honors it; availability is re-checked below regardless.
    MO.UseLPFallback = false;
    MO.DagOptions.PinnedNode = PinSub;
    MO.DagOptions.PinnedVolumeNl = PinVol;
    ManagerResult R = manageVolumes(Seg.SubG, Image.Spec, MO);
    if (!R.Feasible || R.Rounded.Underflow)
      return 0;
    for (int Ref : Plan.Parts[P].InputRefs) {
      const PartitionPlan::ConstrainedInput &CI = Plan.Inputs[Ref];
      if (CI.FromInputPort || Available[Ref] < 0.0)
        continue;
      NodeId S = Seg.FromPlanNode.at(CI.Node);
      if (R.Volumes.NodeVolumeNl[S] > Available[Ref] + 1e-9)
        return 0; // Solution overdraws the measured supply.
    }

    ++Res.OnlineRemanages;
    met().OnlineRemanages.add();
    AQUA_LOG_INFO("vm", "chip %d partition %zu: online re-management "
                        "(pinned %s nl, %d cascades, %d replications)",
                  Chip, P, formatTrimmed(PinVol, 3).c_str(),
                  R.CascadesApplied, R.ReplicationsApplied);

    VolumeAssignment Metered = integerToNl(R.Graph, R.Rounded, Image.Spec);
    bool Transformed = R.CascadesApplied + R.ReplicationsApplied > 0;
    if (!Transformed) {
      // Same structure: update the plan-level bookkeeping in place.
      for (int J = 0; J < Seg.SubG.numNodeSlots(); ++J)
        Res.Volumes.NodeVolumeNl[Seg.ToPlanNode[J]] = R.Volumes.NodeVolumeNl[J];
      for (int J = 0; J < Seg.SubG.numEdgeSlots(); ++J)
        Res.Volumes.EdgeVolumeNl[Seg.ToPlanEdge[J]] = R.Volumes.EdgeVolumeNl[J];
    }
    if (!execSegment(I, P, Seg, R.Graph, Metered, /*AllowPatch=*/!Transformed))
      return -1;
    publishMeasured(P, Seg, R.Graph, R.Volumes);
    return 1;
  }

  /// Regeneration storm: re-run every producing partition of \p P's
  /// constrained inputs for fresh measurements, then refresh availability.
  bool rerunProducers(Interp &I, std::size_t P) {
    std::set<int> Producers;
    for (int Ref : Plan.Parts[P].InputRefs) {
      const PartitionPlan::ConstrainedInput &CI = Plan.Inputs[Ref];
      if (CI.FromInputPort ||
          Plan.NodePartition[CI.Source] == static_cast<int>(P))
        continue;
      Producers.insert(Plan.NodePartition[CI.Source]);
    }
    if (Producers.empty()) {
      fail(format("partition %zu underflows and has no producing partition "
                  "to regenerate",
                  P));
      return false;
    }
    for (int Q : Producers) {
      const FleetSegment &Seg = Image.Segments[Q];
      VolumeAssignment V = dispensePartition(Plan, Q, Available, Image.Spec);
      VolumeAssignment SubV;
      SubV.NodeVolumeNl.assign(Seg.SubG.numNodeSlots(), 0.0);
      SubV.EdgeVolumeNl.assign(Seg.SubG.numEdgeSlots(), 0.0);
      for (int J = 0; J < Seg.SubG.numNodeSlots(); ++J)
        SubV.NodeVolumeNl[J] = V.NodeVolumeNl[Seg.ToPlanNode[J]];
      for (int J = 0; J < Seg.SubG.numEdgeSlots(); ++J)
        SubV.EdgeVolumeNl[J] = V.EdgeVolumeNl[Seg.ToPlanEdge[J]];
      IntegerAssignment IVol = roundToLeastCount(Seg.SubG, SubV, Image.Spec);
      if (IVol.Underflow) {
        fail(format("partition %d underflows while regenerating for "
                    "partition %zu",
                    Q, P));
        return false;
      }
      VolumeAssignment Metered = integerToNl(Seg.SubG, IVol, Image.Spec);
      if (!execSegment(I, Q, Seg, Seg.SubG, Metered, /*AllowPatch=*/true))
        return false;
      publishMeasured(Q, Seg, Seg.SubG, SubV);
      ++Res.PartitionReruns;
      met().PartitionReruns.add();
    }
    return refreshAvailability(P);
  }

  const FleetImage &Image;
  const PartitionPlan &Plan;
  const FleetOptions &Opts;
  std::uint64_t Seed;
  int Chip;
  ReservoirBank *Bank;
  SplitMix64 Yields;

  std::map<NodeId, double> Measured;
  std::vector<double> Available;
  std::size_t NextPart = 0;
  double Clock = 0.0;
  double ClockBase = 0.0;
  const std::vector<std::string> *CurFluids = nullptr;
  Program Scratch; ///< Keeps a recompiled segment alive during its run.
  ChipResult Res;
};

} // namespace

std::vector<char> aqua::vm::residueShape(const AssayGraph &G,
                                         const VolumeAssignment &V) {
  // Mirrors codegen's consumeUse: the only volume-dependent emission
  // decision is whether a fully-consumed interior (mix/incubate) value
  // without an explicit excess edge strands residue (In - Out > 1e-9) and
  // needs a clearing `output`.
  std::vector<char> Shape(G.numNodeSlots(), 0);
  for (NodeId N : G.liveNodes()) {
    const Node &Nd = G.node(N);
    if (Nd.Kind != NodeKind::Mix && Nd.Kind != NodeKind::Incubate)
      continue;
    bool HasExcess = false;
    for (EdgeId E : G.outEdges(N))
      if (G.node(G.edge(E).Dst).Kind == NodeKind::Excess)
        HasExcess = true;
    if (HasExcess)
      continue; // Decision fixed by structure.
    double In = 0.0, Out = 0.0;
    for (EdgeId E : G.inEdges(N))
      In += V.EdgeVolumeNl[E];
    for (EdgeId E : G.outEdges(N))
      if (G.node(G.edge(E).Dst).Kind != NodeKind::Excess)
        Out += V.EdgeVolumeNl[E];
    Shape[N] = In - Out > 1e-9 ? 1 : 0;
  }
  return Shape;
}

Expected<FleetImage> aqua::vm::compileFleetImage(const AssayGraph &G,
                                                 const MachineSpec &Spec) {
  AQUA_TRACE_SPAN("vm.fleet.compile", "vm");
  auto PlanE = buildPartitionPlan(G, Spec);
  if (!PlanE.ok())
    return Expected<FleetImage>::error("fleet planning: " + PlanE.message());

  FleetImage Img;
  Img.Plan = std::move(*PlanE);
  Img.Spec = Spec;
  for (NodeId N : G.liveNodes())
    if (G.node(N).Kind == NodeKind::Input)
      Img.ExternalFluids.insert(G.node(N).Name);

  // Reference metering at the nominal yield: the template's volumes only
  // seed the instruction structure; every chip re-meters per run.
  const double NominalYield = 0.45;
  const PartitionPlan &Plan = Img.Plan;
  std::map<NodeId, double> RefMeasured;
  std::vector<double> RefAvail(Plan.Inputs.size(), -1.0);
  VolumeAssignment PlanVol;
  PlanVol.NodeVolumeNl.assign(Plan.Graph.numNodeSlots(), 0.0);
  PlanVol.EdgeVolumeNl.assign(Plan.Graph.numEdgeSlots(), 0.0);

  for (std::size_t P = 0; P < Plan.Parts.size(); ++P) {
    for (int Ref : Plan.Parts[P].InputRefs) {
      const PartitionPlan::ConstrainedInput &CI = Plan.Inputs[Ref];
      if (CI.FromInputPort ||
          Plan.NodePartition[CI.Source] == static_cast<int>(P))
        continue;
      auto It = RefMeasured.find(CI.Source);
      if (It == RefMeasured.end())
        return Expected<FleetImage>::error(
            format("partition %zu consumes '%s' before any partition "
                   "produces it",
                   P, Plan.Graph.node(CI.Source).Name.c_str()));
      RefAvail[Ref] = CI.Share.toDouble() * It->second;
    }

    VolumeAssignment V =
        dispensePartition(Plan, static_cast<int>(P), RefAvail, Spec);
    for (NodeId N : Plan.Parts[P].Members) {
      PlanVol.NodeVolumeNl[N] = V.NodeVolumeNl[N];
      for (EdgeId E : Plan.Graph.inEdges(N))
        PlanVol.EdgeVolumeNl[E] = V.EdgeVolumeNl[E];
    }

    FleetSegment Seg = extractSegment(Plan, static_cast<int>(P));
    VolumeAssignment SubV;
    SubV.NodeVolumeNl.assign(Seg.SubG.numNodeSlots(), 0.0);
    SubV.EdgeVolumeNl.assign(Seg.SubG.numEdgeSlots(), 0.0);
    for (int J = 0; J < Seg.SubG.numNodeSlots(); ++J)
      SubV.NodeVolumeNl[J] = V.NodeVolumeNl[Seg.ToPlanNode[J]];
    for (int J = 0; J < Seg.SubG.numEdgeSlots(); ++J)
      SubV.EdgeVolumeNl[J] = V.EdgeVolumeNl[Seg.ToPlanEdge[J]];

    // Underflow here is fine: a template with degenerate volumes still has
    // the right structure for shape comparison, and chips never run it
    // unpatched.
    IntegerAssignment IVol = roundToLeastCount(Seg.SubG, SubV, Spec);
    VolumeAssignment Metered = integerToNl(Seg.SubG, IVol, Spec);

    codegen::CodegenOptions CG;
    CG.Mode = codegen::VolumeMode::Managed;
    CG.Volumes = &Metered;
    CG.EdgeOfInstr = &Seg.MeteredEdgeOfInstr;
    auto Prog = codegen::generateAIS(Seg.SubG, {}, CG);
    if (!Prog.ok())
      return Expected<FleetImage>::error(
          format("partition %zu codegen: %s", P, Prog.message().c_str()));
    Seg.ResidueShape = residueShape(Seg.SubG, Metered);

    CompileOptions CO;
    CO.Spec = Spec;
    CO.Graph = &Seg.SubG;
    auto BC = compile(*Prog, CO);
    if (!BC.ok())
      return Expected<FleetImage>::error(
          format("partition %zu compile: %s", P, BC.message().c_str()));
    Seg.Prog = std::move(*BC);

    for (NodeId N : Plan.Parts[P].Members) {
      const Node &Nd = Plan.Graph.node(N);
      bool Feeds = false;
      for (const PartitionPlan::ConstrainedInput &CI : Plan.Inputs)
        if (CI.Source == N)
          Feeds = true;
      if (!Feeds)
        continue;
      if (Nd.UnknownVolume) {
        double InputVol = 0.0;
        for (EdgeId E : Plan.Graph.inEdges(N))
          InputVol += PlanVol.EdgeVolumeNl[E];
        RefMeasured[N] = InputVol * NominalYield;
      } else {
        RefMeasured[N] = PlanVol.NodeVolumeNl[N];
      }
    }

    Img.Segments.push_back(std::move(Seg));
  }
  return Img;
}

ChipResult aqua::vm::runChip(const FleetImage &Image, const FleetOptions &Opts,
                             std::uint64_t Seed, int Chip) {
  ChipRunner R(Image, Opts, Seed, Chip, nullptr);
  Interp I;
  while (!R.done())
    R.runNextPartition(I);
  return R.finalize();
}

FleetResult aqua::vm::runFleet(const FleetImage &Image,
                               const FleetOptions &Opts) {
  obs::SpanGuard Span("vm.fleet.run", "vm");
  int NumChips = std::max(1, Opts.NumChips);
  int Threads = std::clamp(Opts.Threads, 1, 256);
  Span.arg("chips", NumChips);
  Span.arg("threads", Threads);

  ReservoirBank Bank(Opts.ReservoirCapacityNl, Opts.ReservoirRefillNlPerSec);
  ReservoirBank *BankP = Opts.SharedReservoirs ? &Bank : nullptr;

  std::vector<std::unique_ptr<ChipRunner>> Chips;
  Chips.reserve(NumChips);
  SplitMix64 SeedGen(Opts.Seed);
  for (int C = 0; C < NumChips; ++C)
    Chips.push_back(
        std::make_unique<ChipRunner>(Image, Opts, SeedGen.next(), C, BankP));

  // Shared virtual-time event queue: workers always advance the earliest
  // chip, one segment at a time. A chip is in the queue or in flight on
  // exactly one worker, never both.
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> Queue;
  for (int C = 0; C < NumChips; ++C)
    Queue.emplace(0.0, C);
  std::mutex QM;
  std::condition_variable CV;
  int InFlight = 0;

  auto Worker = [&] {
    Interp I;
    std::unique_lock<std::mutex> Lock(QM);
    for (;;) {
      while (Queue.empty() && InFlight > 0)
        CV.wait(Lock);
      if (Queue.empty())
        return; // No work left and none in flight.
      int C = Queue.top().second;
      Queue.pop();
      ++InFlight;
      Lock.unlock();
      Chips[C]->runNextPartition(I);
      Lock.lock();
      --InFlight;
      if (!Chips[C]->done())
        Queue.emplace(Chips[C]->clock(), C);
      CV.notify_all();
    }
  };

  if (Threads == 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (int T = 0; T < Threads; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  FleetResult R;
  R.Chips.reserve(NumChips);
  for (int C = 0; C < NumChips; ++C) {
    double Finish = Chips[C]->clock();
    ChipResult CR = Chips[C]->finalize();
    if (CR.Completed)
      ++R.ChipsCompleted;
    else
      ++R.ChipsFailed;
    R.InstructionsExecuted += CR.InstructionsExecuted;
    R.Regenerations += static_cast<std::uint64_t>(CR.Regenerations);
    R.OnlineRemanages += CR.OnlineRemanages;
    R.PartitionReruns += CR.PartitionReruns;
    R.SegmentRecompiles += CR.SegmentRecompiles;
    R.MakespanSec = std::max(R.MakespanSec, Finish);
    R.TotalFluidSeconds += CR.FluidSeconds;
    R.DeliveredNl += CR.DeliveredNl;
    R.WasteNl += CR.WasteNl;
    R.ReservoirWaitSec += CR.ReservoirWaitSec;
    R.Chips.push_back(std::move(CR));
  }

  met().Chips.add(static_cast<std::uint64_t>(NumChips));
  met().ChipsFailed.add(static_cast<std::uint64_t>(R.ChipsFailed));
  met().MakespanSec.add(R.MakespanSec);
  met().ReservoirWaitSec.add(R.ReservoirWaitSec);
  return R;
}
