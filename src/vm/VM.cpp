//===- VM.cpp - Register-VM bytecode interpreter --------------------------------===//
//
// Part of AquaVol. MIT license.
//
// The dispatch loop below is a line-for-line port of runtime::Simulator
// onto flat arrays. Equivalence is bit-for-bit, so every epsilon, every
// clamp, every expression association and every RNG draw site must match
// Simulator.cpp exactly; the `vm` differential oracle catches drift.
//
// Dense composition rows stand in for the simulator's string-keyed maps:
// a fluid absent from a map behaves identically to a 0.0 row entry
// (0*x/T == 0 and F + 0.0 == F for the non-negative fractions that occur
// here), so the arithmetic agrees double-for-double. The one observable
// difference is a tombstone: a map entry scaled to exactly 0.0 (possible
// only through a volume-0 fluid that still carries a composition) would
// appear as a zero-valued key in a sense reading, which finish() does not
// reproduce. No generated program reaches that state.
//
//===----------------------------------------------------------------------===//

#include "aqua/vm/VM.h"

#include "aqua/obs/Log.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"
#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace aqua;
using namespace aqua::vm;

namespace {

struct VmMetrics {
  obs::Counter &Runs = obs::metrics().counter("vm.runs");
  obs::Counter &Instructions = obs::metrics().counter("vm.instructions");
  obs::Counter &Regenerations = obs::metrics().counter("vm.regenerations");
  obs::Counter &Underflows = obs::metrics().counter("vm.underflows");
  obs::Counter &Overflows = obs::metrics().counter("vm.overflows");
  obs::Counter &SubLeastCountMoves =
      obs::metrics().counter("vm.sub_least_count_moves");
  obs::Gauge &InputNl = obs::metrics().gauge("vm.volume.input_nl");
  obs::Gauge &DeliveredNl = obs::metrics().gauge("vm.volume.delivered_nl");
  obs::Gauge &WasteNl = obs::metrics().gauge("vm.volume.waste_nl");
};

VmMetrics &met() {
  static VmMetrics M;
  return M;
}

} // namespace

void Interp::bind(const Program &P) {
  Prog = &P;
  NumSlots = P.NumSlots;
  NumFluids = P.numFluids();
  SlotVol.assign(NumSlots, 0.0);
  CompRows.assign(static_cast<std::size_t>(NumSlots) * NumFluids, 0.0);
  WriterIdx.assign(NumSlots, -1);
  VolumeTable.assign(P.VolumeTable.begin(), P.VolumeTable.end());
  InputDrawn.assign(NumFluids, 0.0);
  TakenComp.assign(NumFluids, 0.0);
  StashSlot.clear();
  StashVol.clear();
  StashComp.clear();
  SenseLog.clear();
  SenseComp.clear();
}

void Interp::reset(const RunOptions &O) {
  Opts = O;
  Rng = SplitMix64(O.Seed);
  Tracing = obs::Tracer::enabled();
  // Quantization only depends on the requested value, so fold it over the
  // (possibly patched) volume table once per run instead of per transfer;
  // regeneration replays re-execute MoveVol instructions many times over.
  // Fleet/volume() patches must land before reset() (they do: execSegment
  // patches, then resets).
  QuantVolTable.resize(VolumeTable.size());
  for (std::size_t I = 0; I < VolumeTable.size(); ++I)
    QuantVolTable[I] = quantize(VolumeTable[I]);
  std::fill(SlotVol.begin(), SlotVol.end(), 0.0);
  std::fill(CompRows.begin(), CompRows.end(), 0.0);
  std::fill(WriterIdx.begin(), WriterIdx.end(), -1);
  std::fill(InputDrawn.begin(), InputDrawn.end(), 0.0);
  StashSlot.clear();
  StashVol.clear();
  StashComp.clear();
  SenseLog.clear();
  SenseComp.clear();
  Error.clear();
  Regenerations = UnderflowEvents = OverflowEvents = 0;
  SubLeastCountMoves = InstructionsExecuted = 0;
  FluidSec = DeliveredNl = WasteNl = 0.0;
}

void Interp::fail(int Idx, std::string Msg) {
  if (!Error.empty())
    return; // Only the first error is kept (as in the simulator).
  Error = format("instr %d (%s): %s", Idx, Prog->InstrText[Idx].c_str(),
                 Msg.c_str());
  AQUA_LOG_WARN("vm", "execution failed at %s", Error.c_str());
}

double Interp::quantize(double VolNl) const {
  double Lc = Prog->Spec.LeastCountNl;
  return std::round(VolNl / Lc) * Lc;
}

double Interp::separationYield() {
  if (Opts.FixedSeparationYield >= 0.0)
    return Opts.FixedSeparationYield;
  return Opts.MinSeparationYield +
         (Opts.MaxSeparationYield - Opts.MinSeparationYield) * Rng.nextUnit();
}

void Interp::clearSlot(int Slot) {
  SlotVol[Slot] = 0.0;
  double *C = comp(Slot);
  std::fill(C, C + NumFluids, 0.0);
}

// Fluid::add with a dense row: scale own entries by V/Total, then fold the
// incoming entries in. Zero entries pass through both steps bit-unchanged,
// which is why both loops may skip them: fractions are never -0.0 here, so
// 0.0 * V / Total == +0.0 leaves the entry bit-identical, and x += 0.0 is
// the identity for every non-negative x. Rows are sparse (a unit holds a
// few of the program's fluids), so skipping turns 2*NumFluids divisions
// into a handful -- the single hottest win in the dispatch loop.
void Interp::addInto(int Slot, double AddVol, const double *AddComp) {
  if (AddVol <= 1e-12)
    return; // Other.empty() in Fluid::add.
  double V = SlotVol[Slot];
  double Total = V + AddVol;
  double *C = comp(Slot);
  for (int F = 0; F < NumFluids; ++F)
    if (C[F] != 0.0)
      C[F] = C[F] * V / Total;
  for (int F = 0; F < NumFluids; ++F)
    if (AddComp[F] != 0.0)
      C[F] += AddComp[F] * AddVol / Total;
  SlotVol[Slot] = Total;
}

namespace {
/// Fluid::take with dense state: clamps, snapshots the composition row
/// into \p TakenComp (the taken fluid keeps it even when the source
/// empties), and clears the source when it drops to (numerical) zero.
double takeFrom(std::vector<double> &SlotVol, double *Comp, int Slot,
                int NumFluids, double TakeNl, std::vector<double> &TakenComp) {
  TakeNl = std::clamp(TakeNl, 0.0, SlotVol[Slot]);
  std::copy(Comp, Comp + NumFluids, TakenComp.begin());
  SlotVol[Slot] -= TakeNl;
  if (SlotVol[Slot] <= 1e-12) {
    SlotVol[Slot] = 0.0;
    std::fill(Comp, Comp + NumFluids, 0.0);
  }
  return TakeNl;
}
} // namespace

bool Interp::regenerate(int WriterI, int Depth, Hooks *H) {
  if (Depth > 24)
    return false;
  const Instr &W = Prog->Code[WriterI];
  ++Regenerations;
  if (Tracing) {
    obs::TraceEvent E;
    E.Name = "regeneration";
    E.Cat = "sim";
    E.Phase = 'i';
    E.TsMicros = static_cast<std::uint64_t>(FluidSec * 1e6);
    E.Pid = Opts.FleetChip >= 0 ? obs::PidFleet : obs::PidSimulated;
    E.Tid = static_cast<std::uint32_t>(Opts.FleetChip >= 0 ? Opts.FleetChip
                                                           : Depth);
    obs::Tracer::global().record(std::move(E));
  }

  if (W.Code == Op::Input) {
    exec(WriterI, Depth + 1, H);
    return true;
  }
  if (W.RegenBegin == NoSlice)
    return false; // No graph / unattributed instruction at compile time.

  // Stash functional-unit contents (ascending slot == ascending locKey,
  // the simulator's map order), then clear every functional unit.
  std::size_t Base = StashSlot.size();
  for (int S = 0; S < NumSlots; ++S) {
    if (!Prog->SlotIsFunctionalUnit[S])
      continue;
    if (SlotVol[S] > 1e-12) {
      StashSlot.push_back(S);
      StashVol.push_back(SlotVol[S]);
      StashComp.insert(StashComp.end(), comp(S), comp(S) + NumFluids);
    }
    clearSlot(S);
  }

  for (std::int32_t K = 0; K < W.RegenCount; ++K) {
    int Idx = Prog->RegenSlices[W.RegenBegin + K];
    if (!Error.empty()) {
      // A failed replay abandons the stash (the simulator's Stash vector
      // goes out of scope unrestored) -- observable, so reproduced.
      StashSlot.resize(Base);
      StashVol.resize(Base);
      StashComp.resize(Base * NumFluids);
      return false;
    }
    // Outputs only deliver excess or residue off-chip; replaying one
    // would drain the very value being regenerated.
    if (Prog->Code[Idx].Code == Op::Output)
      continue;
    exec(Idx, Depth + 1, H);
  }

  for (std::size_t F = Base; F < StashSlot.size(); ++F) {
    int S = StashSlot[F];
    if (SlotVol[S] > 1e-12 && StashVol[F] > 1e-12)
      ++OverflowEvents; // Collision; merge (rare by construction).
    addInto(S, StashVol[F], StashComp.data() + F * NumFluids);
  }
  StashSlot.resize(Base);
  StashVol.resize(Base);
  StashComp.resize(Base * NumFluids);
  return true;
}

void Interp::transferVol(int Idx, std::uint16_t Src, std::uint16_t Dst,
                         bool DstIsOutput, double RequestNl, double QuantNl,
                         int Depth, Hooks *H) {
  double Lc = Prog->Spec.LeastCountNl;

  // QuantNl is quantize(RequestNl), folded per run in reset() (MoveVol) or
  // -1.0 for move-everything (MoveAll).
  double Needed = QuantNl;
  if (Needed >= 0.0 && Needed < Lc - 1e-12) {
    // Below the hardware's metering resolution: nothing moves.
    if (RequestNl > 1e-12)
      ++SubLeastCountMoves;
    return;
  }

  // Shortage handling with reactive regeneration.
  double Want = Needed >= 0.0 ? Needed : Lc;
  if (SlotVol[Src] + 1e-9 < Want)
    ++UnderflowEvents;
  bool Attempted = false;
  for (int Retry = 0; SlotVol[Src] + 1e-9 < Want; ++Retry) {
    if (!Opts.EnableRegeneration)
      break;
    if (Retry >= Opts.MaxRegenRetries) {
      if (Attempted) {
        fail(Idx, format("regeneration exhausted after %d retries "
                         "(%s nl short of %s nl at %s)",
                         Opts.MaxRegenRetries,
                         formatTrimmed(Want - SlotVol[Src], 4).c_str(),
                         formatTrimmed(Want, 4).c_str(),
                         Prog->SrcText[Idx].c_str()));
        return;
      }
      break;
    }
    int W = WriterIdx[Src];
    if (W < 0)
      break;
    if (!regenerate(W, Depth, H))
      break;
    Attempted = true;
  }

  double Free = DstIsOutput ? 1e18 : Prog->Spec.MaxCapacityNl - SlotVol[Dst];
  double Amount = Needed >= 0.0 ? std::min(Needed, SlotVol[Src]) : SlotVol[Src];
  if (Amount > Free + 1e-9) {
    ++OverflowEvents;
    Amount = std::max(0.0, std::floor(Free / Lc) * Lc);
  }
  if (Amount <= 1e-12)
    return;
  if (DstIsOutput) {
    takeFrom(SlotVol, comp(Src), Src, NumFluids, Amount, TakenComp);
    DeliveredNl += Amount; // Delivered off-chip.
  } else {
    double Taken = takeFrom(SlotVol, comp(Src), Src, NumFluids, Amount,
                            TakenComp);
    addInto(Dst, Taken, TakenComp.data());
    WriterIdx[Dst] = Idx;
  }
  FluidSec += Opts.MoveSeconds;
}

void Interp::exec(int Idx, int Depth, Hooks *H) {
  if (!Tracing) {
    execImpl(Idx, Depth, H);
    return;
  }
  double VtStart = FluidSec;
  execImpl(Idx, Depth, H);
  obs::Tracer::global().complete(
      codegen::opcodeName(Prog->Code[Idx].Orig), "sim",
      static_cast<std::uint64_t>(VtStart * 1e6),
      static_cast<std::uint64_t>((FluidSec - VtStart) * 1e6),
      Opts.FleetChip >= 0 ? obs::PidFleet : obs::PidSimulated,
      static_cast<std::uint32_t>(Opts.FleetChip >= 0 ? Opts.FleetChip
                                                     : Depth));
}

void Interp::execImpl(int Idx, int Depth, Hooks *H) {
  if (!Error.empty())
    return;
  const Instr &I = Prog->Code[Idx];
  ++InstructionsExecuted;

  switch (I.Code) {
  case Op::Input: {
    // Top the reservoir up from the external port (unbounded supply).
    double Draw = quantize(Prog->Spec.MaxCapacityNl - SlotVol[I.Dst]);
    if (Draw > 0.0) {
      if (H)
        FluidSec += H->onInputDraw(I.Name, Draw, FluidSec);
      // D.add(Fluid::pure(Note, Draw)) with a dense row.
      double V = SlotVol[I.Dst];
      double Total = V + Draw;
      double *C = comp(I.Dst);
      for (int F = 0; F < NumFluids; ++F)
        if (C[F] != 0.0) // Zero entries scale to +0.0 bit-unchanged.
          C[F] = C[F] * V / Total;
      C[I.Name] += 1.0 * Draw / Total;
      SlotVol[I.Dst] = Total;
      InputDrawn[I.Name] += Draw;
      FluidSec += Opts.MoveSeconds;
    }
    WriterIdx[I.Dst] = Idx;
    return;
  }

  case Op::MoveVol:
    transferVol(Idx, I.Src, I.Dst, I.DstIsOutput, VolumeTable[I.VolIdx],
                QuantVolTable[I.VolIdx], Depth, H);
    return;

  case Op::MoveAll:
    transferVol(Idx, I.Src, I.Dst, I.DstIsOutput, -1.0, -1.0, Depth, H);
    return;

  case Op::Mix:
    if (SlotVol[I.Dst] <= 1e-12) {
      fail(Idx, "mix on an empty unit");
      return;
    }
    FluidSec += I.Seconds;
    WriterIdx[I.Dst] = Idx;
    return;

  case Op::Incubate:
    if (SlotVol[I.Dst] <= 1e-12) {
      fail(Idx, "incubate on an empty unit");
      return;
    }
    FluidSec += I.Seconds;
    WriterIdx[I.Dst] = Idx;
    return;

  case Op::Concentrate: {
    if (SlotVol[I.Dst] <= 1e-12) {
      fail(Idx, "concentrate on an empty unit");
      return;
    }
    // Solvent removal: the retained volume fraction is unknowable at
    // compile time; it comes from the seeded RNG (or the fixed yield).
    double Keep = separationYield();
    WasteNl += takeFrom(SlotVol, comp(I.Dst), I.Dst, NumFluids,
                        SlotVol[I.Dst] * (1.0 - Keep), TakenComp);
    FluidSec += I.Seconds;
    WriterIdx[I.Dst] = Idx;
    return;
  }

  case Op::Separate: {
    if (SlotVol[I.Dst] <= 1e-12) {
      fail(Idx, "separate on an empty unit");
      return;
    }
    double Yield = separationYield();
    double EffVol = takeFrom(SlotVol, comp(I.Dst), I.Dst, NumFluids,
                             SlotVol[I.Dst] * Yield, TakenComp);
    WasteNl += SlotVol[I.Dst]; // The rest leaves as waste.
    clearSlot(I.Dst);
    // The matrix and pusher are consumed by the separation.
    WasteNl += SlotVol[I.Matrix];
    clearSlot(I.Matrix);
    WasteNl += SlotVol[I.Pusher];
    clearSlot(I.Pusher);
    // at(Out) = Effluent: replacement, so the effluent's composition row
    // lands on out1 even at (numerically) zero volume.
    SlotVol[I.Out1] = EffVol;
    std::copy(TakenComp.begin(), TakenComp.end(), comp(I.Out1));
    WriterIdx[I.Out1] = Idx;
    FluidSec += I.Seconds;
    return;
  }

  case Op::Sense: {
    if (SlotVol[I.Dst] <= 1e-12) {
      fail(Idx, "sense on an empty unit");
      return;
    }
    SenseLog.emplace_back(I.Name, SlotVol[I.Dst]);
    SenseComp.insert(SenseComp.end(), comp(I.Dst), comp(I.Dst) + NumFluids);
    WasteNl += SlotVol[I.Dst];
    clearSlot(I.Dst); // Sensing consumes its sample.
    FluidSec += 1.0;
    return;
  }

  case Op::Output:
    WasteNl += SlotVol[I.Src];
    clearSlot(I.Src);
    FluidSec += Opts.MoveSeconds;
    return;
  }
}

bool Interp::run(int Begin, int End, Hooks *H) {
  AQUA_TRACE_SPAN("vm.run", "vm");
  int E = End < 0 ? Prog->numInstrs() : End;
  for (int I = Begin; I < E && Error.empty(); ++I)
    exec(I, /*Depth=*/0, H);
  return Error.empty();
}

runtime::SimResult Interp::finish() {
  runtime::SimResult R;
  R.Completed = Error.empty();
  R.Error = Error;
  R.Regenerations = Regenerations;
  R.UnderflowEvents = UnderflowEvents;
  R.OverflowEvents = OverflowEvents;
  R.SubLeastCountMoves = SubLeastCountMoves;
  R.InstructionsExecuted = InstructionsExecuted;
  R.FluidSeconds = FluidSec;
  R.DeliveredNl = DeliveredNl;
  R.WasteNl = WasteNl;

  double InputNl = 0.0;
  for (int F = 0; F < NumFluids; ++F) {
    if (InputDrawn[F] > 0.0)
      R.InputDrawnNl[Prog->FluidNames[F]] = InputDrawn[F];
    InputNl += InputDrawn[F];
  }

  R.Senses.reserve(SenseLog.size());
  for (std::size_t S = 0; S < SenseLog.size(); ++S) {
    runtime::SenseReading Rd;
    Rd.Name = Prog->SenseNames[SenseLog[S].first];
    Rd.VolumeNl = SenseLog[S].second;
    const double *Row = SenseComp.data() + S * NumFluids;
    for (int F = 0; F < NumFluids; ++F)
      if (Row[F] != 0.0)
        Rd.Composition[Prog->FluidNames[F]] = Row[F];
    R.Senses.push_back(std::move(Rd));
  }

  met().Runs.add();
  met().Instructions.add(static_cast<std::uint64_t>(InstructionsExecuted));
  met().Regenerations.add(static_cast<std::uint64_t>(Regenerations));
  met().Underflows.add(static_cast<std::uint64_t>(UnderflowEvents));
  met().Overflows.add(static_cast<std::uint64_t>(OverflowEvents));
  met().SubLeastCountMoves.add(static_cast<std::uint64_t>(SubLeastCountMoves));
  met().InputNl.add(InputNl);
  met().DeliveredNl.add(DeliveredNl);
  met().WasteNl.add(WasteNl);
  return R;
}

runtime::SimResult aqua::vm::run(const Program &P, const RunOptions &Opts) {
  Interp I;
  I.start(P, Opts);
  I.run();
  return I.finish();
}
