//===- Simulator.cpp - AquaCore PLoC simulator ----------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/runtime/Simulator.h"

#include "aqua/obs/Log.h"
#include "aqua/obs/Metrics.h"
#include "aqua/obs/Trace.h"
#include "aqua/support/Random.h"
#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace aqua;
using namespace aqua::codegen;
using namespace aqua::ir;
using namespace aqua::runtime;

namespace {

/// Global-registry instruments, resolved once.
struct SimMetrics {
  obs::Counter &Runs = obs::metrics().counter("sim.runs");
  obs::Counter &Instructions = obs::metrics().counter("sim.instructions");
  obs::Counter &Regenerations = obs::metrics().counter("sim.regenerations");
  obs::Counter &Underflows = obs::metrics().counter("sim.underflows");
  obs::Counter &Overflows = obs::metrics().counter("sim.overflows");
  obs::Counter &SubLeastCountMoves =
      obs::metrics().counter("sim.sub_least_count_moves");
  obs::Gauge &InputNl = obs::metrics().gauge("sim.volume.input_nl");
  obs::Gauge &DeliveredNl = obs::metrics().gauge("sim.volume.delivered_nl");
  obs::Gauge &WasteNl = obs::metrics().gauge("sim.volume.waste_nl");
};

SimMetrics &met() {
  static SimMetrics M;
  return M;
}

/// Dense key for a location.
int locKey(const Loc &L) {
  return (static_cast<int>(L.Kind) << 20) | (L.Index << 4) |
         static_cast<int>(L.Sub);
}

class Machine {
public:
  Machine(const AISProgram &Program, const SimOptions &Opts)
      : Prog(Program), Opts(Opts), Rng(Opts.Seed) {
    planRelativeMoves();
    for (size_t I = 0; I < Prog.Instrs.size(); ++I) {
      NodeId N = Prog.Instrs[I].Node;
      if (N != InvalidNode)
        NodeInstrs[N].push_back(static_cast<int>(I));
    }
  }

  SimResult run() {
    AQUA_TRACE_SPAN("sim.run", "sim");
    for (size_t I = 0; I < Prog.Instrs.size() && Result.Error.empty(); ++I)
      exec(static_cast<int>(I), /*Depth=*/0);
    Result.Completed = Result.Error.empty();

    met().Runs.add();
    met().Instructions.add(
        static_cast<std::uint64_t>(Result.InstructionsExecuted));
    met().Regenerations.add(static_cast<std::uint64_t>(Result.Regenerations));
    met().Underflows.add(static_cast<std::uint64_t>(Result.UnderflowEvents));
    met().Overflows.add(static_cast<std::uint64_t>(Result.OverflowEvents));
    met().SubLeastCountMoves.add(
        static_cast<std::uint64_t>(Result.SubLeastCountMoves));
    double InputNl = 0.0;
    for (const auto &[Port, Nl] : Result.InputDrawnNl)
      InputNl += Nl;
    met().InputNl.add(InputNl);
    met().DeliveredNl.add(Result.DeliveredNl);
    met().WasteNl.add(Result.WasteNl);
    return std::move(Result);
  }

private:
  void fail(int Idx, const std::string &Msg) {
    if (Result.Error.empty()) {
      Result.Error = format("instr %d (%s): %s", Idx,
                            Prog.Instrs[Idx].str().c_str(), Msg.c_str());
      AQUA_LOG_WARN("runtime", "simulation failed at %s",
                    Result.Error.c_str());
    }
  }

  double quantize(double VolNl) const {
    double Lc = Opts.Spec.LeastCountNl;
    return std::round(VolNl / Lc) * Lc;
  }

  Fluid &at(const Loc &L) { return Contents[locKey(L)]; }

  /// Computes the planned absolute volume of every relative move: the
  /// consuming unit is filled to capacity at the requested part ratio (the
  /// naive no-volume-management policy).
  void planRelativeMoves() {
    Planned.assign(Prog.Instrs.size(), -1.0);
    std::vector<char> Done(Prog.Instrs.size(), 0);
    for (size_t I = 0; I < Prog.Instrs.size(); ++I) {
      const Instruction &In = Prog.Instrs[I];
      if (In.Op != Opcode::Move || In.RelParts <= 0 || Done[I])
        continue;
      // Gather the group of part-moves into the same unit up to the unit's
      // operation instruction.
      std::vector<size_t> Group;
      std::int64_t Total = 0;
      for (size_t J = I; J < Prog.Instrs.size(); ++J) {
        const Instruction &C = Prog.Instrs[J];
        bool SameUnit = C.Dst.Kind == In.Dst.Kind && C.Dst.Index == In.Dst.Index;
        if (C.Op == Opcode::Move && SameUnit && C.RelParts > 0) {
          Group.push_back(J);
          Total += C.RelParts;
          continue;
        }
        if (SameUnit && C.Op != Opcode::Move && C.Op != Opcode::MoveAbs &&
            C.Op != Opcode::Input)
          break; // The consuming operation.
      }
      for (size_t J : Group) {
        Planned[J] = Opts.Spec.MaxCapacityNl *
                     static_cast<double>(Prog.Instrs[J].RelParts) /
                     static_cast<double>(Total);
        Done[J] = 1;
      }
    }
  }

  /// Re-executes the production of the value written by instruction
  /// \p WriterIdx. Returns false when regeneration is impossible.
  bool regenerate(int WriterIdx, int Depth) {
    if (Depth > 24)
      return false;
    const Instruction &W = Prog.Instrs[WriterIdx];
    ++Result.Regenerations;
    if (obs::Tracer::enabled()) {
      obs::TraceEvent E;
      E.Name = "regeneration";
      E.Cat = "sim";
      E.Phase = 'i';
      E.TsMicros = static_cast<std::uint64_t>(Result.FluidSeconds * 1e6);
      E.Pid = obs::PidSimulated;
      E.Tid = static_cast<std::uint32_t>(Depth);
      obs::Tracer::global().record(std::move(E));
    }

    if (W.Op == Opcode::Input) {
      exec(WriterIdx, Depth + 1);
      return true;
    }
    if (!Opts.Graph || W.Node == InvalidNode)
      return false;

    // Re-execute the backward slice of the producing node, in program
    // order. Functional-unit contents are stashed so in-flight values are
    // not polluted, then merged back.
    std::vector<std::pair<int, Fluid>> Stash;
    for (auto &[Key, F] : Contents) {
      LocKind Kind = static_cast<LocKind>(Key >> 20);
      if (Kind == LocKind::Mixer || Kind == LocKind::Heater ||
          Kind == LocKind::Sensor || Kind == LocKind::Separator) {
        if (!F.empty())
          Stash.emplace_back(Key, std::move(F));
        F = Fluid();
      }
    }

    std::set<int> Replay;
    for (NodeId N : Opts.Graph->backwardSlice(W.Node)) {
      auto It = NodeInstrs.find(N);
      if (It == NodeInstrs.end())
        continue;
      for (int Idx : It->second)
        Replay.insert(Idx);
    }
    for (int Idx : Replay) {
      if (!Result.Error.empty())
        return false;
      // Outputs only deliver excess or residue off-chip; replaying one
      // would drain the very value being regenerated.
      if (Prog.Instrs[Idx].Op == Opcode::Output)
        continue;
      exec(Idx, Depth + 1);
    }

    for (auto &[Key, F] : Stash) {
      Fluid &Cur = Contents[Key];
      if (!Cur.empty() && !F.empty())
        ++Result.OverflowEvents; // Collision; merge (rare by construction).
      Cur.add(F);
    }
    return true;
  }

  /// Transfers \p RequestNl (or everything when < 0) from Src to Dst.
  void transfer(int Idx, const Loc &Src, const Loc &Dst, double RequestNl,
                int Depth) {
    double Lc = Opts.Spec.LeastCountNl;
    Fluid &S = at(Src);

    double Needed = RequestNl >= 0.0 ? quantize(RequestNl) : -1.0;
    if (Needed >= 0.0 && Needed < Lc - 1e-12) {
      // Below the hardware's metering resolution: nothing moves.
      if (RequestNl > 1e-12)
        ++Result.SubLeastCountMoves;
      return;
    }

    // Shortage handling with reactive regeneration.
    double Want = Needed >= 0.0 ? Needed : Lc;
    if (S.VolumeNl + 1e-9 < Want)
      ++Result.UnderflowEvents;
    bool Attempted = false;
    for (int Retry = 0; S.VolumeNl + 1e-9 < Want; ++Retry) {
      if (!Opts.EnableRegeneration)
        break;
      if (Retry >= Opts.MaxRegenRetries) {
        // Regeneration ran out of retries while the shortage persists:
        // report it rather than silently moving a short volume downstream.
        if (Attempted) {
          fail(Idx, format("regeneration exhausted after %d retries "
                           "(%s nl short of %s nl at %s)",
                           Opts.MaxRegenRetries,
                           formatTrimmed(Want - S.VolumeNl, 4).c_str(),
                           formatTrimmed(Want, 4).c_str(),
                           Src.str().c_str()));
          return;
        }
        break;
      }
      auto WriterIt = Writer.find(locKey(Src));
      if (WriterIt == Writer.end())
        break;
      if (!regenerate(WriterIt->second, Depth))
        break;
      Attempted = true;
    }

    Fluid &D = at(Dst);
    double Free = Dst.Kind == LocKind::OutputPort
                      ? 1e18
                      : Opts.Spec.MaxCapacityNl - D.VolumeNl;
    double Amount = Needed >= 0.0 ? std::min(Needed, S.VolumeNl) : S.VolumeNl;
    if (Amount > Free + 1e-9) {
      ++Result.OverflowEvents;
      Amount = std::max(0.0, std::floor(Free / Lc) * Lc);
    }
    if (Amount <= 1e-12)
      return;
    if (Dst.Kind == LocKind::OutputPort) {
      S.take(Amount); // Delivered off-chip.
      Result.DeliveredNl += Amount;
    } else {
      D.add(S.take(Amount));
      Writer[locKey(Dst)] = Idx;
    }
    Result.FluidSeconds += Opts.MoveSeconds;
  }

  double separationYield() {
    if (Opts.FixedSeparationYield >= 0.0)
      return Opts.FixedSeparationYield;
    return Opts.MinSeparationYield +
           (Opts.MaxSeparationYield - Opts.MinSeparationYield) *
               Rng.nextUnit();
  }

  /// Executes one instruction, laying it out on the simulated fluidic
  /// clock as a virtual-time complete event (pid 2; regeneration replays
  /// land on per-depth rows so they do not overlap the triggering move).
  void exec(int Idx, int Depth) {
    if (!obs::Tracer::enabled()) {
      execImpl(Idx, Depth);
      return;
    }
    double VtStart = Result.FluidSeconds;
    execImpl(Idx, Depth);
    obs::Tracer::global().complete(
        opcodeName(Prog.Instrs[Idx].Op), "sim",
        static_cast<std::uint64_t>(VtStart * 1e6),
        static_cast<std::uint64_t>((Result.FluidSeconds - VtStart) * 1e6),
        obs::PidSimulated, static_cast<std::uint32_t>(Depth));
  }

  void execImpl(int Idx, int Depth) {
    if (!Result.Error.empty())
      return;
    const Instruction &I = Prog.Instrs[Idx];
    ++Result.InstructionsExecuted;

    switch (I.Op) {
    case Opcode::Input: {
      // Top the reservoir up from the external port (unbounded supply).
      Fluid &D = at(I.Dst);
      double Draw = quantize(Opts.Spec.MaxCapacityNl - D.VolumeNl);
      if (Draw > 0.0) {
        D.add(Fluid::pure(I.Note, Draw));
        Result.InputDrawnNl[I.Note] += Draw;
        Result.FluidSeconds += Opts.MoveSeconds;
      }
      Writer[locKey(I.Dst)] = Idx;
      return;
    }

    case Opcode::Move:
      transfer(Idx, I.Src, I.Dst,
               I.RelParts > 0 ? Planned[Idx] : -1.0, Depth);
      return;

    case Opcode::MoveAbs:
      transfer(Idx, I.Src, I.Dst, I.VolumeNl, Depth);
      return;

    case Opcode::Mix: {
      if (at(I.Dst).empty()) {
        fail(Idx, "mix on an empty unit");
        return;
      }
      Result.FluidSeconds += I.Seconds;
      Writer[locKey(I.Dst)] = Idx;
      return;
    }

    case Opcode::Incubate: {
      if (at(I.Dst).empty()) {
        fail(Idx, "incubate on an empty unit");
        return;
      }
      Result.FluidSeconds += I.Seconds;
      Writer[locKey(I.Dst)] = Idx;
      return;
    }

    case Opcode::Concentrate: {
      Fluid &F = at(I.Dst);
      if (F.empty()) {
        fail(Idx, "concentrate on an empty unit");
        return;
      }
      // Solvent removal: the retained volume fraction is unknowable at
      // compile time; it comes from the seeded RNG (or the fixed yield).
      double Keep = separationYield();
      Result.WasteNl += F.take(F.VolumeNl * (1.0 - Keep)).VolumeNl;
      Result.FluidSeconds += I.Seconds;
      Writer[locKey(I.Dst)] = Idx;
      return;
    }

    case Opcode::SeparateAF:
    case Opcode::SeparateLC: {
      Fluid &Main = at(I.Dst);
      if (Main.empty()) {
        fail(Idx, "separate on an empty unit");
        return;
      }
      Loc Out = I.Dst;
      Out.Sub = SubPort::Out1;
      double Yield = separationYield();
      Fluid Effluent = Main.take(Main.VolumeNl * Yield);
      Result.WasteNl += Main.VolumeNl;
      Main = Fluid(); // The rest leaves as waste.
      // The matrix and pusher are consumed by the separation.
      Loc Matrix = I.Dst;
      Matrix.Sub = SubPort::Matrix;
      Result.WasteNl += at(Matrix).VolumeNl;
      at(Matrix) = Fluid();
      Loc Pusher = I.Dst;
      Pusher.Sub = SubPort::Pusher;
      Result.WasteNl += at(Pusher).VolumeNl;
      at(Pusher) = Fluid();
      at(Out) = std::move(Effluent);
      Writer[locKey(Out)] = Idx;
      Result.FluidSeconds += I.Seconds;
      return;
    }

    case Opcode::SenseOD:
    case Opcode::SenseFL: {
      Fluid &F = at(I.Dst);
      if (F.empty()) {
        fail(Idx, "sense on an empty unit");
        return;
      }
      SenseReading R;
      R.Name = I.Note;
      R.VolumeNl = F.VolumeNl;
      R.Composition = F.Composition;
      // During regeneration replays the sense itself is not repeated...
      // but a replayed slice never contains a Sense (senses are leaves),
      // so every execution records a fresh reading.
      Result.Senses.push_back(std::move(R));
      Result.WasteNl += F.VolumeNl;
      F = Fluid(); // Sensing consumes its sample.
      Result.FluidSeconds += 1.0;
      return;
    }

    case Opcode::Output: {
      Fluid &S = at(I.Src);
      Result.WasteNl += S.VolumeNl;
      S = Fluid();
      Result.FluidSeconds += Opts.MoveSeconds;
      return;
    }
    }
    AQUA_UNREACHABLE("bad Opcode");
  }

  const AISProgram &Prog;
  const SimOptions &Opts;
  SplitMix64 Rng;
  SimResult Result;

  std::map<int, Fluid> Contents;
  std::map<int, int> Writer; // locKey -> last producing instruction.
  std::map<NodeId, std::vector<int>> NodeInstrs;
  std::vector<double> Planned; // Per-instruction planned volume (relative).
};

} // namespace

SimResult aqua::runtime::simulate(const AISProgram &Program,
                                  const SimOptions &Opts) {
  Machine M(Program, Opts);
  return M.run();
}
