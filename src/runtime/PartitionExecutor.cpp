//===- PartitionExecutor.cpp - Run-time dispensing -------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/runtime/PartitionExecutor.h"

#include "aqua/codegen/Codegen.h"
#include "aqua/core/Rounding.h"
#include "aqua/support/Random.h"
#include "aqua/support/StringUtils.h"

#include <algorithm>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::ir;
using namespace aqua::runtime;

namespace {

/// One partition extracted as a standalone graph (constrained inputs
/// become ordinary Input nodes), with maps back to the plan's ids.
struct SubGraph {
  AssayGraph G;
  std::vector<NodeId> ToPlanNode;            // Subgraph id -> plan id.
  std::map<NodeId, NodeId> FromPlanNode;     // Plan id -> subgraph id.
  std::vector<EdgeId> ToPlanEdge;
};

SubGraph extractPartition(const PartitionPlan &Plan, int PartIndex) {
  const AssayGraph &PG = Plan.Graph;
  SubGraph S;
  std::vector<NodeId> Members = Plan.Parts[PartIndex].Members;
  std::sort(Members.begin(), Members.end());
  for (NodeId N : Members) {
    const Node &Src = PG.node(N);
    NodeId Clone = S.G.addNode(Src.Kind, Src.Name);
    Node &Dst = S.G.node(Clone);
    Dst.OutFraction = Src.OutFraction;
    Dst.UnknownVolume = Src.UnknownVolume;
    Dst.NoExcess = Src.NoExcess;
    Dst.ExcessShare = Src.ExcessShare;
    Dst.Params = Src.Params;
    S.ToPlanNode.push_back(N);
    S.FromPlanNode[N] = Clone;
  }
  for (NodeId N : Members)
    for (EdgeId E : PG.inEdges(N)) {
      const Edge &Ed = PG.edge(E);
      assert(S.FromPlanNode.count(Ed.Src) &&
             "partition member consumes a non-member value");
      S.G.addEdge(S.FromPlanNode[Ed.Src], S.FromPlanNode[N], Ed.Fraction);
      S.ToPlanEdge.push_back(E);
    }
  return S;
}

} // namespace

PartitionRunResult
aqua::runtime::executePartitioned(const PartitionPlan &Plan,
                                  const SimOptions &Opts) {
  PartitionRunResult Result;
  Result.Volumes.NodeVolumeNl.assign(Plan.Graph.numNodeSlots(), 0.0);
  Result.Volumes.EdgeVolumeNl.assign(Plan.Graph.numEdgeSlots(), 0.0);

  SplitMix64 Yields(Opts.Seed ^ 0xa55aULL);
  auto DrawYield = [&] {
    if (Opts.FixedSeparationYield >= 0.0)
      return Opts.FixedSeparationYield;
    return Opts.MinSeparationYield +
           (Opts.MaxSeparationYield - Opts.MinSeparationYield) *
               Yields.nextUnit();
  };

  std::map<NodeId, double> MeasuredByPlanNode;
  std::vector<double> Available(Plan.Inputs.size(), -1.0);

  for (size_t P = 0; P < Plan.Parts.size(); ++P) {
    // ----- Constrained-input availability from earlier measurements.
    for (int Ref : Plan.Parts[P].InputRefs) {
      const PartitionPlan::ConstrainedInput &CI = Plan.Inputs[Ref];
      if (CI.FromInputPort)
        continue; // Share * capacity, handled by dispensePartition.
      if (Plan.NodePartition[CI.Source] == static_cast<int>(P))
        continue; // Same-partition input: scale-invariant.
      auto It = MeasuredByPlanNode.find(CI.Source);
      if (It == MeasuredByPlanNode.end()) {
        Result.Error = format(
            "partition %zu consumes '%s' before it was measured", P,
            Plan.Graph.node(CI.Source).Name.c_str());
        return Result;
      }
      Available[Ref] = CI.Share.toDouble() * It->second;
    }

    // ----- Run-time dispensing (fast electronic control).
    VolumeAssignment V =
        dispensePartition(Plan, static_cast<int>(P), Available, Opts.Spec);
    for (NodeId N : Plan.Parts[P].Members) {
      Result.Volumes.NodeVolumeNl[N] = V.NodeVolumeNl[N];
      for (EdgeId E : Plan.Graph.inEdges(N))
        Result.Volumes.EdgeVolumeNl[E] = V.EdgeVolumeNl[E];
    }

    // ----- Extract, round, code-generate and simulate this partition.
    SubGraph Sub = extractPartition(Plan, static_cast<int>(P));
    VolumeAssignment SubV;
    SubV.NodeVolumeNl.assign(Sub.G.numNodeSlots(), 0.0);
    SubV.EdgeVolumeNl.assign(Sub.G.numEdgeSlots(), 0.0);
    for (int I = 0; I < Sub.G.numNodeSlots(); ++I)
      SubV.NodeVolumeNl[I] = V.NodeVolumeNl[Sub.ToPlanNode[I]];
    for (int I = 0; I < Sub.G.numEdgeSlots(); ++I)
      SubV.EdgeVolumeNl[I] = V.EdgeVolumeNl[Sub.ToPlanEdge[I]];

    IntegerAssignment IVol = roundToLeastCount(Sub.G, SubV, Opts.Spec);
    if (IVol.Underflow) {
      Result.Error = format(
          "partition %zu underflows the least count after dispensing "
          "(scarce upstream measurement); regeneration of the producing "
          "slice is required",
          P);
      return Result;
    }
    VolumeAssignment Metered = integerToNl(Sub.G, IVol, Opts.Spec);

    codegen::CodegenOptions CG;
    CG.Mode = codegen::VolumeMode::Managed;
    CG.Volumes = &Metered;
    auto Prog = codegen::generateAIS(Sub.G, {}, CG);
    if (!Prog.ok()) {
      Result.Error =
          format("partition %zu codegen: %s", P, Prog.message().c_str());
      return Result;
    }

    SimOptions SubOpts = Opts;
    SubOpts.Graph = &Sub.G;
    SubOpts.Seed = Opts.Seed + 17 * P;
    SimResult Run = simulate(*Prog, SubOpts);
    if (!Run.Completed) {
      Result.Error = format("partition %zu: %s", P, Run.Error.c_str());
      return Result;
    }
    Result.FluidSeconds += Run.FluidSeconds;
    Result.Regenerations += Run.Regenerations;
    for (SenseReading &Reading : Run.Senses)
      Result.Senses.push_back(std::move(Reading));
    ++Result.PartitionsExecuted;

    // ----- Publish this partition's outputs to later constrained inputs:
    // unknown-volume operations are "measured" (RNG yield standing in for
    // the on-chip volume sensor); known-volume cut fluids simply report
    // their dispensed volume (the Figure 8 case).
    for (NodeId N : Plan.Parts[P].Members) {
      const Node &Nd = Plan.Graph.node(N);
      bool FeedsConstrainedInput = false;
      for (const PartitionPlan::ConstrainedInput &CI : Plan.Inputs)
        if (CI.Source == N)
          FeedsConstrainedInput = true;
      if (!FeedsConstrainedInput)
        continue;
      double Measured;
      if (Nd.UnknownVolume) {
        double InputVol = 0.0;
        for (EdgeId E : Plan.Graph.inEdges(N))
          InputVol += Result.Volumes.EdgeVolumeNl[E];
        Measured = InputVol * DrawYield();
      } else {
        Measured = Result.Volumes.NodeVolumeNl[N];
      }
      MeasuredByPlanNode[N] = Measured;
      Result.MeasuredNl[Nd.Name] = Measured;
    }
  }

  Result.Completed = true;
  return Result;
}
