//===- Fluid.cpp - Simulated fluid state ----------------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/runtime/Fluid.h"

#include <algorithm>

using namespace aqua::runtime;

Fluid Fluid::pure(std::string Name, double VolumeNl) {
  Fluid F;
  F.VolumeNl = VolumeNl;
  F.Composition[std::move(Name)] = 1.0;
  return F;
}

void Fluid::add(const Fluid &Other) {
  if (Other.empty())
    return;
  double Total = VolumeNl + Other.VolumeNl;
  for (auto &[Name, Frac] : Composition)
    Frac = Frac * VolumeNl / Total;
  for (const auto &[Name, Frac] : Other.Composition)
    Composition[Name] += Frac * Other.VolumeNl / Total;
  VolumeNl = Total;
}

Fluid Fluid::take(double TakeNl) {
  TakeNl = std::clamp(TakeNl, 0.0, VolumeNl);
  Fluid Out;
  Out.VolumeNl = TakeNl;
  Out.Composition = Composition;
  VolumeNl -= TakeNl;
  if (VolumeNl <= 1e-12) {
    VolumeNl = 0.0;
    Composition.clear();
  }
  return Out;
}

double Fluid::fractionOf(const std::string &Name) const {
  auto It = Composition.find(Name);
  return It == Composition.end() ? 0.0 : It->second;
}
