//===- Lexer.cpp - Assay language lexer ----------------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lang/Lexer.h"

#include "aqua/support/StringUtils.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cerrno>
#include <cstdlib>
#include <map>

using namespace aqua;
using namespace aqua::lang;

const char *aqua::lang::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Integer:
    return "integer";
  case TokenKind::KwAssay:
    return "ASSAY";
  case TokenKind::KwStart:
    return "START";
  case TokenKind::KwEnd:
    return "END";
  case TokenKind::KwFluid:
    return "fluid";
  case TokenKind::KwVar:
    return "VAR";
  case TokenKind::KwMix:
    return "MIX";
  case TokenKind::KwAnd:
    return "AND";
  case TokenKind::KwIn:
    return "IN";
  case TokenKind::KwRatios:
    return "RATIOS";
  case TokenKind::KwFor:
    return "FOR";
  case TokenKind::KwSense:
    return "SENSE";
  case TokenKind::KwOptical:
    return "OPTICAL";
  case TokenKind::KwFluorescence:
    return "FLUORESCENCE";
  case TokenKind::KwInto:
    return "INTO";
  case TokenKind::KwSeparate:
    return "SEPARATE";
  case TokenKind::KwLCSeparate:
    return "LCSEPARATE";
  case TokenKind::KwMatrix:
    return "MATRIX";
  case TokenKind::KwUsing:
    return "USING";
  case TokenKind::KwIncubate:
    return "INCUBATE";
  case TokenKind::KwConcentrate:
    return "CONCENTRATE";
  case TokenKind::KwAt:
    return "AT";
  case TokenKind::KwFrom:
    return "FROM";
  case TokenKind::KwTo:
    return "TO";
  case TokenKind::KwEndFor:
    return "ENDFOR";
  case TokenKind::KwYield:
    return "YIELD";
  case TokenKind::KwOf:
    return "OF";
  case TokenKind::KwIf:
    return "IF";
  case TokenKind::KwElse:
    return "ELSE";
  case TokenKind::KwEndIf:
    return "ENDIF";
  case TokenKind::KwIt:
    return "it";
  case TokenKind::Semicolon:
    return ";";
  case TokenKind::Comma:
    return ",";
  case TokenKind::Colon:
    return ":";
  case TokenKind::Equals:
    return "=";
  case TokenKind::LBracket:
    return "[";
  case TokenKind::RBracket:
    return "]";
  case TokenKind::Plus:
    return "+";
  case TokenKind::Minus:
    return "-";
  case TokenKind::Star:
    return "*";
  case TokenKind::Slash:
    return "/";
  case TokenKind::Question:
    return "?";
  case TokenKind::Eof:
    return "<eof>";
  }
  AQUA_UNREACHABLE("bad TokenKind");
}

static const std::map<std::string, TokenKind, std::less<>> &keywordMap() {
  static const std::map<std::string, TokenKind, std::less<>> Map = {
      {"ASSAY", TokenKind::KwAssay},
      {"START", TokenKind::KwStart},
      {"END", TokenKind::KwEnd},
      {"fluid", TokenKind::KwFluid},
      {"FLUID", TokenKind::KwFluid},
      {"VAR", TokenKind::KwVar},
      {"MIX", TokenKind::KwMix},
      {"AND", TokenKind::KwAnd},
      {"IN", TokenKind::KwIn},
      {"RATIOS", TokenKind::KwRatios},
      {"FOR", TokenKind::KwFor},
      {"SENSE", TokenKind::KwSense},
      {"OPTICAL", TokenKind::KwOptical},
      {"FLUORESCENCE", TokenKind::KwFluorescence},
      {"INTO", TokenKind::KwInto},
      {"SEPARATE", TokenKind::KwSeparate},
      {"LCSEPARATE", TokenKind::KwLCSeparate},
      {"MATRIX", TokenKind::KwMatrix},
      {"USING", TokenKind::KwUsing},
      {"INCUBATE", TokenKind::KwIncubate},
      {"CONCENTRATE", TokenKind::KwConcentrate},
      {"AT", TokenKind::KwAt},
      {"FROM", TokenKind::KwFrom},
      {"TO", TokenKind::KwTo},
      {"ENDFOR", TokenKind::KwEndFor},
      {"YIELD", TokenKind::KwYield},
      {"OF", TokenKind::KwOf},
      {"IF", TokenKind::KwIf},
      {"ELSE", TokenKind::KwElse},
      {"ENDIF", TokenKind::KwEndIf},
      {"it", TokenKind::KwIt},
  };
  return Map;
}

Expected<std::vector<Token>> aqua::lang::tokenize(std::string_view Source) {
  using RetTy = Expected<std::vector<Token>>;
  std::vector<Token> Tokens;
  int Line = 1, Col = 1;
  size_t I = 0;

  auto Advance = [&](size_t Count = 1) {
    for (size_t J = 0; J < Count && I < Source.size(); ++J, ++I) {
      if (Source[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
  };

  while (I < Source.size()) {
    char C = Source[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance();
      continue;
    }
    // Comments: `--` to end of line.
    if (C == '-' && I + 1 < Source.size() && Source[I + 1] == '-') {
      while (I < Source.size() && Source[I] != '\n')
        Advance();
      continue;
    }

    Token T;
    T.Line = Line;
    T.Col = Col;

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < Source.size() &&
             (std::isalnum(static_cast<unsigned char>(Source[I])) ||
              Source[I] == '_'))
        Advance();
      T.Text = std::string(Source.substr(Start, I - Start));
      auto It = keywordMap().find(T.Text);
      T.Kind = It != keywordMap().end() ? It->second : TokenKind::Identifier;
      Tokens.push_back(std::move(T));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < Source.size() &&
             std::isdigit(static_cast<unsigned char>(Source[I])))
        Advance();
      if (I < Source.size() &&
          (std::isalpha(static_cast<unsigned char>(Source[I])) ||
           Source[I] == '_'))
        return RetTy::error(format("%d:%d: malformed number", T.Line, T.Col));
      T.Kind = TokenKind::Integer;
      T.Text = std::string(Source.substr(Start, I - Start));
      errno = 0;
      char *End = nullptr;
      T.IntValue = std::strtoll(T.Text.c_str(), &End, 10);
      if (errno == ERANGE || End != T.Text.c_str() + T.Text.size())
        return RetTy::error(
            format("%d:%d: integer literal too large", T.Line, T.Col));
      Tokens.push_back(std::move(T));
      continue;
    }

    switch (C) {
    case ';':
      T.Kind = TokenKind::Semicolon;
      break;
    case ',':
      T.Kind = TokenKind::Comma;
      break;
    case ':':
      T.Kind = TokenKind::Colon;
      break;
    case '=':
      T.Kind = TokenKind::Equals;
      break;
    case '[':
      T.Kind = TokenKind::LBracket;
      break;
    case ']':
      T.Kind = TokenKind::RBracket;
      break;
    case '+':
      T.Kind = TokenKind::Plus;
      break;
    case '-':
      T.Kind = TokenKind::Minus;
      break;
    case '*':
      T.Kind = TokenKind::Star;
      break;
    case '/':
      T.Kind = TokenKind::Slash;
      break;
    case '?':
      T.Kind = TokenKind::Question;
      break;
    default:
      return RetTy::error(
          format("%d:%d: unexpected character '%c'", Line, Col, C));
    }
    T.Text = std::string(1, C);
    Advance();
    Tokens.push_back(std::move(T));
  }

  Token Eof;
  Eof.Kind = TokenKind::Eof;
  Eof.Line = Line;
  Eof.Col = Col;
  Tokens.push_back(Eof);
  return Tokens;
}
