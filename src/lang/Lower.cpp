//===- Lower.cpp - AST to Assay DAG lowering -----------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lang/Lower.h"

#include "aqua/lang/Parser.h"
#include "aqua/support/StringUtils.h"

#include <map>
#include <set>

using namespace aqua;
using namespace aqua::ir;
using namespace aqua::lang;

namespace {

/// Upper bound on unrolled wet operations, to catch runaway loop bounds.
constexpr int MaxWetOps = 1 << 20;

class Lowerer {
public:
  Expected<LoweredAssay> run(const Program &P) {
    Result.Name = P.Name;
    for (const StmtPtr &S : P.Stmts)
      if (!lowerStmt(*S))
        return Expected<LoweredAssay>::error(Diag);
    if (Status V = Result.Graph.verify(); !V.ok())
      return Expected<LoweredAssay>::error("lowered graph invalid: " +
                                           V.message());
    return Expected<LoweredAssay>(std::move(Result));
  }

private:
  bool fail(int Line, const std::string &Msg) {
    if (Diag.empty())
      Diag = format("%d: %s", Line, Msg.c_str());
    return false;
  }

  // ----- Dry evaluation -------------------------------------------------

  bool evalExpr(const Expr &E, std::int64_t &Out);
  bool flattenKey(const std::string &Name, const std::vector<ExprPtr> &Indices,
                  const std::vector<std::int64_t> &Dims, int Line,
                  std::string &Key);

  // ----- Fluid resolution -----------------------------------------------

  /// Resolves a fluid reference used as an operand, creating an Input node
  /// on the first use of a never-produced declared fluid.
  bool resolveOperand(const FluidRef &Ref, NodeId &Out);

  bool applyYieldHint(const Stmt &S, ir::Node &N);
  bool lowerStmt(const Stmt &S);
  bool lowerMix(const Stmt &S);
  bool lowerSeparate(const Stmt &S);
  bool lowerUnaryOp(const Stmt &S);
  bool lowerSense(const Stmt &S);
  bool lowerDryAssign(const Stmt &S);
  bool lowerFor(const Stmt &S);

  bool countWetOp(int Line) {
    if (++WetOps > MaxWetOps)
      return fail(Line, "assay exceeds the unrolled-operation budget");
    return true;
  }

  LoweredAssay Result;
  std::string Diag;

  std::map<std::string, std::vector<std::int64_t>> FluidDecls;
  std::map<std::string, std::vector<std::int64_t>> VarDecls;
  std::map<std::string, std::int64_t> DryValues;
  std::map<std::string, NodeId> FluidBindings;
  /// Fluids ever produced anywhere (never rolled back): a later unbound
  /// use of one is a branch-escape error, not an implicit input.
  std::set<std::string> EverProduced;
  std::set<std::string> WasteNames;
  NodeId It = InvalidNode;
  int MixCounter = 0;
  int IncubateCounter = 0;
  int ConcentrateCounter = 0;
  int WetOps = 0;
};

bool Lowerer::evalExpr(const Expr &E, std::int64_t &Out) {
  switch (E.K) {
  case Expr::Kind::Number:
    Out = E.Value;
    return true;
  case Expr::Kind::VarRef: {
    auto DeclIt = VarDecls.find(E.Name);
    if (DeclIt == VarDecls.end()) {
      if (FluidDecls.count(E.Name))
        return fail(E.Line,
                    format("fluid '%s' used in a dry expression",
                           E.Name.c_str()));
      return fail(E.Line, format("undeclared variable '%s'", E.Name.c_str()));
    }
    std::string Key;
    if (!flattenKey(E.Name, E.Indices, DeclIt->second, E.Line, Key))
      return false;
    auto ValIt = DryValues.find(Key);
    if (ValIt == DryValues.end())
      return fail(E.Line,
                  format("variable '%s' read before assignment", Key.c_str()));
    Out = ValIt->second;
    return true;
  }
  case Expr::Kind::BinOp: {
    std::int64_t L, R;
    if (!evalExpr(*E.Lhs, L) || !evalExpr(*E.Rhs, R))
      return false;
    switch (E.Op) {
    case '+':
      Out = L + R;
      return true;
    case '-':
      Out = L - R;
      return true;
    case '*':
      Out = L * R;
      return true;
    case '/':
      if (R == 0)
        return fail(E.Line, "division by zero in dry expression");
      Out = L / R;
      return true;
    default:
      return fail(E.Line, "unknown operator");
    }
  }
  }
  AQUA_UNREACHABLE("bad Expr kind");
}

bool Lowerer::flattenKey(const std::string &Name,
                         const std::vector<ExprPtr> &Indices,
                         const std::vector<std::int64_t> &Dims, int Line,
                         std::string &Key) {
  if (Indices.size() != Dims.size())
    return fail(Line, format("'%s' expects %zu subscripts, got %zu",
                             Name.c_str(), Dims.size(), Indices.size()));
  Key = Name;
  for (size_t I = 0; I < Indices.size(); ++I) {
    std::int64_t Idx;
    if (!evalExpr(*Indices[I], Idx))
      return false;
    // Assay arrays are 1-based (Figure 9a indexes Result[1]..Result[5]).
    if (Idx < 1 || Idx > Dims[I])
      return fail(Line, format("index %lld out of range 1..%lld for '%s'",
                               static_cast<long long>(Idx),
                               static_cast<long long>(Dims[I]), Name.c_str()));
    Key += format("[%lld]", static_cast<long long>(Idx));
  }
  return true;
}

bool Lowerer::resolveOperand(const FluidRef &Ref, NodeId &Out) {
  if (Ref.IsIt) {
    if (It == InvalidNode)
      return fail(Ref.Line, "'it' used before any fluid-producing statement");
    Out = It;
    return true;
  }
  auto DeclIt = FluidDecls.find(Ref.Name);
  if (DeclIt == FluidDecls.end())
    return fail(Ref.Line,
                format("undeclared fluid '%s'", Ref.Name.c_str()));
  std::string Key;
  if (!flattenKey(Ref.Name, Ref.Indices, DeclIt->second, Ref.Line, Key))
    return false;
  if (WasteNames.count(Ref.Name))
    return fail(Ref.Line,
                format("waste stream '%s' cannot be reused", Ref.Name.c_str()));
  auto BindIt = FluidBindings.find(Key);
  if (BindIt != FluidBindings.end()) {
    Out = BindIt->second;
    return true;
  }
  // First use of a never-produced scalar fluid: an assay input.
  if (EverProduced.count(Key))
    return fail(Ref.Line,
                format("fluid '%s' is only produced inside a run-time "
                       "branch and cannot be used after it",
                       Key.c_str()));
  if (!Ref.Indices.empty())
    return fail(Ref.Line,
                format("fluid '%s' used before being produced", Key.c_str()));
  NodeId In = Result.Graph.addInput(Key);
  Result.Inputs.push_back(In);
  FluidBindings[Key] = In;
  Out = In;
  return true;
}

bool Lowerer::lowerMix(const Stmt &S) {
  if (!countWetOp(S.Line))
    return false;
  std::vector<MixPart> Parts;
  for (size_t I = 0; I < S.Operands.size(); ++I) {
    NodeId Src;
    if (!resolveOperand(S.Operands[I], Src))
      return false;
    std::int64_t Ratio = 1;
    if (!S.Ratios.empty() && !evalExpr(*S.Ratios[I], Ratio))
      return false;
    if (Ratio < 1)
      return fail(S.Line, format("mix ratio part %lld must be positive",
                                 static_cast<long long>(Ratio)));
    Parts.push_back(MixPart{Src, Ratio});
  }
  // Mixing a fluid with itself is meaningless and would break the DAG.
  for (size_t I = 0; I < Parts.size(); ++I)
    for (size_t J = I + 1; J < Parts.size(); ++J)
      if (Parts[I].Source == Parts[J].Source)
        return fail(S.Line, "a MIX cannot use the same fluid twice");

  std::string Name;
  std::string BindKey;
  if (S.MixResult) {
    auto DeclIt = FluidDecls.find(S.MixResult->Name);
    if (DeclIt == FluidDecls.end())
      return fail(S.Line, format("undeclared fluid '%s'",
                                 S.MixResult->Name.c_str()));
    if (!flattenKey(S.MixResult->Name, S.MixResult->Indices, DeclIt->second,
                    S.Line, BindKey))
      return false;
    Name = BindKey;
  } else {
    Name = format("mix%d", ++MixCounter);
  }

  double Seconds;
  {
    std::int64_t Sec;
    if (!evalExpr(*S.Seconds, Sec))
      return false;
    Seconds = static_cast<double>(Sec);
  }
  NodeId Mix = Result.Graph.addMix(Name, Parts, Seconds);
  if (!BindKey.empty()) {
    FluidBindings[BindKey] = Mix;
    EverProduced.insert(BindKey);
  }
  It = Mix;
  return true;
}

bool Lowerer::applyYieldHint(const Stmt &S, Node &N) {
  std::int64_t Num, Den;
  if (!evalExpr(*S.YieldNum, Num) || !evalExpr(*S.YieldDen, Den))
    return false;
  if (Num < 1 || Den < Num)
    return fail(S.Line, format("yield hint %lld OF %lld must satisfy "
                               "1 <= p <= q",
                               static_cast<long long>(Num),
                               static_cast<long long>(Den)));
  N.OutFraction = Rational(Num, Den);
  N.UnknownVolume = false;
  return true;
}

bool Lowerer::lowerSeparate(const Stmt &S) {
  if (!countWetOp(S.Line))
    return false;
  NodeId In;
  if (!resolveOperand(S.Input, In))
    return false;
  if (!FluidDecls.count(S.EffluentName))
    return fail(S.Line,
                format("undeclared fluid '%s'", S.EffluentName.c_str()));
  if (!FluidDecls.count(S.WasteName))
    return fail(S.Line, format("undeclared fluid '%s'", S.WasteName.c_str()));

  NodeId Sep =
      Result.Graph.addUnary(NodeKind::Separate, S.EffluentName, In);
  Node &N = Result.Graph.node(Sep);
  // A separation's output volume is unknown until run time (Section 3.5)
  // unless the programmer supplies a yield hint ("we model such a hint as
  // a node whose output shrinks the input volume in the specified ratio").
  if (S.YieldNum) {
    if (!applyYieldHint(S, N))
      return false;
  } else {
    N.UnknownVolume = true;
  }
  N.Params.Flavor = S.IsLC ? "LC" : "AF";
  N.Params.Matrix = S.MatrixName;
  N.Params.Pusher = S.UsingName;
  std::int64_t Sec;
  if (!evalExpr(*S.Seconds, Sec))
    return false;
  N.Params.Seconds = static_cast<double>(Sec);

  FluidBindings[S.EffluentName] = Sep;
  EverProduced.insert(S.EffluentName);
  WasteNames.insert(S.WasteName);
  It = Sep;
  return true;
}

bool Lowerer::lowerUnaryOp(const Stmt &S) {
  if (!countWetOp(S.Line))
    return false;
  NodeId In;
  if (!resolveOperand(S.Input, In))
    return false;
  bool IsIncubate = S.K == Stmt::Kind::Incubate;
  std::string Name = IsIncubate
                         ? format("incubate%d", ++IncubateCounter)
                         : format("concentrate%d", ++ConcentrateCounter);
  NodeId N = Result.Graph.addUnary(
      IsIncubate ? NodeKind::Incubate : NodeKind::Separate, Name, In);
  Node &Nd = Result.Graph.node(N);
  std::int64_t Temp, Sec;
  if (!evalExpr(*S.Temp, Temp) || !evalExpr(*S.Seconds, Sec))
    return false;
  Nd.Params.TempC = static_cast<double>(Temp);
  Nd.Params.Seconds = static_cast<double>(Sec);
  if (!IsIncubate) {
    // Concentration removes solvent: the yield is physically unknown at
    // compile time, like a separation -- unless hinted.
    Nd.Params.Flavor = "CONC";
    if (S.YieldNum) {
      if (!applyYieldHint(S, Nd))
        return false;
    } else {
      Nd.UnknownVolume = true;
    }
  }
  It = N;
  return true;
}

bool Lowerer::lowerSense(const Stmt &S) {
  if (!countWetOp(S.Line))
    return false;
  NodeId In;
  if (!resolveOperand(S.Input, In))
    return false;
  auto DeclIt = VarDecls.find(S.SenseInto.Name);
  if (DeclIt == VarDecls.end())
    return fail(S.Line, format("undeclared result variable '%s'",
                               S.SenseInto.Name.c_str()));
  std::string Key;
  if (!flattenKey(S.SenseInto.Name, S.SenseInto.Indices, DeclIt->second,
                  S.Line, Key))
    return false;

  // Node name "sense_RESULT_1_2_3" for RESULT[1][2][3]: codegen strips the
  // prefix to print the sense destination operand.
  std::string NodeName = "sense_" + S.SenseInto.Name;
  {
    std::string Rest = Key.substr(S.SenseInto.Name.size());
    for (char C : Rest) {
      if (C == '[')
        NodeName += '_';
      else if (C != ']')
        NodeName += C;
    }
  }
  NodeId Sense = Result.Graph.addUnary(NodeKind::Sense, NodeName, In);
  Result.Graph.node(Sense).Params.Flavor = S.SenseFlavor;
  Result.Senses.push_back(SenseRecord{Sense, Key});
  // Sensing consumes its portion; `it` still refers to the sensed product
  // in the paper's examples, so leave It unchanged.
  return true;
}

bool Lowerer::lowerDryAssign(const Stmt &S) {
  auto DeclIt = VarDecls.find(S.Target.Name);
  if (DeclIt == VarDecls.end()) {
    if (FluidDecls.count(S.Target.Name))
      return fail(S.Line, format("fluid '%s' cannot be assigned a dry value",
                                 S.Target.Name.c_str()));
    return fail(S.Line,
                format("undeclared variable '%s'", S.Target.Name.c_str()));
  }
  std::string Key;
  if (!flattenKey(S.Target.Name, S.Target.Indices, DeclIt->second, S.Line,
                  Key))
    return false;
  std::int64_t Value;
  if (!evalExpr(*S.Value, Value))
    return false;
  DryValues[Key] = Value;
  return true;
}

bool Lowerer::lowerFor(const Stmt &S) {
  std::int64_t From, To;
  if (!evalExpr(*S.From, From) || !evalExpr(*S.To, To))
    return false;
  // The loop variable is implicitly a scalar dry variable.
  VarDecls.try_emplace(S.LoopVar, std::vector<std::int64_t>{});
  if (!VarDecls[S.LoopVar].empty())
    return fail(S.Line,
                format("loop variable '%s' is an array", S.LoopVar.c_str()));
  for (std::int64_t I = From; I <= To; ++I) {
    DryValues[S.LoopVar] = I;
    for (const StmtPtr &Body : S.Body)
      if (!lowerStmt(*Body))
        return false;
  }
  return true;
}

bool Lowerer::lowerStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::FluidDecl:
    for (const Stmt::Decl &D : S.Decls) {
      if (FluidDecls.count(D.Name) || VarDecls.count(D.Name))
        return fail(S.Line, format("redeclaration of '%s'", D.Name.c_str()));
      FluidDecls[D.Name] = D.Dims;
    }
    return true;
  case Stmt::Kind::VarDecl:
    for (const Stmt::Decl &D : S.Decls) {
      if (FluidDecls.count(D.Name) || VarDecls.count(D.Name))
        return fail(S.Line, format("redeclaration of '%s'", D.Name.c_str()));
      VarDecls[D.Name] = D.Dims;
    }
    return true;
  case Stmt::Kind::DryAssign:
    return lowerDryAssign(S);
  case Stmt::Kind::Mix:
    return lowerMix(S);
  case Stmt::Kind::Separate:
    return lowerSeparate(S);
  case Stmt::Kind::Incubate:
  case Stmt::Kind::Concentrate:
    return lowerUnaryOp(S);
  case Stmt::Kind::Sense:
    return lowerSense(S);
  case Stmt::Kind::For:
    return lowerFor(S);
  case Stmt::Kind::If: {
    if (S.UnknownCond) {
      // Run-time condition (`IF ?`): "we conservatively include both if
      // and else paths in our DAG" (Section 3.5) -- both branches' uses
      // reserve volume. Fluids bound inside either branch do not escape
      // (which branch ran is unknowable at compile time), so bindings and
      // `it` are restored afterwards and later uses of branch-local
      // results are diagnosed as undefined.
      auto SavedBindings = FluidBindings;
      auto SavedDry = DryValues;
      NodeId SavedIt = It;
      // Branch-local state is rolled back, but input fluids first used
      // inside a branch are global (both branches draw from the same
      // reservoir), so their bindings are re-applied after the rollback.
      auto RestoreState = [&] {
        FluidBindings = SavedBindings;
        DryValues = SavedDry;
        It = SavedIt;
        for (NodeId In : Result.Inputs)
          FluidBindings[Result.Graph.node(In).Name] = In;
      };
      for (const StmtPtr &Body : S.Body)
        if (!lowerStmt(*Body))
          return false;
      RestoreState();
      for (const StmtPtr &Body : S.ElseBody)
        if (!lowerStmt(*Body))
          return false;
      RestoreState();
      return true;
    }
    // Compile-time conditions (loop indices, accumulated counters):
    // non-zero selects the THEN branch.
    std::int64_t Cond;
    if (!evalExpr(*S.Cond, Cond))
      return false;
    for (const StmtPtr &Body : (Cond != 0 ? S.Body : S.ElseBody))
      if (!lowerStmt(*Body))
        return false;
    return true;
  }
  }
  AQUA_UNREACHABLE("bad Stmt kind");
}

} // namespace

Expected<LoweredAssay> aqua::lang::lowerAssay(const Program &P) {
  Lowerer L;
  return L.run(P);
}

Expected<LoweredAssay> aqua::lang::compileAssay(std::string_view Source) {
  Expected<Program> P = parseAssay(Source);
  if (!P.ok())
    return Expected<LoweredAssay>::error(P.message());
  return lowerAssay(*P);
}
