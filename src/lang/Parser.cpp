//===- Parser.cpp - Assay language parser --------------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/lang/Parser.h"

#include "aqua/lang/Lexer.h"
#include "aqua/support/StringUtils.h"

using namespace aqua;
using namespace aqua::lang;

namespace {

/// Recursive-descent parser over the token stream. Every parse method
/// returns false after calling fail(), which records the first diagnostic.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  Expected<Program> run() {
    Program P;
    if (!parseProgram(P))
      return Expected<Program>::error(Diag);
    return Expected<Program>(std::move(P));
  }

private:
  const Token &peek(int Ahead = 0) const {
    size_t I = Pos + static_cast<size_t>(Ahead);
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &advance() { return Tokens[Pos++]; }
  bool check(TokenKind K) const { return peek().Kind == K; }

  bool fail(const std::string &Msg) {
    if (Diag.empty())
      Diag = format("%d:%d: %s", peek().Line, peek().Col, Msg.c_str());
    return false;
  }

  bool expect(TokenKind K) {
    if (!check(K))
      return fail(format("expected '%s', found '%s'", tokenKindName(K),
                         peek().Text.empty() ? tokenKindName(peek().Kind)
                                             : peek().Text.c_str()));
    advance();
    return true;
  }

  bool accept(TokenKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }

  /// Statement separator: ';', optional right before END/ENDFOR.
  bool expectTerminator() {
    if (accept(TokenKind::Semicolon))
      return true;
    if (check(TokenKind::KwEnd) || check(TokenKind::KwEndFor))
      return true;
    return fail("expected ';'");
  }

  bool parseProgram(Program &P);
  bool parseStmtList(std::vector<StmtPtr> &Out, TokenKind Closer);
  bool parseStmt(StmtPtr &Out);
  bool parseDeclList(Stmt &S);
  bool parseMixTail(Stmt &S);
  bool parseFluidRef(FluidRef &Ref);
  bool parseExpr(ExprPtr &Out);
  bool parseTerm(ExprPtr &Out);
  bool parsePrimary(ExprPtr &Out);

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::string Diag;
};

bool Parser::parseProgram(Program &P) {
  if (!expect(TokenKind::KwAssay))
    return false;
  if (!check(TokenKind::Identifier))
    return fail("expected assay name");
  P.Name = advance().Text;
  if (!expect(TokenKind::KwStart))
    return false;
  if (!parseStmtList(P.Stmts, TokenKind::KwEnd))
    return false;
  return expect(TokenKind::KwEnd);
}

bool Parser::parseStmtList(std::vector<StmtPtr> &Out, TokenKind Closer) {
  while (!check(Closer)) {
    if (check(TokenKind::Eof))
      return fail(format("expected '%s'", tokenKindName(Closer)));
    StmtPtr S;
    if (!parseStmt(S))
      return false;
    Out.push_back(std::move(S));
  }
  return true;
}

bool Parser::parseDeclList(Stmt &S) {
  do {
    if (!check(TokenKind::Identifier))
      return fail("expected declared name");
    Stmt::Decl D;
    D.Name = advance().Text;
    while (accept(TokenKind::LBracket)) {
      if (!check(TokenKind::Integer))
        return fail("expected array dimension");
      D.Dims.push_back(advance().IntValue);
      if (!expect(TokenKind::RBracket))
        return false;
    }
    S.Decls.push_back(std::move(D));
  } while (accept(TokenKind::Comma));
  return expectTerminator();
}

bool Parser::parseFluidRef(FluidRef &Ref) {
  Ref.Line = peek().Line;
  if (accept(TokenKind::KwIt)) {
    Ref.IsIt = true;
    return true;
  }
  if (!check(TokenKind::Identifier))
    return fail("expected fluid name or 'it'");
  Ref.Name = advance().Text;
  while (accept(TokenKind::LBracket)) {
    ExprPtr Index;
    if (!parseExpr(Index))
      return false;
    Ref.Indices.push_back(std::move(Index));
    if (!expect(TokenKind::RBracket))
      return false;
  }
  return true;
}

bool Parser::parseMixTail(Stmt &S) {
  S.K = Stmt::Kind::Mix;
  FluidRef First;
  if (!parseFluidRef(First))
    return false;
  S.Operands.push_back(std::move(First));
  while (accept(TokenKind::KwAnd)) {
    FluidRef Ref;
    if (!parseFluidRef(Ref))
      return false;
    S.Operands.push_back(std::move(Ref));
  }
  if (S.Operands.size() < 2)
    return fail("a MIX needs at least two operands");
  if (accept(TokenKind::KwIn)) {
    if (!expect(TokenKind::KwRatios))
      return false;
    ExprPtr R;
    if (!parseExpr(R))
      return false;
    S.Ratios.push_back(std::move(R));
    while (accept(TokenKind::Colon)) {
      ExprPtr Next;
      if (!parseExpr(Next))
        return false;
      S.Ratios.push_back(std::move(Next));
    }
    if (S.Ratios.size() != S.Operands.size())
      return fail(format("MIX has %zu operands but %zu ratios",
                         S.Operands.size(), S.Ratios.size()));
  }
  if (!expect(TokenKind::KwFor))
    return false;
  return parseExpr(S.Seconds);
}

bool Parser::parseStmt(StmtPtr &Out) {
  auto S = std::make_unique<Stmt>();
  S->Line = peek().Line;

  switch (peek().Kind) {
  case TokenKind::KwFluid:
    advance();
    S->K = Stmt::Kind::FluidDecl;
    if (!parseDeclList(*S))
      return false;
    break;

  case TokenKind::KwVar:
    advance();
    S->K = Stmt::Kind::VarDecl;
    if (!parseDeclList(*S))
      return false;
    break;

  case TokenKind::KwMix:
    advance();
    if (!parseMixTail(*S) || !expectTerminator())
      return false;
    break;

  case TokenKind::KwSeparate:
  case TokenKind::KwLCSeparate: {
    S->K = Stmt::Kind::Separate;
    S->IsLC = advance().Kind == TokenKind::KwLCSeparate;
    if (!parseFluidRef(S->Input))
      return false;
    if (!expect(TokenKind::KwMatrix) || !check(TokenKind::Identifier))
      return fail("expected matrix fluid name");
    S->MatrixName = advance().Text;
    if (!expect(TokenKind::KwUsing) || !check(TokenKind::Identifier))
      return fail("expected pusher fluid name");
    S->UsingName = advance().Text;
    if (!expect(TokenKind::KwFor) || !parseExpr(S->Seconds))
      return false;
    if (accept(TokenKind::KwYield)) {
      if (!parseExpr(S->YieldNum) || !expect(TokenKind::KwOf) ||
          !parseExpr(S->YieldDen))
        return false;
    }
    if (!expect(TokenKind::KwInto) || !check(TokenKind::Identifier))
      return fail("expected effluent name");
    S->EffluentName = advance().Text;
    if (!expect(TokenKind::KwAnd) || !check(TokenKind::Identifier))
      return fail("expected waste name");
    S->WasteName = advance().Text;
    if (!expectTerminator())
      return false;
    break;
  }

  case TokenKind::KwIncubate:
  case TokenKind::KwConcentrate: {
    S->K = peek().Kind == TokenKind::KwIncubate ? Stmt::Kind::Incubate
                                                : Stmt::Kind::Concentrate;
    advance();
    if (!parseFluidRef(S->Input))
      return false;
    if (!expect(TokenKind::KwAt) || !parseExpr(S->Temp))
      return false;
    if (!expect(TokenKind::KwFor) || !parseExpr(S->Seconds))
      return false;
    if (accept(TokenKind::KwYield)) {
      if (!parseExpr(S->YieldNum) || !expect(TokenKind::KwOf) ||
          !parseExpr(S->YieldDen))
        return false;
    }
    if (!expectTerminator())
      return false;
    break;
  }

  case TokenKind::KwSense: {
    advance();
    S->K = Stmt::Kind::Sense;
    if (accept(TokenKind::KwOptical))
      S->SenseFlavor = "OD";
    else if (accept(TokenKind::KwFluorescence))
      S->SenseFlavor = "FL";
    else
      return fail("expected OPTICAL or FLUORESCENCE");
    if (!parseFluidRef(S->Input))
      return false;
    if (!expect(TokenKind::KwInto) || !parseFluidRef(S->SenseInto))
      return false;
    if (!expectTerminator())
      return false;
    break;
  }

  case TokenKind::KwFor: {
    advance();
    S->K = Stmt::Kind::For;
    if (!check(TokenKind::Identifier))
      return fail("expected loop variable");
    S->LoopVar = advance().Text;
    if (!expect(TokenKind::KwFrom) || !parseExpr(S->From))
      return false;
    if (!expect(TokenKind::KwTo) || !parseExpr(S->To))
      return false;
    if (!expect(TokenKind::KwStart))
      return false;
    if (!parseStmtList(S->Body, TokenKind::KwEndFor))
      return false;
    if (!expect(TokenKind::KwEndFor))
      return false;
    accept(TokenKind::Semicolon); // Optional after ENDFOR.
    break;
  }

  case TokenKind::KwIf: {
    advance();
    S->K = Stmt::Kind::If;
    if (accept(TokenKind::Question)) {
      S->UnknownCond = true; // Run-time condition: include both paths.
    } else if (!parseExpr(S->Cond)) {
      return false;
    }
    if (!expect(TokenKind::KwStart))
      return false;
    // Body runs to ELSE or ENDIF.
    while (!check(TokenKind::KwElse) && !check(TokenKind::KwEndIf)) {
      if (check(TokenKind::Eof))
        return fail("expected 'ENDIF'");
      StmtPtr Body;
      if (!parseStmt(Body))
        return false;
      S->Body.push_back(std::move(Body));
    }
    if (accept(TokenKind::KwElse)) {
      while (!check(TokenKind::KwEndIf)) {
        if (check(TokenKind::Eof))
          return fail("expected 'ENDIF'");
        StmtPtr Body;
        if (!parseStmt(Body))
          return false;
        S->ElseBody.push_back(std::move(Body));
      }
    }
    if (!expect(TokenKind::KwEndIf))
      return false;
    accept(TokenKind::Semicolon); // Optional after ENDIF.
    break;
  }

  case TokenKind::Identifier: {
    // `ref = MIX ...` or `ref = dry-expr`.
    if (!parseFluidRef(S->Target))
      return false;
    if (!expect(TokenKind::Equals))
      return false;
    if (accept(TokenKind::KwMix)) {
      if (!parseMixTail(*S))
        return false;
      S->MixResult = std::move(S->Target);
      S->Target = FluidRef{};
    } else {
      S->K = Stmt::Kind::DryAssign;
      if (!parseExpr(S->Value))
        return false;
    }
    if (!expectTerminator())
      return false;
    break;
  }

  default:
    return fail(format("unexpected token '%s'",
                       peek().Text.empty() ? tokenKindName(peek().Kind)
                                           : peek().Text.c_str()));
  }

  Out = std::move(S);
  return true;
}

bool Parser::parseExpr(ExprPtr &Out) {
  if (!parseTerm(Out))
    return false;
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    char Op = advance().Text[0];
    ExprPtr Rhs;
    if (!parseTerm(Rhs))
      return false;
    auto Bin = std::make_unique<Expr>();
    Bin->K = Expr::Kind::BinOp;
    Bin->Op = Op;
    Bin->Line = Out->Line;
    Bin->Lhs = std::move(Out);
    Bin->Rhs = std::move(Rhs);
    Out = std::move(Bin);
  }
  return true;
}

bool Parser::parseTerm(ExprPtr &Out) {
  if (!parsePrimary(Out))
    return false;
  while (check(TokenKind::Star) || check(TokenKind::Slash)) {
    char Op = advance().Text[0];
    ExprPtr Rhs;
    if (!parsePrimary(Rhs))
      return false;
    auto Bin = std::make_unique<Expr>();
    Bin->K = Expr::Kind::BinOp;
    Bin->Op = Op;
    Bin->Line = Out->Line;
    Bin->Lhs = std::move(Out);
    Bin->Rhs = std::move(Rhs);
    Out = std::move(Bin);
  }
  return true;
}

bool Parser::parsePrimary(ExprPtr &Out) {
  auto E = std::make_unique<Expr>();
  E->Line = peek().Line;
  if (check(TokenKind::Integer)) {
    E->K = Expr::Kind::Number;
    E->Value = advance().IntValue;
    Out = std::move(E);
    return true;
  }
  if (check(TokenKind::Minus)) {
    // Unary minus: 0 - primary.
    advance();
    ExprPtr Inner;
    if (!parsePrimary(Inner))
      return false;
    E->K = Expr::Kind::BinOp;
    E->Op = '-';
    E->Lhs = std::make_unique<Expr>();
    E->Lhs->K = Expr::Kind::Number;
    E->Lhs->Value = 0;
    E->Rhs = std::move(Inner);
    Out = std::move(E);
    return true;
  }
  if (check(TokenKind::Identifier)) {
    E->K = Expr::Kind::VarRef;
    E->Name = advance().Text;
    while (accept(TokenKind::LBracket)) {
      ExprPtr Index;
      if (!parseExpr(Index))
        return false;
      E->Indices.push_back(std::move(Index));
      if (!expect(TokenKind::RBracket))
        return false;
    }
    Out = std::move(E);
    return true;
  }
  return fail("expected expression");
}

} // namespace

Expected<Program> aqua::lang::parseAssay(std::string_view Source) {
  Expected<std::vector<Token>> Tokens = tokenize(Source);
  if (!Tokens.ok())
    return Expected<Program>::error(Tokens.message());
  Parser P(std::move(*Tokens));
  return P.run();
}
