//===- Dmf.cpp - Droplet-based (DMF) adaptation ----------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/droplet/Dmf.h"

#include "aqua/support/StringUtils.h"

#include <numeric>

using namespace aqua;
using namespace aqua::core;
using namespace aqua::droplet;
using namespace aqua::ir;

Expected<DmfAssignment> aqua::droplet::dmfDagSolve(const AssayGraph &G,
                                                   const DmfSpec &Spec) {
  using RetTy = Expected<DmfAssignment>;
  if (Status S = G.verify(); !S.ok())
    return RetTy::error("invalid assay graph: " + S.message());
  for (NodeId N : G.liveNodes())
    if (G.node(N).UnknownVolume)
      return RetTy::error(
          format("node '%s' has a run-time-unknown volume; not supported "
                 "on the droplet device",
                 G.node(N).Name.c_str()));

  // The backward Vnorm pass is the flow-based DAGSolve's, unchanged.
  DagSolveResult Vnorms;
  computeVnorms(G, DagSolveOptions{}, Vnorms);
  if (Vnorms.MaxVnorm.isZero())
    return RetTy::error("degenerate assay: no outputs");

  // Dispensing: the smallest scale at which every volume is a whole
  // number of droplets is the lcm of the Vnorm denominators.
  std::int64_t Scale = 1;
  auto FoldDenominator = [&Scale](const Rational &V) -> bool {
    if (V.isZero())
      return true;
    std::int64_t Den = V.denominator();
    std::int64_t Gcd = std::gcd(Scale, Den);
    // Overflow guard: assays with pathological denominators are rejected
    // rather than silently wrapped.
    if (Scale > (std::int64_t(1) << 40) / (Den / Gcd))
      return false;
    Scale = Scale / Gcd * Den;
    return true;
  };
  for (NodeId N : G.liveNodes())
    if (!FoldDenominator(Vnorms.NodeVnorm[N]))
      return RetTy::error("droplet scale overflow (denominators too wild)");
  for (EdgeId E : G.liveEdges())
    if (!FoldDenominator(Vnorms.EdgeVnorm[E]))
      return RetTy::error("droplet scale overflow (denominators too wild)");

  DmfAssignment A;
  A.Scale = Scale;
  A.NodeDroplets.assign(G.numNodeSlots(), 0);
  A.EdgeDroplets.assign(G.numEdgeSlots(), 0);
  A.MinEdgeDroplets = std::numeric_limits<std::int64_t>::max();
  for (NodeId N : G.liveNodes()) {
    Rational D = Vnorms.NodeVnorm[N] * Rational(Scale);
    assert(D.isInteger() && "scale must clear all denominators");
    A.NodeDroplets[N] = D.numerator();
    // The site capacity binds on the input side (what the merge site
    // holds while the operation runs).
    Rational In = nodeInputVnorm(G, N, Vnorms) * Rational(Scale);
    A.MaxSiteDroplets = std::max(A.MaxSiteDroplets, In.ceil());
  }
  for (EdgeId E : G.liveEdges()) {
    Rational D = Vnorms.EdgeVnorm[E] * Rational(Scale);
    assert(D.isInteger() && "scale must clear all denominators");
    A.EdgeDroplets[E] = D.numerator();
    A.MinEdgeDroplets = std::min(A.MinEdgeDroplets, A.EdgeDroplets[E]);
  }

  A.Feasible = A.MaxSiteDroplets <= Spec.CapacityDroplets;
  return A;
}
