//===- Router.cpp - Electrode-grid droplet routing -------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/droplet/Router.h"

#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <map>
#include <queue>

using namespace aqua;
using namespace aqua::droplet;
using namespace aqua::ir;

namespace {

struct Cell {
  int X = -1, Y = -1;
  bool valid() const { return X >= 0; }
  friend bool operator==(const Cell &A, const Cell &B) {
    return A.X == B.X && A.Y == B.Y;
  }
};

int chebyshev(const Cell &A, const Cell &B) {
  return std::max(std::abs(A.X - B.X), std::abs(A.Y - B.Y));
}

/// A parked droplet.
struct Droplet {
  Cell At;
  std::int64_t Units = 0;
};

class Executor {
public:
  Executor(const AssayGraph &G, const DmfAssignment &A, const DmfSpec &Spec)
      : G(G), A(A), Spec(Spec) {}

  Expected<DmfRunStats> run();

private:
  bool inBounds(const Cell &C) const {
    return C.X >= 0 && C.X < Spec.Width && C.Y >= 0 && C.Y < Spec.Height;
  }

  /// True when \p C keeps the static fluidic constraint w.r.t. every
  /// parked droplet except \p Skip1/\p Skip2.
  bool clearOf(const Cell &C, int Skip1 = -1, int Skip2 = -1) const {
    for (const auto &[Id, D] : Parked) {
      if (Id == Skip1 || Id == Skip2)
        continue;
      if (chebyshev(C, D.At) < 2)
        return false;
    }
    return true;
  }

  /// First free cell (row-major) satisfying the constraint.
  Cell findFreeSite() const {
    for (int Y = 0; Y < Spec.Height; ++Y)
      for (int X = 2; X < Spec.Width - 2; ++X) {
        Cell C{X, Y};
        if (clearOf(C))
          return C;
      }
    return Cell{};
  }

  /// BFS route from \p From to \p To for droplet \p Self; \p MergeTarget
  /// (or -1) is the droplet it may approach and land on. Returns path
  /// length, or -1 when unroutable.
  int route(const Cell &From, const Cell &To, int Self, int MergeTarget);

  /// Splits \p Units off droplet \p SrcId into a fresh droplet parked on a
  /// clear neighbour cell; returns its id or -1.
  int splitOff(int SrcId, std::int64_t Units);

  /// Disposes droplet \p Id in place (to waste).
  void dispose(int Id) { Parked.erase(Id); }

  int park(Cell At, std::int64_t Units) {
    int Id = NextId++;
    Parked[Id] = Droplet{At, Units};
    Stats.PeakDroplets =
        std::max(Stats.PeakDroplets, static_cast<int>(Parked.size()));
    return Id;
  }

  const AssayGraph &G;
  const DmfAssignment &A;
  const DmfSpec &Spec;
  DmfRunStats Stats;

  std::map<int, Droplet> Parked;
  std::map<NodeId, int> ValueDroplet; // Produced fluid -> droplet id.
  int NextId = 0;
  int NextPortY = 0;
  int NextSenseY = 0;
};

int Executor::route(const Cell &From, const Cell &To, int Self,
                    int MergeTarget) {
  auto Key = [this](const Cell &C) { return C.Y * Spec.Width + C.X; };
  std::vector<int> Dist(Spec.Width * Spec.Height, -1);
  std::queue<Cell> Queue;
  Dist[Key(From)] = 0;
  Queue.push(From);
  while (!Queue.empty()) {
    Cell C = Queue.front();
    Queue.pop();
    if (C == To)
      return Dist[Key(C)];
    const int DX[] = {1, -1, 0, 0};
    const int DY[] = {0, 0, 1, -1};
    for (int Dir = 0; Dir < 4; ++Dir) {
      Cell N{C.X + DX[Dir], C.Y + DY[Dir]};
      if (!inBounds(N) || Dist[Key(N)] >= 0)
        continue;
      // The target cell itself is reachable only as the merge landing.
      bool IsLanding = N == To;
      if (!IsLanding && !clearOf(N, Self, MergeTarget))
        continue;
      if (IsLanding && MergeTarget < 0 && !clearOf(N, Self))
        continue;
      Dist[Key(N)] = Dist[Key(C)] + 1;
      Queue.push(N);
    }
  }
  return -1;
}

int Executor::splitOff(int SrcId, std::int64_t Units) {
  Droplet &Src = Parked[SrcId];
  assert(Src.Units >= Units && "splitting more than the droplet holds");
  const int DX[] = {1, -1, 0, 0, 1, 1, -1, -1};
  const int DY[] = {0, 0, 1, -1, 1, -1, 1, -1};
  for (int Dir = 0; Dir < 8; ++Dir) {
    Cell N{Src.At.X + DX[Dir], Src.At.Y + DY[Dir]};
    if (!inBounds(N) || !clearOf(N, SrcId))
      continue;
    Src.Units -= Units;
    ++Stats.Splits;
    ++Stats.Steps; // The split actuation.
    int Id = park(N, Units);
    if (Src.Units == 0) {
      // Fully consumed: the remainder vanishes with the last split.
      dispose(SrcId);
    }
    return Id;
  }
  return -1;
}

Expected<DmfRunStats> Executor::run() {
  for (NodeId N : G.topologicalOrder()) {
    const Node &Nd = G.node(N);
    switch (Nd.Kind) {
    case NodeKind::Input: {
      // Dispense at a west-edge port.
      if (NextPortY >= Spec.Height)
        return Expected<DmfRunStats>::error("out of input ports");
      Cell Port{0, NextPortY};
      NextPortY += 2; // Keep the fluidic spacing between ports.
      if (!clearOf(Port))
        return Expected<DmfRunStats>::error("input port blocked");
      ++Stats.Dispenses;
      ValueDroplet[N] = park(Port, A.NodeDroplets[N]);
      break;
    }

    case NodeKind::Excess: {
      // The producer's excess share: split it off and dispose.
      EdgeId E = G.inEdges(N)[0];
      int SrcId = ValueDroplet[G.edge(E).Src];
      int Id = splitOff(SrcId, A.EdgeDroplets[E]);
      if (Id < 0)
        return Expected<DmfRunStats>::error("no room to split excess");
      dispose(Id);
      break;
    }

    case NodeKind::Mix:
    case NodeKind::Incubate:
    case NodeKind::Separate:
    case NodeKind::Sense:
    case NodeKind::Output: {
      // Pick the operation site: sense/output at the east edge, others
      // anywhere clear.
      Cell Site;
      if (Nd.Kind == NodeKind::Sense || Nd.Kind == NodeKind::Output) {
        while (NextSenseY < Spec.Height &&
               !clearOf(Cell{Spec.Width - 1, NextSenseY}))
          NextSenseY += 2;
        if (NextSenseY >= Spec.Height)
          return Expected<DmfRunStats>::error("out of sense sites");
        Site = Cell{Spec.Width - 1, NextSenseY};
      } else {
        Site = findFreeSite();
        if (!Site.valid())
          return Expected<DmfRunStats>::error(
              "grid too congested to place an operation site");
      }

      // Bring every operand's portion to the site, merging on arrival.
      int SiteDroplet = -1;
      for (EdgeId E : G.inEdges(N)) {
        int SrcId = ValueDroplet[G.edge(E).Src];
        if (!Parked.count(SrcId))
          return Expected<DmfRunStats>::error(
              format("operand of '%s' already consumed", Nd.Name.c_str()));
        int Portion = splitOff(SrcId, A.EdgeDroplets[E]);
        if (Portion < 0)
          return Expected<DmfRunStats>::error("no room to split an operand");
        int Len = route(Parked[Portion].At, Site, Portion, SiteDroplet);
        if (Len < 0)
          return Expected<DmfRunStats>::error(
              format("unroutable transfer for '%s'", Nd.Name.c_str()));
        Stats.Steps += Len;
        if (SiteDroplet < 0) {
          Parked[Portion].At = Site;
          SiteDroplet = Portion;
        } else {
          Parked[SiteDroplet].Units += Parked[Portion].Units;
          dispose(Portion);
          ++Stats.Merges;
        }
      }
      if (SiteDroplet < 0)
        return Expected<DmfRunStats>::error(
            format("operation '%s' has no operands", Nd.Name.c_str()));

      // Yield: separations shed their waste fraction.
      std::int64_t Keep = A.NodeDroplets[N];
      Droplet &D = Parked[SiteDroplet];
      if (D.Units > Keep) {
        ++Stats.Splits;
        ++Stats.Steps;
        D.Units = Keep;
      }

      if (Nd.Kind == NodeKind::Sense || Nd.Kind == NodeKind::Output) {
        ++Stats.Senses;
        dispose(SiteDroplet);
        NextSenseY += 2;
      } else {
        ValueDroplet[N] = SiteDroplet;
      }
      break;
    }
    }
  }
  Stats.Completed = true;
  return Stats;
}

} // namespace

Expected<DmfRunStats> aqua::droplet::executeOnGrid(const AssayGraph &G,
                                                   const DmfAssignment &A,
                                                   const DmfSpec &Spec) {
  if (!A.Feasible)
    return Expected<DmfRunStats>::error(
        "assignment infeasible for the droplet device");
  Executor E(G, A, Spec);
  return E.run();
}
