//===- Generator.cpp - Random assay-program generator ---------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/check/Generator.h"

#include "aqua/support/Random.h"
#include "aqua/support/StringUtils.h"

#include <algorithm>
#include <set>

using namespace aqua;
using namespace aqua::check;

namespace {

/// Statement-kind weights by difficulty; higher difficulty shifts mass to
/// separations, loops and deep reuse.
struct Weights {
  int Mix, Incubate, Sense, Separate, Concentrate, Loop;
};

Weights weightsFor(int Difficulty, const GenConfig &Config) {
  Weights W;
  W.Mix = 10;
  W.Incubate = 3;
  W.Sense = 3;
  W.Separate = 1 + Difficulty;
  W.Concentrate = 1 + Difficulty / 2;
  W.Loop = Config.AllowLoops ? Difficulty : 0;
  return W;
}

class Generator {
public:
  Generator(std::uint64_t Seed, const GenConfig &Config)
      : Rng(Seed), Config(Config),
        Difficulty(std::clamp(Config.Difficulty, 1, 5)) {}

  GenProgram run(std::uint64_t Seed) {
    GenProgram P;
    P.Seed = Seed;
    P.Name = format("gen_%llu", static_cast<unsigned long long>(Seed));
    pickYield(P);

    int Statements = 2 + 2 * Difficulty +
                     static_cast<int>(Rng.nextInRange(0, 2 * Difficulty));
    Weights W = weightsFor(Difficulty, Config);
    for (int I = 0; I < Statements; ++I)
      P.Stmts.push_back(nextStmt(W));

    // Every program ends in at least one sense so the simulation oracle has
    // a composition vector to cross-check.
    P.Stmts.push_back(makeSense());
    return P;
  }

private:
  /// The shared yield fraction: simple fractions whose product with any
  /// least-count-multiple volume stays on the metering grid often enough to
  /// keep managed simulations clean.
  void pickYield(GenProgram &P) {
    static const std::pair<std::int64_t, std::int64_t> Choices[] = {
        {1, 2}, {1, 4}, {3, 4}, {2, 5}, {1, 5}};
    auto [N, D] = Choices[Rng.nextInRange(0, 4)];
    P.YieldNum = N;
    P.YieldDen = D;
  }

  std::string freshInput() {
    std::string Name = format("F%d", ++InputCounter);
    Pool.push_back(Name);
    return Name;
  }

  /// A fluid operand: mostly reuse (stressing replication), sometimes a
  /// fresh input.
  std::string pickFluid() {
    if (Pool.empty() || Rng.nextInRange(0, 9) < 3)
      return freshInput();
    return Pool[Rng.nextInRange(0, static_cast<std::int64_t>(Pool.size()) - 1)];
  }

  /// `it` is only meaningful right after a fluid-producing statement; using
  /// it is how incubate/concentrate products stay reachable.
  std::string pickInput() {
    if (ItValid && Rng.nextInRange(0, 3) == 0)
      return "it";
    return pickFluid();
  }

  std::int64_t ratioPart() {
    // Extreme parts appear from difficulty 2 up; 1:999 is the paper's
    // hardest case (three-stage cascade).
    int ExtremeChance = Difficulty >= 4 ? 4 : (Difficulty >= 2 ? 2 : 0);
    if (ExtremeChance && Rng.nextInRange(0, 9) < ExtremeChance) {
      static const std::int64_t Extreme[] = {49, 99, 199, 499, 999};
      std::int64_t Cap = Difficulty >= 3 ? 4 : 1;
      return Extreme[Rng.nextInRange(0, Cap)];
    }
    return Rng.nextInRange(1, 9);
  }

  GenStmt makeMix() {
    GenStmt S;
    S.K = GenStmt::Kind::Mix;
    int MaxOperands = std::min(4, 2 + Difficulty / 2);
    int Count = static_cast<int>(Rng.nextInRange(2, MaxOperands));
    std::set<std::string> Used;
    if (ItValid && Rng.nextInRange(0, 3) == 0) {
      S.Operands.push_back("it");
      Used.insert("it");
      // `it` aliases the last named product (if any); mixing both names
      // would be the same fluid twice.
      if (!ItName.empty())
        Used.insert(ItName);
    }
    while (static_cast<int>(S.Operands.size()) < Count) {
      std::string F = pickFluid();
      if (Used.count(F))
        F = freshInput(); // Distinct operands: a MIX may not reuse a fluid.
      Used.insert(F);
      S.Operands.push_back(F);
    }
    for (size_t I = 0; I < S.Operands.size(); ++I)
      S.Ratios.push_back(ratioPart());
    // At most one extreme part per mix keeps LP coefficients sane while
    // still forcing cascades.
    bool SeenExtreme = false;
    for (std::int64_t &R : S.Ratios) {
      if (R > 20) {
        if (SeenExtreme)
          R = Rng.nextInRange(1, 9);
        SeenExtreme = true;
      }
    }
    S.Seconds = Rng.nextInRange(1, 60);
    if (Rng.nextInRange(0, 4) != 0) {
      S.Result = format("p%d", ++ProductCounter);
      Pool.push_back(S.Result);
    }
    ItValid = true;
    ItName = S.Result; // Empty for an anonymous mix.
    return S;
  }

  GenStmt makeIncubate() {
    GenStmt S;
    S.K = GenStmt::Kind::Incubate;
    S.Input = pickInput();
    S.TempC = Rng.nextInRange(25, 95);
    S.Seconds = Rng.nextInRange(10, 600);
    ItValid = true; // The incubated product is only reachable as `it`.
    ItName.clear();
    return S;
  }

  GenStmt makeSense() {
    GenStmt S;
    S.K = GenStmt::Kind::Sense;
    S.Input = pickInput();
    S.SenseArray = format("R%d", ++SenseCounter);
    S.Fluorescence = Rng.nextInRange(0, 1) == 1;
    // Sensing neither rebinds `it` nor consumes the name; ItValid unchanged.
    return S;
  }

  GenStmt makeSeparate() {
    GenStmt S;
    S.K = GenStmt::Kind::Separate;
    S.Input = pickInput();
    S.LC = Rng.nextInRange(0, 1) == 1;
    int Id = ++SeparateCounter;
    S.MatrixName = format("Mtx%d", Id);
    S.PusherName = format("Buf%d", Id);
    S.EffluentName = format("eff%d", Id);
    S.WasteName = format("w%d", Id);
    S.HasYield = !Config.AllowUnknownVolumes || Rng.nextInRange(0, 3) != 0;
    Pool.push_back(S.EffluentName);
    ItValid = true;
    ItName = S.EffluentName;
    return S;
  }

  GenStmt makeConcentrate() {
    GenStmt S;
    S.K = GenStmt::Kind::Concentrate;
    S.Input = pickInput();
    S.TempC = Rng.nextInRange(60, 95);
    S.Seconds = Rng.nextInRange(30, 300);
    S.HasYield = !Config.AllowUnknownVolumes || Rng.nextInRange(0, 3) != 0;
    ItValid = true;
    ItName.clear();
    return S;
  }

  GenStmt makeLoop() {
    GenStmt S;
    S.K = GenStmt::Kind::DilutionLoop;
    int Id = ++LoopCounter;
    S.LoopVar = format("i%d", Id);
    S.DilVar = format("d%d", Id);
    S.SenseArray = format("LR%d", Id);
    S.Result = format("dil%d", Id);
    S.Operands = {pickFluid(), pickFluid()};
    if (S.Operands[0] == S.Operands[1])
      S.Operands[1] = freshInput();
    S.Trips = Rng.nextInRange(2, 1 + Difficulty);
    S.Factor = Difficulty >= 3 ? 10 : Rng.nextInRange(2, 5);
    S.DilBase = 1;
    // Keep the final dilution at or below the paper's 1:999.
    while (powCeil(S.Factor, S.Trips - 1) > 999)
      --S.Trips;
    if (S.Trips < 2)
      S.Trips = 2;
    S.Seconds = Rng.nextInRange(1, 30);
    Pool.push_back(S.Result); // The last iteration's binding escapes.
    ItValid = true;
    ItName = S.Result;
    return S;
  }

  static std::int64_t powCeil(std::int64_t Base, std::int64_t Exp) {
    std::int64_t V = 1;
    for (std::int64_t I = 0; I < Exp; ++I)
      V *= Base;
    return V;
  }

  GenStmt nextStmt(const Weights &W) {
    int Total = W.Mix + W.Incubate + W.Sense + W.Separate + W.Concentrate +
                W.Loop;
    std::int64_t Pick = Rng.nextInRange(0, Total - 1);
    if ((Pick -= W.Mix) < 0)
      return makeMix();
    if ((Pick -= W.Incubate) < 0)
      return makeIncubate();
    if ((Pick -= W.Sense) < 0)
      return makeSense();
    if ((Pick -= W.Separate) < 0)
      return makeSeparate();
    if ((Pick -= W.Concentrate) < 0)
      return makeConcentrate();
    return makeLoop();
  }

  SplitMix64 Rng;
  const GenConfig &Config;
  int Difficulty;

  std::vector<std::string> Pool; ///< Referencable fluid names.
  bool ItValid = false;
  std::string ItName; // The name `it` currently aliases; empty if anonymous.
  int InputCounter = 0, ProductCounter = 0, SenseCounter = 0;
  int SeparateCounter = 0, LoopCounter = 0;
};

/// Collects every referencable fluid name a statement mentions (wastes are
/// declared too; the language requires it).
void collectNames(const GenStmt &S, std::set<std::string> &Fluids,
                  std::set<std::string> &SenseScalars,
                  std::set<std::pair<std::string, std::int64_t>> &SenseArrays) {
  auto AddFluid = [&](const std::string &N) {
    if (!N.empty() && N != "it")
      Fluids.insert(N);
  };
  switch (S.K) {
  case GenStmt::Kind::Mix:
    for (const std::string &Op : S.Operands)
      AddFluid(Op);
    AddFluid(S.Result);
    break;
  case GenStmt::Kind::Incubate:
  case GenStmt::Kind::Concentrate:
    AddFluid(S.Input);
    break;
  case GenStmt::Kind::Sense:
    AddFluid(S.Input);
    SenseScalars.insert(S.SenseArray);
    break;
  case GenStmt::Kind::Separate:
    AddFluid(S.Input);
    AddFluid(S.EffluentName);
    AddFluid(S.WasteName);
    break;
  case GenStmt::Kind::DilutionLoop:
    for (const std::string &Op : S.Operands)
      AddFluid(Op);
    AddFluid(S.Result);
    SenseArrays.insert({S.SenseArray, S.Trips});
    break;
  }
}

void renderStmt(const GenProgram &P, const GenStmt &S, std::string &Out) {
  switch (S.K) {
  case GenStmt::Kind::Mix: {
    if (!S.Result.empty())
      Out += S.Result + " = ";
    Out += "MIX ";
    for (size_t I = 0; I < S.Operands.size(); ++I) {
      if (I)
        Out += " AND ";
      Out += S.Operands[I];
    }
    Out += " IN RATIOS ";
    for (size_t I = 0; I < S.Ratios.size(); ++I) {
      if (I)
        Out += " : ";
      Out += format("%lld", static_cast<long long>(S.Ratios[I]));
    }
    Out += format(" FOR %lld;\n", static_cast<long long>(S.Seconds));
    return;
  }
  case GenStmt::Kind::Incubate:
    Out += format("INCUBATE %s AT %lld FOR %lld;\n", S.Input.c_str(),
                  static_cast<long long>(S.TempC),
                  static_cast<long long>(S.Seconds));
    return;
  case GenStmt::Kind::Sense:
    Out += format("SENSE %s %s INTO %s[1];\n",
                  S.Fluorescence ? "FLUORESCENCE" : "OPTICAL", S.Input.c_str(),
                  S.SenseArray.c_str());
    return;
  case GenStmt::Kind::Separate: {
    Out += format("%s %s MATRIX %s USING %s FOR %lld",
                  S.LC ? "LCSEPARATE" : "SEPARATE", S.Input.c_str(),
                  S.MatrixName.c_str(), S.PusherName.c_str(),
                  static_cast<long long>(S.Seconds ? S.Seconds : 10));
    if (S.HasYield)
      Out += format(" YIELD %lld OF %lld", static_cast<long long>(P.YieldNum),
                    static_cast<long long>(P.YieldDen));
    Out += format(" INTO %s AND %s;\n", S.EffluentName.c_str(),
                  S.WasteName.c_str());
    return;
  }
  case GenStmt::Kind::Concentrate: {
    Out += format("CONCENTRATE %s AT %lld FOR %lld", S.Input.c_str(),
                  static_cast<long long>(S.TempC),
                  static_cast<long long>(S.Seconds));
    if (S.HasYield)
      Out += format(" YIELD %lld OF %lld", static_cast<long long>(P.YieldNum),
                    static_cast<long long>(P.YieldDen));
    Out += ";\n";
    return;
  }
  case GenStmt::Kind::DilutionLoop:
    Out += format("%s = %lld;\n", S.DilVar.c_str(),
                  static_cast<long long>(S.DilBase));
    Out += format("FOR %s FROM 1 TO %lld START\n", S.LoopVar.c_str(),
                  static_cast<long long>(S.Trips));
    Out += format("  %s = MIX %s AND %s IN RATIOS 1 : %s FOR %lld;\n",
                  S.Result.c_str(), S.Operands[0].c_str(),
                  S.Operands[1].c_str(), S.DilVar.c_str(),
                  static_cast<long long>(S.Seconds));
    Out += format("  SENSE OPTICAL %s INTO %s[%s];\n", S.Result.c_str(),
                  S.SenseArray.c_str(), S.LoopVar.c_str());
    Out += format("  %s = %s * %lld;\n", S.DilVar.c_str(), S.DilVar.c_str(),
                  static_cast<long long>(S.Factor));
    Out += "ENDFOR\n";
    return;
  }
}

} // namespace

std::string GenProgram::render() const {
  std::set<std::string> Fluids;
  std::set<std::string> SenseScalars;
  std::set<std::pair<std::string, std::int64_t>> SenseArrays;
  for (const GenStmt &S : Stmts)
    collectNames(S, Fluids, SenseScalars, SenseArrays);

  std::string Out = format("ASSAY %s START\n", Name.c_str());
  if (!Fluids.empty()) {
    Out += "fluid ";
    bool First = true;
    for (const std::string &F : Fluids) {
      if (!First)
        Out += ", ";
      Out += F;
      First = false;
    }
    Out += ";\n";
  }
  for (const std::string &R : SenseScalars)
    Out += format("VAR %s[1];\n", R.c_str());
  for (const auto &[Name, Dim] : SenseArrays)
    Out += format("VAR %s[%lld];\n", Name.c_str(),
                  static_cast<long long>(Dim));
  for (const GenStmt &S : Stmts) {
    if (S.K == GenStmt::Kind::DilutionLoop)
      Out += format("VAR %s;\n", S.DilVar.c_str());
  }
  for (const GenStmt &S : Stmts)
    renderStmt(*this, S, Out);
  Out += "END\n";
  return Out;
}

bool GenProgram::hasUnknownVolumes() const {
  for (const GenStmt &S : Stmts)
    if ((S.K == GenStmt::Kind::Separate ||
         S.K == GenStmt::Kind::Concentrate) &&
        !S.HasYield)
      return true;
  return false;
}

GenProgram aqua::check::generateProgram(std::uint64_t Seed,
                                        const GenConfig &Config) {
  Generator G(Seed, Config);
  return G.run(Seed);
}
