//===- Harness.cpp - Differential-testing harness -------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/check/Harness.h"

#include "aqua/support/Random.h"
#include "aqua/support/StringUtils.h"

#include <fstream>

using namespace aqua;
using namespace aqua::check;

namespace {

/// JSON string escaping for the summary (ASCII content only).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\', Out += C;
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

} // namespace

std::string HarnessResult::summary() const {
  std::string Out;
  Out += format("cases:             %d\n", Cases);
  Out += format("failures:          %d\n", Failures);
  Out += format("frontend ok:       %d\n", FrontendOk);
  Out += format("managed:           %d\n", Managed);
  Out += format("feasible:          %d\n", Feasible);
  Out += format("solved by LP:      %d\n", SolvedByLP);
  Out += format("simulated:         %d\n", Simulated);
  Out += format("exact composition: %d\n", ExactComposition);
  Out += format("ILP cross-checks:  %d\n", RanIlp);
  for (const FailedCase &F : Failed) {
    Out += format("FAILED case seed %llu (%d statements after %d shrink "
                  "evaluations)%s%s:\n",
                  static_cast<unsigned long long>(F.CaseSeed),
                  F.Minimal.numStatements(), F.ShrinkEvaluations,
                  F.ReproPath.empty() ? "" : ", repro ",
                  F.ReproPath.c_str());
    Out += F.Report.str();
  }
  return Out;
}

std::string HarnessResult::json() const {
  std::string Out = "{";
  Out += format("\"cases\":%d,\"failures\":%d,\"frontend_ok\":%d,"
                "\"managed\":%d,\"feasible\":%d,\"solved_by_lp\":%d,"
                "\"simulated\":%d,\"exact_composition\":%d,\"ilp_runs\":%d,",
                Cases, Failures, FrontendOk, Managed, Feasible, SolvedByLP,
                Simulated, ExactComposition, RanIlp);
  Out += "\"failed\":[";
  for (size_t I = 0; I < Failed.size(); ++I) {
    const FailedCase &F = Failed[I];
    if (I)
      Out += ",";
    Out += format("{\"seed\":%llu,\"statements\":%d,\"repro\":\"%s\","
                  "\"oracles\":[",
                  static_cast<unsigned long long>(F.CaseSeed),
                  F.Minimal.numStatements(),
                  jsonEscape(F.ReproPath).c_str());
    for (size_t J = 0; J < F.Report.Failures.size(); ++J) {
      if (J)
        Out += ",";
      Out += format("{\"oracle\":\"%s\",\"message\":\"%s\"}",
                    oracleName(F.Report.Failures[J].O),
                    jsonEscape(F.Report.Failures[J].Message).c_str());
    }
    Out += "]}";
  }
  Out += "]}";
  return Out;
}

std::string aqua::check::renderRepro(const FailedCase &F,
                                     const HarnessOptions &Opts) {
  std::string Out;
  Out += format("-- aqua-check repro (master seed %llu, case seed %llu, "
                "difficulty %d)\n",
                static_cast<unsigned long long>(Opts.Seed),
                static_cast<unsigned long long>(F.CaseSeed),
                Opts.Gen.Difficulty);
  Out += format("-- replay: aquacheck --replay FILE --yield %lld/%lld\n",
                static_cast<long long>(F.Minimal.YieldNum),
                static_cast<long long>(F.Minimal.YieldDen));
  for (const Failure &Fail : F.Report.Failures)
    Out += format("-- %s: %s\n", oracleName(Fail.O), Fail.Message.c_str());
  Out += F.Minimal.render();
  return Out;
}

HarnessResult aqua::check::runHarness(const HarnessOptions &Opts,
                                      void (*Log)(const std::string &)) {
  HarnessResult Result;
  SplitMix64 Master(Opts.Seed);

  for (int Case = 0; Case < Opts.Cases; ++Case) {
    std::uint64_t CaseSeed = Master.next();
    GenProgram P = generateProgram(CaseSeed, Opts.Gen);
    CaseReport R = checkProgram(P, Opts.Check);

    ++Result.Cases;
    Result.FrontendOk += R.FrontendOk;
    Result.Managed += R.Managed;
    Result.Feasible += R.Feasible;
    Result.SolvedByLP += R.Feasible && R.Method == core::SolveMethod::LP;
    Result.Simulated += R.Simulated;
    Result.ExactComposition += R.ExactComposition;
    Result.RanIlp += R.RanIlp;
    if (R.ok())
      continue;

    ++Result.Failures;
    FailedCase F;
    F.CaseSeed = CaseSeed;
    if (Opts.Shrink) {
      ShrinkResult S = shrink(P, R, Opts.Check, Opts.ShrinkOpts);
      F.Minimal = std::move(S.Minimal);
      F.Report = std::move(S.Report);
      F.ShrinkEvaluations = S.Evaluations;
    } else {
      F.Minimal = std::move(P);
      F.Report = std::move(R);
    }

    if (!Opts.ReproDir.empty()) {
      std::string Path =
          format("%s/aqua-check-repro-%llu.assay", Opts.ReproDir.c_str(),
                 static_cast<unsigned long long>(CaseSeed));
      std::ofstream File(Path);
      if (File) {
        File << renderRepro(F, Opts);
        F.ReproPath = Path;
      }
    }

    if (Log) {
      Log(format("case %d (seed %llu): %d oracle failure(s), shrunk to %d "
                 "statements",
                 Case, static_cast<unsigned long long>(CaseSeed),
                 static_cast<int>(F.Report.Failures.size()),
                 F.Minimal.numStatements()));
      for (const Failure &Fail : F.Report.Failures)
        Log(format("  %s: %s", oracleName(Fail.O), Fail.Message.c_str()));
    }
    Result.Failed.push_back(std::move(F));
  }
  return Result;
}
