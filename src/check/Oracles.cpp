//===- Oracles.cpp - Multi-oracle differential engine ---------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/check/Oracles.h"

#include "aqua/codegen/Codegen.h"
#include "aqua/core/Cascading.h"
#include "aqua/core/DagSolve.h"
#include "aqua/core/Formulation.h"
#include "aqua/core/Rounding.h"
#include "aqua/core/Verify.h"
#include "aqua/ir/Canonical.h"
#include "aqua/lang/Lower.h"
#include "aqua/lp/BranchAndBound.h"
#include "aqua/runtime/Simulator.h"
#include "aqua/service/ArtifactCodec.h"
#include "aqua/service/CompileService.h"
#include "aqua/service/RequestKey.h"
#include "aqua/store/Env.h"
#include "aqua/support/StringUtils.h"
#include "aqua/vm/Compiler.h"
#include "aqua/vm/VM.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace aqua;
using namespace aqua::check;
using namespace aqua::ir;

const char *aqua::check::oracleName(Oracle O) {
  switch (O) {
  case Oracle::Frontend:
    return "frontend";
  case Oracle::Graph:
    return "graph";
  case Oracle::Solvers:
    return "solvers";
  case Oracle::Assignment:
    return "assignment";
  case Oracle::Rounding:
    return "rounding";
  case Oracle::Simulation:
    return "simulation";
  case Oracle::Metamorphic:
    return "metamorphic";
  case Oracle::Cache:
    return "cache";
  case Oracle::Engines:
    return "engines";
  case Oracle::Presolve:
    return "presolve";
  case Oracle::Vm:
    return "vm";
  case Oracle::Store:
    return "store";
  case Oracle::Cuts:
    return "cuts";
  }
  return "?";
}

Expected<unsigned> aqua::check::parseOracleFilter(std::string_view List) {
  unsigned Mask = 0;
  for (const std::string &Part : split(List, ',')) {
    std::string_view Name = trim(Part);
    if (Name.empty())
      continue;
    bool Found = false;
    for (unsigned I = 0; I < NumOracles; ++I) {
      if (Name == oracleName(static_cast<Oracle>(I))) {
        Mask |= 1u << I;
        Found = true;
        break;
      }
    }
    if (!Found)
      return Expected<unsigned>::error(
          format("unknown oracle '%.*s'", static_cast<int>(Name.size()),
                 Name.data()));
  }
  return Mask;
}

std::string CaseReport::str() const {
  std::string Out;
  for (const Failure &F : Failures)
    Out += format("%s: %s\n", oracleName(F.O), F.Message.c_str());
  return Out;
}

namespace {

//===----------------------------------------------------------------------===//
// Exact fraction arithmetic with an overflow poison bit
//===----------------------------------------------------------------------===//

/// A fraction in 128-bit integers. Unlike aqua::Rational (whose overflow is
/// fatal by design), an overflow here only *poisons* the value: deep
/// composition recursions on adversarial graphs can exceed any fixed-width
/// type, and the right response in a test oracle is to skip the exact
/// comparison, not to abort the harness.
struct Frac {
  __int128 N = 0;
  __int128 D = 1;
  bool Bad = false;

  static __int128 absv(__int128 V) { return V < 0 ? -V : V; }

  static __int128 gcd(__int128 A, __int128 B) {
    A = absv(A);
    B = absv(B);
    while (B) {
      __int128 T = A % B;
      A = B;
      B = T;
    }
    return A;
  }

  /// Magnitude ceiling keeping every product of two reduced operands
  /// representable in __int128.
  static constexpr __int128 limit() { return __int128(1) << 62; }

  void reduce() {
    if (Bad)
      return;
    if (D < 0) {
      N = -N;
      D = -D;
    }
    __int128 G = gcd(N, D);
    if (G > 1) {
      N /= G;
      D /= G;
    }
    if (absv(N) >= limit() || D >= limit())
      Bad = true;
  }

  static Frac ratio(std::int64_t Num, std::int64_t Den) {
    Frac F;
    F.N = Num;
    F.D = Den;
    F.reduce();
    return F;
  }

  friend Frac operator+(Frac A, Frac B) {
    Frac R;
    if (A.Bad || B.Bad) {
      R.Bad = true;
      return R;
    }
    R.N = A.N * B.D + B.N * A.D;
    R.D = A.D * B.D;
    R.reduce();
    return R;
  }

  friend Frac operator*(Frac A, Frac B) {
    Frac R;
    if (A.Bad || B.Bad) {
      R.Bad = true;
      return R;
    }
    R.N = A.N * B.N;
    R.D = A.D * B.D;
    R.reduce();
    return R;
  }

  friend bool operator==(const Frac &A, const Frac &B) {
    return !A.Bad && !B.Bad && A.N == B.N && A.D == B.D;
  }

  double toDouble() const {
    return static_cast<double>(N) / static_cast<double>(D);
  }
};

/// Exact composition vector: input-fluid name -> fraction of the volume.
using Composition = std::map<std::string, Frac>;

/// Predicts the exact composition of every live node of \p G in one
/// topological pass. \p Weight returns the relative contribution of an
/// in-edge (the assay fraction, or the rounded integer edge volume);
/// contributions are normalized per node. Returns false when overflow
/// poisoned any fraction or a node had zero total weight.
template <typename WeightFn>
bool predictCompositions(const AssayGraph &G, WeightFn Weight,
                         std::map<NodeId, Composition> &Out) {
  for (NodeId N : G.topologicalOrder()) {
    const Node &Nd = G.node(N);
    Composition C;
    std::vector<EdgeId> In = G.inEdges(N);
    if (In.empty()) {
      C[Nd.Name] = Frac::ratio(1, 1);
    } else {
      Frac Total = Frac::ratio(0, 1);
      for (EdgeId E : In)
        Total = Total + Weight(E);
      if (Total.Bad || Total.N == 0)
        return false;
      // C = sum_e (Weight(e)/Total) * C[src(e)].
      Frac InvTotal;
      InvTotal.N = Total.D;
      InvTotal.D = Total.N;
      InvTotal.reduce();
      for (EdgeId E : In) {
        Frac Share = Weight(E) * InvTotal;
        for (const auto &[Name, F] : Out[G.edge(E).Src]) {
          Frac Add = F * Share;
          auto It = C.find(Name);
          if (It == C.end())
            C[Name] = Add;
          else
            It->second = It->second + Add;
        }
      }
    }
    for (const auto &[Name, F] : C)
      if (F.Bad)
        return false;
    Out[N] = std::move(C);
  }
  return true;
}

/// The sensed-result name of a Sense node ("sense_R3_1" -> "R3_1"), the
/// same stripping codegen applies for the AIS operand.
std::string senseResultName(const Node &Nd) {
  return startsWith(Nd.Name, "sense_") ? Nd.Name.substr(6) : Nd.Name;
}

/// Exact composition predictions at every live Sense node, keyed by the
/// sensed-result name. Returns false on overflow.
template <typename WeightFn>
bool predictSenseCompositions(const AssayGraph &G, WeightFn Weight,
                              std::map<std::string, Composition> &Out) {
  std::map<NodeId, Composition> ByNode;
  if (!predictCompositions(G, Weight, ByNode))
    return false;
  for (NodeId N : G.liveNodes())
    if (G.node(N).Kind == NodeKind::Sense)
      Out[senseResultName(G.node(N))] = ByNode[N];
  return true;
}

/// Compares two exact sense-composition predictions for equality.
bool sameSenseCompositions(const std::map<std::string, Composition> &A,
                           const std::map<std::string, Composition> &B,
                           std::string &Diff) {
  if (A.size() != B.size()) {
    Diff = format("sense count %zu vs %zu", A.size(), B.size());
    return false;
  }
  for (const auto &[Name, CompA] : A) {
    auto It = B.find(Name);
    if (It == B.end()) {
      Diff = format("sense '%s' missing", Name.c_str());
      return false;
    }
    const Composition &CompB = It->second;
    if (CompA.size() != CompB.size()) {
      Diff = format("sense '%s': %zu vs %zu constituents", Name.c_str(),
                    CompA.size(), CompB.size());
      return false;
    }
    for (const auto &[Fluid, FA] : CompA) {
      auto FB = CompB.find(Fluid);
      if (FB == CompB.end() || !(FA == FB->second)) {
        Diff = format("sense '%s': fraction of '%s' differs", Name.c_str(),
                      Fluid.c_str());
        return false;
      }
    }
  }
  return true;
}

/// Rebuilds \p G's live subgraph with node and edge insertion order
/// reversed -- a structure-preserving permutation the canonical fingerprint
/// must be blind to.
AssayGraph permuteGraph(const AssayGraph &G) {
  AssayGraph P;
  std::vector<NodeId> Live = G.liveNodes();
  std::vector<NodeId> Map(G.numNodeSlots(), InvalidNode);
  for (auto It = Live.rbegin(); It != Live.rend(); ++It) {
    const Node &Nd = G.node(*It);
    NodeId New = P.addNode(Nd.Kind, Nd.Name);
    Node &Copy = P.node(New);
    Copy.OutFraction = Nd.OutFraction;
    Copy.UnknownVolume = Nd.UnknownVolume;
    Copy.NoExcess = Nd.NoExcess;
    Copy.ExcessShare = Nd.ExcessShare;
    Copy.Params = Nd.Params;
    Map[*It] = New;
  }
  std::vector<EdgeId> LiveE = G.liveEdges();
  for (auto It = LiveE.rbegin(); It != LiveE.rend(); ++It) {
    const Edge &E = G.edge(*It);
    P.addEdge(Map[E.Src], Map[E.Dst], E.Fraction);
  }
  return P;
}

//===----------------------------------------------------------------------===//
// The per-case engine
//===----------------------------------------------------------------------===//

class Engine {
public:
  Engine(const CheckOptions &Opts) : Opts(Opts) {}

  bool on(Oracle O) const { return Opts.Oracles & oracleBit(O); }

  void fail(Oracle O, std::string Msg) {
    R.Failures.push_back(Failure{O, std::move(Msg)});
  }

  CaseReport run(std::string_view Source, const GenProgram *Skeleton) {
    auto Lowered = lang::compileAssay(Source);
    if (!Lowered.ok()) {
      if (on(Oracle::Frontend))
        fail(Oracle::Frontend, Lowered.message());
      return std::move(R);
    }
    R.FrontendOk = true;
    const AssayGraph &G = Lowered->Graph;
    R.Nodes = G.numNodes();
    R.Edges = G.numEdges();

    if (on(Oracle::Graph)) {
      if (Status S = G.verify(); !S.ok())
        fail(Oracle::Graph, format("lowered graph: %s", S.message().c_str()));
    }

    bool HasUnknown = false;
    for (NodeId N : G.liveNodes())
      if (G.node(N).UnknownVolume)
        HasUnknown = true;
    R.Managed = !HasUnknown;

    lp::Solution LPSol;
    bool LPOptimal = false;
    if (R.Managed && on(Oracle::Solvers))
      LPOptimal = checkSolvers(G, LPSol);

    if (R.Managed && on(Oracle::Engines))
      checkEngines(G);

    if (R.Managed && on(Oracle::Cuts))
      checkCuts(G);

    if (R.Managed && on(Oracle::Presolve))
      checkPresolve(G);

    core::ManagerResult VM;
    if (R.Managed) {
      VM = core::manageVolumes(G, Opts.Spec, Opts.Manage);
      R.Feasible = VM.Feasible;
      R.Method = VM.Method;
      if (on(Oracle::Solvers) && LPOptimal && !VM.Feasible)
        fail(Oracle::Solvers,
             "plain LP on the untransformed graph is Optimal but the "
             "manager hierarchy reports infeasible");
      if (VM.Feasible)
        checkManaged(VM);
    }

    if (on(Oracle::Simulation) || on(Oracle::Vm))
      checkSimulation(G, VM);

    if (on(Oracle::Metamorphic))
      checkMetamorphic(G);

    if (on(Oracle::Store))
      checkStore(Source);

    if (Skeleton)
      checkSkeleton(Source, G, VM, *Skeleton);

    return std::move(R);
  }

private:
  /// DAGSolve vs LP vs ILP dominance on the untransformed graph. Returns
  /// whether the plain LP was Optimal; fills \p LPSol.
  bool checkSolvers(const AssayGraph &G, lp::Solution &LPSol) {
    core::DagSolveResult DS = core::dagSolve(G, Opts.Spec);

    core::FormulationOptions FOpts;
    core::Formulation F = core::buildVolumeModel(G, Opts.Spec, FOpts);
    LPSol = lp::solve(F.Model, Opts.Manage.LPOptions);
    bool LPOptimal = LPSol.Status == lp::SolveStatus::Optimal;

    if (DS.Feasible) {
      // DAGSolve solves a *more constrained* RVol: its solution must be a
      // feasible point of the LP, so the LP cannot be infeasible and its
      // optimum must dominate DAGSolve's objective value.
      if (!LPOptimal) {
        fail(Oracle::Solvers,
             format("DAGSolve is feasible but the Figure 3 LP is %s",
                    lp::solveStatusName(LPSol.Status)));
        return LPOptimal;
      }
      std::vector<double> Point(F.Model.numVars(), 0.0);
      int Mapped = 0;
      for (NodeId N : G.liveNodes())
        if (F.NodeVar[N] >= 0) {
          Point[F.NodeVar[N]] = DS.Volumes.NodeVolumeNl[N];
          ++Mapped;
        }
      for (EdgeId E : G.liveEdges())
        if (F.EdgeVar[E] >= 0) {
          Point[F.EdgeVar[E]] = DS.Volumes.EdgeVolumeNl[E];
          ++Mapped;
        }
      double Tol = Opts.Tolerance *
                   std::max(1.0, DS.Volumes.maxNodeVolumeNl(G));
      if (Mapped == F.Model.numVars()) {
        double Viol = F.Model.maxViolation(Point);
        if (Viol > Tol)
          fail(Oracle::Solvers,
               format("DAGSolve point violates the LP model by %g nl", Viol));
        double DSObj = F.Model.objectiveValue(Point);
        if (DSObj > LPSol.Objective + Tol)
          fail(Oracle::Solvers,
               format("DAGSolve objective %.9g exceeds LP optimum %.9g",
                      DSObj, LPSol.Objective));
      }
      if (on(Oracle::Assignment)) {
        core::VerifyOptions VO;
        VO.RatioTolerance = 1e-6;
        auto Violations =
            core::verifyAssignment(G, DS.Volumes, Opts.Spec, VO);
        if (!Violations.empty())
          fail(Oracle::Assignment,
               format("DAGSolve assignment: %s",
                      core::violationsToString(Violations).c_str()));
      }
    }

    if (LPOptimal && on(Oracle::Assignment)) {
      core::VolumeAssignment LPV =
          core::extractAssignment(G, F, LPSol, FOpts);
      core::VerifyOptions VO;
      VO.ToleranceNl = 1e-5;
      VO.RatioTolerance = 1e-5;
      auto Violations = core::verifyAssignment(G, LPV, Opts.Spec, VO);
      if (!Violations.empty())
        fail(Oracle::Assignment,
             format("LP assignment: %s",
                    core::violationsToString(Violations).c_str()));
    }

    // The IVol ILP on small graphs: its optimum, scaled back to nl, can
    // never exceed the RVol LP optimum (integrality only restricts).
    if (G.numEdges() <= Opts.MaxIlpEdges) {
      core::FormulationOptions IOpts;
      IOpts.UnitNl = Opts.Spec.LeastCountNl;
      core::Formulation FI = core::buildVolumeModel(G, Opts.Spec, IOpts);
      lp::IntOptions IO;
      IO.MaxNodes = Opts.IlpMaxNodes;
      IO.TimeLimitSec = Opts.IlpTimeLimitSec;
      lp::IntSolution IS = lp::solveInteger(FI.Model, {}, IO);
      if (IS.Status == lp::SolveStatus::Optimal) {
        R.RanIlp = true;
        if (!LPOptimal)
          fail(Oracle::Solvers,
               format("IVol ILP is Optimal but the RVol LP is %s",
                      lp::solveStatusName(LPSol.Status)));
        else {
          double IlpNl = IS.Objective * Opts.Spec.LeastCountNl;
          double Tol =
              Opts.Tolerance * std::max(1.0, std::fabs(LPSol.Objective));
          if (IlpNl > LPSol.Objective + Tol)
            fail(Oracle::Solvers,
                 format("ILP objective %.9g nl exceeds LP optimum %.9g nl",
                        IlpNl, LPSol.Objective));
        }
      }
    }
    return LPOptimal;
  }

  /// Solver-vs-solver differential oracle: the same model handed to both
  /// LP engines (dense tableau vs bounded revised simplex) and, on small
  /// graphs, to both branch-and-bound node engines (warm bound-delta vs
  /// legacy dense per-node copies) must produce the same status and, when
  /// Optimal, the same optimum. This is the equivalence gate for the warm
  /// solver core: any divergence is a bug in one of the engines.
  void checkEngines(const AssayGraph &G) {
    core::FormulationOptions FOpts;
    core::Formulation F = core::buildVolumeModel(G, Opts.Spec, FOpts);

    lp::SolverOptions DenseOpts = Opts.Manage.LPOptions;
    DenseOpts.Engine = lp::LpEngine::Dense;
    lp::SolverOptions RevisedOpts = Opts.Manage.LPOptions;
    RevisedOpts.Engine = lp::LpEngine::Revised;
    lp::Solution DS = lp::solve(F.Model, DenseOpts);
    lp::Solution RS = lp::solve(F.Model, RevisedOpts);

    auto Decisive = [](lp::SolveStatus S) {
      return S == lp::SolveStatus::Optimal ||
             S == lp::SolveStatus::Infeasible ||
             S == lp::SolveStatus::Unbounded;
    };
    // Budget statuses (iteration/time limits) are not comparable verdicts;
    // only cross-check runs where both engines reached a conclusion.
    if (Decisive(DS.Status) && Decisive(RS.Status)) {
      if (DS.Status != RS.Status)
        fail(Oracle::Engines,
             format("LP engines disagree: dense tableau is %s, revised "
                    "simplex is %s",
                    lp::solveStatusName(DS.Status),
                    lp::solveStatusName(RS.Status)));
      else if (DS.Status == lp::SolveStatus::Optimal) {
        double Tol =
            Opts.Tolerance * std::max(1.0, std::fabs(DS.Objective));
        if (std::fabs(DS.Objective - RS.Objective) > Tol)
          fail(Oracle::Engines,
               format("LP optima diverge: dense tableau %.9g vs revised "
                      "simplex %.9g",
                      DS.Objective, RS.Objective));
      }
    }

    if (G.numEdges() > Opts.MaxIlpEdges)
      return;
    core::FormulationOptions IOpts;
    IOpts.UnitNl = Opts.Spec.LeastCountNl;
    core::Formulation FI = core::buildVolumeModel(G, Opts.Spec, IOpts);
    lp::IntOptions Warm;
    Warm.MaxNodes = Opts.IlpMaxNodes;
    Warm.TimeLimitSec = Opts.IlpTimeLimitSec;
    Warm.Engine = lp::IntEngine::Warm;
    lp::IntOptions Dense = Warm;
    Dense.Engine = lp::IntEngine::Dense;
    Dense.LP.Engine = lp::LpEngine::Dense;
    lp::IntSolution WS = lp::solveInteger(FI.Model, {}, Warm);
    lp::IntSolution DSInt = lp::solveInteger(FI.Model, {}, Dense);
    if (Decisive(WS.Status) && Decisive(DSInt.Status)) {
      if (WS.Status != DSInt.Status)
        fail(Oracle::Engines,
             format("B&B engines disagree: warm is %s, dense is %s",
                    lp::solveStatusName(WS.Status),
                    lp::solveStatusName(DSInt.Status)));
      else if (WS.Status == lp::SolveStatus::Optimal) {
        double Tol =
            Opts.Tolerance * std::max(1.0, std::fabs(DSInt.Objective));
        if (std::fabs(WS.Objective - DSInt.Objective) > Tol)
          fail(Oracle::Engines,
               format("ILP optima diverge: warm %.9g vs dense %.9g units",
                      WS.Objective, DSInt.Objective));
      }
    }
  }

  /// The ILP search accelerators must be pure speedups: cutting planes,
  /// pseudocost/reliability branching, and cut-and-branch restarts change
  /// the search order and the relaxation tightness, never the verdict or
  /// the optimum. Separately, a shape-matched warm basis repair of the
  /// RVol LP under a perturbed capacity must agree with the cold solve of
  /// the same perturbed model.
  void checkCuts(const AssayGraph &G) {
    auto Decisive = [](lp::SolveStatus S) {
      return S == lp::SolveStatus::Optimal ||
             S == lp::SolveStatus::Infeasible ||
             S == lp::SolveStatus::Unbounded;
    };

    if (G.numEdges() <= Opts.MaxIlpEdges) {
      core::FormulationOptions IOpts;
      IOpts.UnitNl = Opts.Spec.LeastCountNl;
      core::Formulation FI = core::buildVolumeModel(G, Opts.Spec, IOpts);
      lp::IntOptions Base;
      Base.MaxNodes = Opts.IlpMaxNodes;
      Base.TimeLimitSec = Opts.IlpTimeLimitSec;
      Base.Engine = lp::IntEngine::Warm;
      lp::IntOptions NoCuts = Base;
      NoCuts.CutRounds = 0;
      lp::IntOptions NoPseudo = Base;
      NoPseudo.Reliable = 0; // Plain most-fractional branching.
      lp::IntOptions NoRestart = Base;
      NoRestart.RestartNodes = 0;

      lp::IntSolution Ref = lp::solveInteger(FI.Model, {}, Base);
      auto Agree = [&](const lp::IntOptions &O, const char *What) {
        lp::IntSolution S = lp::solveInteger(FI.Model, {}, O);
        if (!Decisive(Ref.Status) || !Decisive(S.Status))
          return;
        if (S.Status != Ref.Status) {
          fail(Oracle::Cuts,
               format("%s changes the ILP verdict: %s vs %s", What,
                      lp::solveStatusName(Ref.Status),
                      lp::solveStatusName(S.Status)));
          return;
        }
        if (Ref.Status != lp::SolveStatus::Optimal)
          return;
        double Tol = Opts.Tolerance * std::max(1.0, std::fabs(Ref.Objective));
        if (std::fabs(S.Objective - Ref.Objective) > Tol)
          fail(Oracle::Cuts,
               format("%s changes the ILP optimum: %.9g vs %.9g units", What,
                      Ref.Objective, S.Objective));
      };
      Agree(NoCuts, "disabling root cuts");
      Agree(NoPseudo, "disabling pseudocost branching");
      Agree(NoRestart, "disabling cut-and-branch restarts");
    }

    // Warm-miss repair: a basis captured on the RVol LP, replayed against
    // the same structure under a perturbed capacity, must repair to the
    // same answer the cold solve finds. The capacity only moves rhs/bound
    // data, so the shape hash is expected to match; a mismatch (different
    // presolve decisions) legitimately degrades to a cold solve and the
    // cross-check still holds.
    core::Formulation F0 = core::buildVolumeModel(G, Opts.Spec);
    lp::SolverOptions Capture = Opts.Manage.LPOptions;
    Capture.Engine = lp::LpEngine::Revised;
    Capture.CaptureBasis = true;
    lp::SolveInfo DonorInfo;
    lp::Solution Donor = lp::solve(F0.Model, Capture, &DonorInfo);
    if (Donor.Status != lp::SolveStatus::Optimal || !DonorInfo.OptBasis)
      return;

    core::MachineSpec Perturbed = Opts.Spec;
    Perturbed.MaxCapacityNl *= 0.875;
    core::Formulation F1 = core::buildVolumeModel(G, Perturbed);
    lp::SolverOptions Cold = Opts.Manage.LPOptions;
    Cold.Engine = lp::LpEngine::Revised;
    lp::SolverOptions Warm = Cold;
    Warm.WarmStart = DonorInfo.OptBasis;
    Warm.WarmShapeHash = DonorInfo.ShapeHash;
    Warm.CaptureBasis = true;
    lp::Solution SCold = lp::solve(F1.Model, Cold);
    lp::SolveInfo WarmInfo;
    lp::Solution SWarm = lp::solve(F1.Model, Warm, &WarmInfo);
    if (!Decisive(SCold.Status) || !Decisive(SWarm.Status))
      return;
    if (SCold.Status != SWarm.Status) {
      fail(Oracle::Cuts,
           format("warm basis repair changes the LP verdict under a "
                  "perturbed capacity: cold %s vs warm %s",
                  lp::solveStatusName(SCold.Status),
                  lp::solveStatusName(SWarm.Status)));
      return;
    }
    if (SCold.Status == lp::SolveStatus::Optimal) {
      double Tol = Opts.Tolerance * std::max(1.0, std::fabs(SCold.Objective));
      if (std::fabs(SWarm.Objective - SCold.Objective) > Tol)
        fail(Oracle::Cuts,
             format("warm basis repair diverges from the cold solve: "
                    "%.9g vs %.9g",
                    SCold.Objective, SWarm.Objective));
    }
  }

  /// Presolve and pricing are pure reformulations of the same LP: solving
  /// with the reduction rules on vs off, and pricing with devex vs
  /// Bland's rule, must reach the same status and optimum, and the
  /// postsolved solution must satisfy the *original* model's constraints.
  void checkPresolve(const AssayGraph &G) {
    core::FormulationOptions FOpts;
    core::Formulation F = core::buildVolumeModel(G, Opts.Spec, FOpts);

    lp::SolverOptions On = Opts.Manage.LPOptions;
    On.Engine = lp::LpEngine::Revised;
    On.Presolve = true;
    lp::SolverOptions Off = On;
    Off.Presolve = false;
    lp::SolverOptions Bland = On;
    Bland.Simplex.Pricing = lp::LpPricing::Bland;

    lp::Solution SOn = lp::solve(F.Model, On);
    lp::Solution SOff = lp::solve(F.Model, Off);
    lp::Solution SBland = lp::solve(F.Model, Bland);

    auto Decisive = [](lp::SolveStatus S) {
      return S == lp::SolveStatus::Optimal ||
             S == lp::SolveStatus::Infeasible ||
             S == lp::SolveStatus::Unbounded;
    };
    auto Agree = [&](const lp::Solution &A, const lp::Solution &B,
                     const char *What) {
      if (!Decisive(A.Status) || !Decisive(B.Status))
        return;
      if (A.Status != B.Status) {
        fail(Oracle::Presolve,
             format("%s change the verdict: %s vs %s", What,
                    lp::solveStatusName(A.Status),
                    lp::solveStatusName(B.Status)));
        return;
      }
      if (A.Status != lp::SolveStatus::Optimal)
        return;
      double Tol = Opts.Tolerance * std::max(1.0, std::fabs(A.Objective));
      if (std::fabs(A.Objective - B.Objective) > Tol)
        fail(Oracle::Presolve,
             format("%s change the optimum: %.9g vs %.9g", What,
                    A.Objective, B.Objective));
    };
    Agree(SOn, SOff, "presolve reductions");
    Agree(SOn, SBland, "devex vs Bland pivot orders");

    if (SOn.Status == lp::SolveStatus::Optimal) {
      double Viol = F.Model.maxViolation(SOn.Values);
      if (Viol > Opts.Tolerance)
        fail(Oracle::Presolve,
             format("postsolved solution violates the original model by "
                    "%.3g",
                    Viol));
    }
  }

  /// Figure 3 verification of the manager's answer plus the exact integer
  /// invariants of conservation-aware rounding.
  void checkManaged(const core::ManagerResult &VM) {
    if (on(Oracle::Graph)) {
      if (Status S = VM.Graph.verify(); !S.ok())
        fail(Oracle::Graph,
             format("transformed graph: %s", S.message().c_str()));
    }

    if (on(Oracle::Assignment)) {
      core::VerifyOptions VO;
      VO.RatioTolerance = 1e-6;
      auto Violations =
          core::verifyAssignment(VM.Graph, VM.Volumes, Opts.Spec, VO);
      if (!Violations.empty())
        fail(Oracle::Assignment,
             format("manager assignment (%s): %s",
                    VM.Method == core::SolveMethod::DagSolve ? "DAGSolve"
                                                             : "LP",
                    core::violationsToString(Violations).c_str()));
    }

    if (!on(Oracle::Rounding))
      return;
    const AssayGraph &G = VM.Graph;
    const core::IntegerAssignment &IVol = VM.Rounded;
    std::int64_t Cap = Opts.Spec.capacityUnits();

    if (!IVol.Underflow) {
      for (EdgeId E : G.liveEdges())
        if (IVol.EdgeUnits[E] < 1)
          fail(Oracle::Rounding,
               format("edge %d has %lld units without an underflow flag", E,
                      static_cast<long long>(IVol.EdgeUnits[E])));
    }

    // Independent anchor against the real-valued solve: nearest-rounding
    // never adds more than half a unit, and conservation trimming only
    // subtracts. An edge above Real+0.5 or far below Real is a rounding
    // bug, regardless of how self-consistent the rest of the artifact is.
    for (EdgeId E : G.liveEdges()) {
      double Real = Opts.Spec.toUnits(VM.Volumes.EdgeVolumeNl[E]);
      double Diff = static_cast<double>(IVol.EdgeUnits[E]) - Real;
      if (Diff > 0.5 + 1e-6 || Diff < -2.5)
        fail(Oracle::Rounding,
             format("edge %d rounded to %lld units but the real-valued "
                    "solve gives %.6f units",
                    E, static_cast<long long>(IVol.EdgeUnits[E]), Real));
    }
    for (NodeId N : G.liveNodes()) {
      const Node &Nd = G.node(N);
      std::vector<EdgeId> In = G.inEdges(N);
      std::int64_t InSum = 0;
      for (EdgeId E : In)
        InSum += IVol.EdgeUnits[E];

      if (!IVol.Overflow && IVol.NodeUnits[N] > Cap)
        fail(Oracle::Rounding,
             format("node %d holds %lld units over the %lld-unit capacity "
                    "without an overflow flag",
                    N, static_cast<long long>(IVol.NodeUnits[N]),
                    static_cast<long long>(Cap)));

      // Exact recomputation of the node's output units from its (final)
      // in-edge units -- Rational arithmetic, no tolerance.
      if (!In.empty()) {
        std::int64_t Expect =
            (Nd.OutFraction == Rational(1) || Nd.UnknownVolume)
                ? InSum
                : (Nd.OutFraction * Rational(InSum)).roundNearest();
        if (IVol.NodeUnits[N] != Expect)
          fail(Oracle::Rounding,
               format("node %d (%s): %lld units, exact recomputation gives "
                      "%lld",
                      N, Nd.Name.c_str(),
                      static_cast<long long>(IVol.NodeUnits[N]),
                      static_cast<long long>(Expect)));
      }

      // Integer conservation: real (non-excess) uses never draw more than
      // the producer's integer volume.
      if (!IVol.Underflow) {
        std::int64_t Demand = 0;
        for (EdgeId E : G.outEdges(N))
          if (G.node(G.edge(E).Dst).Kind != NodeKind::Excess)
            Demand += IVol.EdgeUnits[E];
        if (Demand > IVol.NodeUnits[N])
          fail(Oracle::Rounding,
               format("node %d (%s): integer demand %lld exceeds the %lld "
                      "units produced",
                      N, Nd.Name.c_str(), static_cast<long long>(Demand),
                      static_cast<long long>(IVol.NodeUnits[N])));
      }
    }

    // The reported ratio error must match an independent recomputation.
    auto [MaxErr, MeanErr] = core::mixRatioErrorPct(G, IVol);
    if (std::fabs(MaxErr - IVol.MaxRatioErrorPct) > 1e-9 ||
        std::fabs(MeanErr - IVol.MeanRatioErrorPct) > 1e-9)
      fail(Oracle::Rounding, "reported mix-ratio error does not match "
                             "recomputation");
  }

  /// Compiles \p Prog to bytecode and checks the VM reproduces \p Sim bit
  /// for bit.
  void checkVmEquivalence(const codegen::AISProgram &Prog,
                          const runtime::SimOptions &SO,
                          const runtime::SimResult &Sim) {
    vm::CompileOptions CO;
    CO.Spec = SO.Spec;
    CO.Graph = SO.Graph;
    auto BC = vm::compile(Prog, CO);
    if (!BC.ok()) {
      fail(Oracle::Vm,
           format("bytecode compile failed: %s", BC.message().c_str()));
      return;
    }
    vm::RunOptions RO;
    RO.EnableRegeneration = SO.EnableRegeneration;
    RO.Seed = SO.Seed;
    RO.MinSeparationYield = SO.MinSeparationYield;
    RO.MaxSeparationYield = SO.MaxSeparationYield;
    RO.FixedSeparationYield = SO.FixedSeparationYield;
    RO.MoveSeconds = SO.MoveSeconds;
    RO.MaxRegenRetries = SO.MaxRegenRetries;
    runtime::SimResult Vm = vm::run(*BC, RO);

    auto mismatch = [&](const char *What, const std::string &Detail) {
      fail(Oracle::Vm, format("VM diverges from simulator on %s: %s", What,
                              Detail.c_str()));
    };
    if (Vm.Completed != Sim.Completed || Vm.Error != Sim.Error)
      return mismatch("outcome",
                      format("sim completed=%d error='%s', vm completed=%d "
                             "error='%s'",
                             Sim.Completed, Sim.Error.c_str(), Vm.Completed,
                             Vm.Error.c_str()));
    if (Vm.Regenerations != Sim.Regenerations ||
        Vm.UnderflowEvents != Sim.UnderflowEvents ||
        Vm.OverflowEvents != Sim.OverflowEvents ||
        Vm.SubLeastCountMoves != Sim.SubLeastCountMoves ||
        Vm.InstructionsExecuted != Sim.InstructionsExecuted)
      return mismatch("counters",
                      format("sim regen/under/over/sublc/instr "
                             "%d/%d/%d/%d/%d, vm %d/%d/%d/%d/%d",
                             Sim.Regenerations, Sim.UnderflowEvents,
                             Sim.OverflowEvents, Sim.SubLeastCountMoves,
                             Sim.InstructionsExecuted, Vm.Regenerations,
                             Vm.UnderflowEvents, Vm.OverflowEvents,
                             Vm.SubLeastCountMoves, Vm.InstructionsExecuted));
    if (Vm.FluidSeconds != Sim.FluidSeconds ||
        Vm.DeliveredNl != Sim.DeliveredNl || Vm.WasteNl != Sim.WasteNl)
      return mismatch("totals",
                      format("sim sec/delivered/waste %.17g/%.17g/%.17g, vm "
                             "%.17g/%.17g/%.17g",
                             Sim.FluidSeconds, Sim.DeliveredNl, Sim.WasteNl,
                             Vm.FluidSeconds, Vm.DeliveredNl, Vm.WasteNl));
    if (Vm.InputDrawnNl != Sim.InputDrawnNl)
      return mismatch("input accounting",
                      format("%zu vs %zu ports or differing draws",
                             Sim.InputDrawnNl.size(), Vm.InputDrawnNl.size()));
    if (Vm.Senses.size() != Sim.Senses.size())
      return mismatch("sense count", format("sim %zu, vm %zu",
                                            Sim.Senses.size(),
                                            Vm.Senses.size()));
    for (std::size_t I = 0; I < Sim.Senses.size(); ++I) {
      const runtime::SenseReading &A = Sim.Senses[I];
      const runtime::SenseReading &B = Vm.Senses[I];
      if (A.Name != B.Name || A.VolumeNl != B.VolumeNl ||
          A.Composition != B.Composition)
        return mismatch("sense reading",
                        format("'%s' (index %zu) differs in name, volume, "
                               "or composition",
                               A.Name.c_str(), I));
    }
  }

  /// Runs the generated AIS on the PLoC simulator and cross-checks sensed
  /// compositions against the exact prediction.
  void checkSimulation(const AssayGraph &Lowered,
                       const core::ManagerResult &VM) {
    const AssayGraph *G = &Lowered;
    core::VolumeAssignment Metered;
    codegen::CodegenOptions CG;
    bool ManagedRun = R.Managed && R.Feasible;
    if (ManagedRun) {
      G = &VM.Graph;
      Metered = core::integerToNl(VM.Graph, VM.Rounded, Opts.Spec);
      CG.Mode = codegen::VolumeMode::Managed;
      CG.Volumes = &Metered;
    }

    auto Prog = codegen::generateAIS(*G, Opts.Layout, CG);
    if (!Prog.ok())
      return; // Resource exhaustion is a legitimate compile outcome.

    runtime::SimOptions SO;
    SO.Spec = Opts.Spec;
    SO.Layout = Opts.Layout;
    SO.Graph = G;
    SO.FixedSeparationYield = Opts.FixedYield;
    runtime::SimResult S = runtime::simulate(*Prog, SO);
    R.Simulated = true;

    // Bytecode-VM oracle: bit-for-bit SimResult equality against the
    // tree-walking simulator under the same options, completed or not --
    // error strings, counters, volumes and sense readings all exact.
    if (on(Oracle::Vm))
      checkVmEquivalence(*Prog, SO, S);
    if (!on(Oracle::Simulation))
      return;

    if (!S.Completed) {
      // A relative run moves unmetered part-ratios, so a consumer can
      // legitimately demand more than a yield-lossy producer is able to
      // regenerate; exhaustion is a valid outcome there. Managed runs are
      // metered by the solved volumes and must always complete.
      if (!ManagedRun &&
          S.Error.find("regeneration exhausted") != std::string::npos)
        return;
      fail(Oracle::Simulation,
           format("%s run did not complete: %s",
                  ManagedRun ? "managed" : "relative", S.Error.c_str()));
      return;
    }

    // Every sense in the DAG must have produced exactly one reading.
    std::map<std::string, const runtime::SenseReading *> Readings;
    for (const runtime::SenseReading &Rd : S.Senses) {
      if (Readings.count(Rd.Name)) {
        fail(Oracle::Simulation,
             format("duplicate reading for sense '%s'", Rd.Name.c_str()));
        return;
      }
      Readings[Rd.Name] = &Rd;
    }
    for (NodeId N : G->liveNodes()) {
      if (G->node(N).Kind != NodeKind::Sense)
        continue;
      if (!Readings.count(senseResultName(G->node(N)))) {
        fail(Oracle::Simulation,
             format("sense '%s' produced no reading",
                    senseResultName(G->node(N)).c_str()));
        return;
      }
    }

    // Exact composition cross-check, valid only for clean runs: any
    // clipped, skipped, or partially-short transfer legitimately perturbs
    // downstream ratios.
    if (S.UnderflowEvents || S.OverflowEvents || S.SubLeastCountMoves)
      return;
    std::map<std::string, Composition> Predicted;
    bool Exact =
        ManagedRun
            ? predictSenseCompositions(
                  *G,
                  [&](EdgeId E) {
                    return Frac::ratio(VM.Rounded.EdgeUnits[E], 1);
                  },
                  Predicted)
            : predictSenseCompositions(
                  *G,
                  [&](EdgeId E) {
                    const Rational &F = G->edge(E).Fraction;
                    return Frac::ratio(F.numerator(), F.denominator());
                  },
                  Predicted);
    if (!Exact)
      return; // Fraction overflow: no exact prediction available.
    R.ExactComposition = true;

    // The prediction is exact; the tolerance below only covers the
    // simulator's double-precision accumulation, not algorithmic slack.
    const double Tol = 1e-9;
    for (const auto &[Name, Comp] : Predicted) {
      const runtime::SenseReading *Rd = Readings[Name];
      for (const auto &[Fluid, F] : Comp) {
        auto It = Rd->Composition.find(Fluid);
        double Got = It == Rd->Composition.end() ? 0.0 : It->second;
        if (std::fabs(Got - F.toDouble()) > Tol) {
          fail(Oracle::Simulation,
               format("sense '%s': fraction of '%s' is %.12f, exact "
                      "prediction %.12f",
                      Name.c_str(), Fluid.c_str(), Got, F.toDouble()));
          return;
        }
      }
      for (const auto &[Fluid, Got] : Rd->Composition)
        if (!Comp.count(Fluid) && Got > Tol) {
          fail(Oracle::Simulation,
               format("sense '%s': unexpected constituent '%s' (%.12f)",
                      Name.c_str(), Fluid.c_str(), Got));
          return;
        }
    }
  }

  /// Structure-level metamorphic checks on the lowered graph.
  void checkMetamorphic(const AssayGraph &G) {
    CanonicalForm Canon = ir::canonicalize(G);

    // Insertion-order permutation: fingerprint and canonical listing must
    // be bit-identical.
    AssayGraph P = permuteGraph(G);
    CanonicalForm PCanon = ir::canonicalize(P);
    if (PCanon.Hash != Canon.Hash)
      fail(Oracle::Metamorphic,
           "insertion-order permutation changed the canonical fingerprint");
    else if (ir::buildCanonicalGraph(P, PCanon).str() !=
             ir::buildCanonicalGraph(G, Canon).str())
      fail(Oracle::Metamorphic,
           "insertion-order permutation changed the canonical listing");

    auto ExactFraction = [](const AssayGraph &H) {
      return [&H](EdgeId E) {
        const Rational &F = H.edge(E).Fraction;
        return Frac::ratio(F.numerator(), F.denominator());
      };
    };
    std::map<std::string, Composition> Base;
    if (!predictSenseCompositions(G, ExactFraction(G), Base))
      return; // Overflow: composition-invariance checks unavailable.

    // Binarize every k-ary mix: the rewrite is volumetrically exact, so
    // sensed compositions may not move at all.
    {
      AssayGraph B = G;
      bool Applied = false;
      for (NodeId N : G.liveNodes()) {
        if (B.node(N).Kind != NodeKind::Mix || B.inEdges(N).size() <= 2)
          continue;
        auto Res = core::binarizeMix(B, N);
        if (!Res.ok()) {
          fail(Oracle::Metamorphic,
               format("binarizeMix failed on node %d: %s", N,
                      Res.message().c_str()));
          return;
        }
        Applied = true;
      }
      if (Applied)
        checkRewrite(B, Base, "binarize");
    }

    // Cascade every extreme two-input mix.
    {
      AssayGraph C = G;
      bool Applied = false;
      for (NodeId N : G.liveNodes()) {
        if (C.node(N).Kind != NodeKind::Mix || C.inEdges(N).size() != 2)
          continue;
        std::vector<EdgeId> In = C.inEdges(N);
        Rational F0 = C.edge(In[0]).Fraction;
        Rational F1 = C.edge(In[1]).Fraction;
        Rational Small = F0 < F1 ? F0 : F1;
        // Reduced parts: Small = s/(s+l) with gcd(s, s+l) = 1.
        std::int64_t S = Small.numerator();
        std::int64_t L = Small.denominator() - S;
        int Stages = core::chooseCascadeStages(
            S, L, Opts.Manage.CascadeSkewThreshold,
            Opts.Manage.MaxCascadeStages);
        if (Stages < 2)
          continue;
        auto Res = core::cascadeMix(C, N, Stages);
        if (!Res.ok()) {
          fail(Oracle::Metamorphic,
               format("cascadeMix(%d stages) failed on node %d: %s", Stages,
                      N, Res.message().c_str()));
          return;
        }
        Applied = true;
      }
      if (Applied)
        checkRewrite(C, Base, "cascade");
    }
  }

  /// Shared tail of the binarize/cascade checks: the rewritten graph still
  /// verifies and predicts identical sense compositions.
  void checkRewrite(const AssayGraph &H,
                    const std::map<std::string, Composition> &Base,
                    const char *What) {
    if (Status S = H.verify(); !S.ok()) {
      fail(Oracle::Metamorphic,
           format("%s rewrite broke graph invariants: %s", What,
                  S.message().c_str()));
      return;
    }
    std::map<std::string, Composition> After;
    if (!predictSenseCompositions(
            H,
            [&H](EdgeId E) {
              const Rational &F = H.edge(E).Fraction;
              return Frac::ratio(F.numerator(), F.denominator());
            },
            After))
      return;
    std::string Diff;
    if (!sameSenseCompositions(Base, After, Diff))
      fail(Oracle::Metamorphic,
           format("%s rewrite changed exact compositions: %s", What,
                  Diff.c_str()));
  }

  /// Persistence round trip: solve once through a service writing to an
  /// in-memory store, then reload through a *second* service on the same
  /// store (fresh L1, so the artifact must come back through the codec and
  /// the store's checksummed records) and demand bit-identity.
  void checkStore(std::string_view Source) {
    store::MemEnv Env;
    service::ServiceOptions SO;
    SO.Threads = 1;
    SO.StoreDir = "check-store";
    SO.StoreEnv = &Env;

    service::CompileRequest Req;
    Req.Name = "store-oracle";
    Req.Source = std::string(Source);
    Req.Spec = Opts.Spec;
    Req.Manage = Opts.Manage;
    Req.Layout = Opts.Layout;

    service::CompileResponse R1;
    {
      service::CompileService Svc(SO);
      if (!Svc.store()) {
        fail(Oracle::Store, "service failed to open the in-memory store");
        return;
      }
      R1 = Svc.compileNow(Req);
    }
    if (!R1.Artifact) {
      fail(Oracle::Store, "service returned no artifact for a program the "
                          "front end accepts");
      return;
    }

    // The codec alone must be a lossless involution on re-encode.
    std::string Encoded = service::encodeArtifact(*R1.Artifact);
    auto Decoded = service::decodeArtifact(Encoded);
    if (!Decoded.ok()) {
      fail(Oracle::Store, format("artifact fails to decode its own "
                                 "encoding: %s",
                                 Decoded.message().c_str()));
      return;
    }
    if (service::encodeArtifact(*Decoded) != Encoded) {
      fail(Oracle::Store,
           "encode(decode(encode(artifact))) != encode(artifact)");
      return;
    }

    // A fresh service on the same store must serve the key from its L2.
    service::CompileService Svc2(SO);
    service::CompileResponse R2 = Svc2.compileNow(Req);
    if (!R2.Artifact) {
      fail(Oracle::Store, "restarted service returned no artifact");
      return;
    }
    if (!R2.CacheHit || !R2.CacheHitL2) {
      fail(Oracle::Store,
           format("restarted service did not serve from the store "
                  "(hit=%d, l2=%d)",
                  R2.CacheHit ? 1 : 0, R2.CacheHitL2 ? 1 : 0));
      return;
    }
    if (R2.Key != R1.Key)
      fail(Oracle::Store, "restarted service produced a different "
                          "request fingerprint");

    // Bit-identity of the reloaded artifact, checked three ways: the full
    // encoding, the rendered AIS program, and the exact assignments.
    if (service::encodeArtifact(*R2.Artifact) != Encoded)
      fail(Oracle::Store, "reloaded artifact's encoding differs from the "
                          "in-memory solve's");
    if (R2.Artifact->Program.str() != R1.Artifact->Program.str())
      fail(Oracle::Store, "reloaded artifact renders different AIS text");
    if (R2.Artifact->VM.Rounded.NodeUnits != R1.Artifact->VM.Rounded.NodeUnits ||
        R2.Artifact->VM.Rounded.EdgeUnits != R1.Artifact->VM.Rounded.EdgeUnits)
      fail(Oracle::Store, "reloaded artifact's integer volumes differ");
    if (R2.Artifact->VM.Volumes.NodeVolumeNl !=
            R1.Artifact->VM.Volumes.NodeVolumeNl ||
        R2.Artifact->VM.Volumes.EdgeVolumeNl !=
            R1.Artifact->VM.Volumes.EdgeVolumeNl ||
        R2.Artifact->Metered.NodeVolumeNl !=
            R1.Artifact->Metered.NodeVolumeNl ||
        R2.Artifact->Metered.EdgeVolumeNl !=
            R1.Artifact->Metered.EdgeVolumeNl)
      fail(Oracle::Store, "reloaded artifact's volume assignments differ");
  }

  /// Checks that need the generator's statement skeleton: uniform ratio
  /// scaling and service-cache coherence.
  void checkSkeleton(std::string_view Source, const AssayGraph &G,
                     const core::ManagerResult &VM, const GenProgram &P) {
    // Uniformly scaling every plain mix's ratios preserves all fractions,
    // so the lowered graph -- and its fingerprint -- must be identical.
    GenProgram Scaled = P;
    bool AnyScaled = false;
    for (GenStmt &S : Scaled.Stmts) {
      if (S.K != GenStmt::Kind::Mix)
        continue;
      for (std::int64_t &Ratio : S.Ratios)
        Ratio *= 3;
      AnyScaled = true;
    }
    std::string ScaledSource;
    if (AnyScaled && on(Oracle::Metamorphic)) {
      ScaledSource = Scaled.render();
      auto Relowered = lang::compileAssay(ScaledSource);
      if (!Relowered.ok()) {
        fail(Oracle::Metamorphic,
             format("ratio-scaled program fails to compile: %s",
                    Relowered.message().c_str()));
      } else if (ir::fingerprintGraph(Relowered->Graph) !=
                 ir::fingerprintGraph(G)) {
        fail(Oracle::Metamorphic,
             "uniform ratio scaling changed the canonical fingerprint");
      }
    }

    if (!on(Oracle::Cache))
      return;
    service::ServiceOptions SO;
    SO.Threads = 1;
    service::CompileService Svc(SO);
    service::CompileRequest Req;
    Req.Name = P.Name;
    Req.Source = std::string(Source);
    Req.Spec = Opts.Spec;
    Req.Manage = Opts.Manage;
    Req.Layout = Opts.Layout;

    service::CompileResponse R1 = Svc.compileNow(Req);
    service::CompileResponse R2 = Svc.compileNow(Req);
    if (!R1.Artifact || !R2.Artifact) {
      fail(Oracle::Cache, "service returned no artifact for a program the "
                          "front end accepts");
      return;
    }
    if (!R2.CacheHit)
      fail(Oracle::Cache, "identical resubmission missed the solve cache");
    else if (R2.Artifact.get() != R1.Artifact.get())
      fail(Oracle::Cache,
           "cache hit returned a different artifact object than the "
           "original solve");
    if (R2.Key != R1.Key)
      fail(Oracle::Cache, "identical resubmission produced a different "
                          "request fingerprint");

    // The service's solve must agree with the direct pipeline bit for bit.
    if (R.Managed && R1.Artifact->Managed) {
      if (R1.Artifact->VM.Feasible != VM.Feasible)
        fail(Oracle::Cache, "service and direct pipeline disagree on "
                            "feasibility");
      else if (VM.Feasible &&
               (R1.Artifact->VM.Rounded.NodeUnits != VM.Rounded.NodeUnits ||
                R1.Artifact->VM.Rounded.EdgeUnits != VM.Rounded.EdgeUnits))
        fail(Oracle::Cache, "service artifact's integer volumes differ "
                            "from the direct pipeline's");
    }

    if (AnyScaled) {
      service::CompileRequest ScaledReq = Req;
      ScaledReq.Source = ScaledSource;
      service::CompileResponse R3 = Svc.compileNow(ScaledReq);
      if (R3.Key != R1.Key)
        fail(Oracle::Cache, "ratio-scaled program keyed differently despite "
                            "an identical canonical graph");
      else if (!R3.CacheHit || R3.Artifact.get() != R1.Artifact.get())
        fail(Oracle::Cache, "ratio-scaled resubmission did not reuse the "
                            "cached artifact");
    }
  }

  const CheckOptions &Opts;
  CaseReport R;
};

} // namespace

CaseReport aqua::check::checkSource(std::string_view Source,
                                    const CheckOptions &Opts) {
  Engine E(Opts);
  return E.run(Source, nullptr);
}

CaseReport aqua::check::checkProgram(const GenProgram &P,
                                     const CheckOptions &Opts) {
  CheckOptions Local = Opts;
  Local.FixedYield = P.fixedYield();
  Engine E(Local);
  return E.run(P.render(), &P);
}
