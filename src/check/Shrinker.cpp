//===- Shrinker.cpp - Greedy failure minimization -------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/check/Shrinker.h"

#include <algorithm>

using namespace aqua;
using namespace aqua::check;

namespace {

/// The shrink loop state: the current smallest failing program and the
/// acceptance predicate.
class Shrinker {
public:
  Shrinker(const GenProgram &P, Oracle Target, const CheckOptions &Check,
           const ShrinkOptions &Opts)
      : Current(P), Target(Target), Check(Check), Opts(Opts) {}

  ShrinkResult run() {
    // Pass order: coarse edits first (whole statements), then finer ones.
    // Loop to a fixpoint: operand removal can unlock statement removal.
    bool Changed = true;
    while (Changed && Evaluations < Opts.MaxEvaluations) {
      Changed = false;
      Changed |= deleteStatements();
      Changed |= dropMixOperands();
      Changed |= simplifyRatios();
      Changed |= simplifyLoops();
      Shrunk |= Changed;
    }

    ShrinkResult R;
    R.Minimal = Current;
    R.Report = checkProgram(Current, Check);
    R.Evaluations = Evaluations + 1;
    R.Shrunk = Shrunk;
    return R;
  }

private:
  /// True when \p Candidate still exhibits a failure of the target oracle
  /// family; on acceptance the candidate becomes the new current program.
  bool accept(GenProgram Candidate) {
    if (Evaluations >= Opts.MaxEvaluations)
      return false;
    ++Evaluations;
    CaseReport R = checkProgram(Candidate, Check);
    bool SameFamily = std::any_of(
        R.Failures.begin(), R.Failures.end(),
        [&](const Failure &F) { return F.O == Target; });
    if (!SameFamily)
      return false;
    Current = std::move(Candidate);
    return true;
  }

  /// Deletes statements one at a time, last first (later statements are
  /// less likely to be load-bearing for earlier ones' `it` chains).
  bool deleteStatements() {
    bool Changed = false;
    for (int I = static_cast<int>(Current.Stmts.size()) - 1; I >= 0; --I) {
      if (Current.Stmts.size() <= 1)
        break;
      GenProgram Candidate = Current;
      Candidate.Stmts.erase(Candidate.Stmts.begin() + I);
      Changed |= accept(std::move(Candidate));
    }
    return Changed;
  }

  bool dropMixOperands() {
    bool Changed = false;
    for (size_t I = 0; I < Current.Stmts.size(); ++I) {
      if (Current.Stmts[I].K != GenStmt::Kind::Mix)
        continue;
      for (int Op = static_cast<int>(Current.Stmts[I].Operands.size()) - 1;
           Op >= 0 && Current.Stmts[I].Operands.size() > 2; --Op) {
        GenProgram Candidate = Current;
        GenStmt &S = Candidate.Stmts[I];
        S.Operands.erase(S.Operands.begin() + Op);
        S.Ratios.erase(S.Ratios.begin() + Op);
        Changed |= accept(std::move(Candidate));
      }
    }
    return Changed;
  }

  bool simplifyRatios() {
    bool Changed = false;
    for (size_t I = 0; I < Current.Stmts.size(); ++I) {
      if (Current.Stmts[I].K != GenStmt::Kind::Mix)
        continue;
      for (size_t Part = 0; Part < Current.Stmts[I].Ratios.size(); ++Part) {
        if (Current.Stmts[I].Ratios[Part] == 1)
          continue;
        GenProgram Candidate = Current;
        Candidate.Stmts[I].Ratios[Part] = 1;
        Changed |= accept(std::move(Candidate));
      }
    }
    return Changed;
  }

  bool simplifyLoops() {
    bool Changed = false;
    for (size_t I = 0; I < Current.Stmts.size(); ++I) {
      GenStmt &S = Current.Stmts[I];
      if (S.K == GenStmt::Kind::DilutionLoop) {
        if (S.Trips > 2) {
          GenProgram Candidate = Current;
          Candidate.Stmts[I].Trips = 2;
          Changed |= accept(std::move(Candidate));
        }
        if (Current.Stmts[I].Factor > 2) {
          GenProgram Candidate = Current;
          Candidate.Stmts[I].Factor = 2;
          Changed |= accept(std::move(Candidate));
        }
      }
      // A yield hint is simpler than a statically-unknown volume.
      if ((S.K == GenStmt::Kind::Separate ||
           S.K == GenStmt::Kind::Concentrate) &&
          !S.HasYield) {
        GenProgram Candidate = Current;
        Candidate.Stmts[I].HasYield = true;
        Changed |= accept(std::move(Candidate));
      }
    }
    return Changed;
  }

  GenProgram Current;
  Oracle Target;
  const CheckOptions &Check;
  const ShrinkOptions &Opts;
  int Evaluations = 0;
  bool Shrunk = false;
};

} // namespace

ShrinkResult aqua::check::shrink(const GenProgram &P,
                                 const CaseReport &Original,
                                 const CheckOptions &Check,
                                 const ShrinkOptions &Opts) {
  if (Original.Failures.empty()) {
    ShrinkResult R;
    R.Minimal = P;
    R.Report = Original;
    return R;
  }
  Shrinker S(P, Original.Failures.front().O, Check, Opts);
  return S.run();
}
