//===- Rational.cpp - Exact rational arithmetic ---------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/support/Rational.h"

#include "aqua/support/Fatal.h"

#include <limits>

using namespace aqua;

static __int128 gcd128(__int128 A, __int128 B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    __int128 T = A % B;
    A = B;
    B = T;
  }
  return A;
}

Rational Rational::makeReduced(__int128 N, __int128 D) {
  if (D == 0)
    reportFatalError("Rational: division by zero");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  if (N == 0)
    return Rational();
  __int128 G = gcd128(N, D);
  N /= G;
  D /= G;
  constexpr __int128 Max = std::numeric_limits<std::int64_t>::max();
  constexpr __int128 Min = std::numeric_limits<std::int64_t>::min();
  if (N > Max || N < Min || D > Max)
    reportFatalError("Rational: 64-bit overflow after reduction");
  Rational R;
  R.Num = static_cast<std::int64_t>(N);
  R.Den = static_cast<std::int64_t>(D);
  return R;
}

Rational::Rational(std::int64_t N, std::int64_t D) {
  *this = makeReduced(N, D);
}

Rational Rational::reciprocal() const {
  assert(Num != 0 && "reciprocal of zero");
  return makeReduced(Den, Num);
}

std::int64_t Rational::floor() const {
  std::int64_t Q = Num / Den;
  if (Num % Den != 0 && Num < 0)
    --Q;
  return Q;
}

std::int64_t Rational::ceil() const {
  std::int64_t Q = Num / Den;
  if (Num % Den != 0 && Num > 0)
    ++Q;
  return Q;
}

std::int64_t Rational::roundNearest() const {
  // Scale by two and round toward +-infinity at exact halves.
  __int128 Twice = static_cast<__int128>(Num) * 2;
  __int128 Q = Twice / Den;
  std::int64_t Result = static_cast<std::int64_t>(
      Q >= 0 ? (Q + 1) / 2 : (Q - 1) / 2);
  return Result;
}

std::string Rational::str() const {
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}

namespace aqua {

Rational operator+(const Rational &A, const Rational &B) {
  __int128 N = static_cast<__int128>(A.Num) * B.Den +
               static_cast<__int128>(B.Num) * A.Den;
  __int128 D = static_cast<__int128>(A.Den) * B.Den;
  return Rational::makeReduced(N, D);
}

Rational operator-(const Rational &A, const Rational &B) {
  __int128 N = static_cast<__int128>(A.Num) * B.Den -
               static_cast<__int128>(B.Num) * A.Den;
  __int128 D = static_cast<__int128>(A.Den) * B.Den;
  return Rational::makeReduced(N, D);
}

Rational operator*(const Rational &A, const Rational &B) {
  __int128 N = static_cast<__int128>(A.Num) * B.Num;
  __int128 D = static_cast<__int128>(A.Den) * B.Den;
  return Rational::makeReduced(N, D);
}

Rational operator/(const Rational &A, const Rational &B) {
  if (B.Num == 0)
    reportFatalError("Rational: division by zero");
  __int128 N = static_cast<__int128>(A.Num) * B.Den;
  __int128 D = static_cast<__int128>(A.Den) * B.Num;
  return Rational::makeReduced(N, D);
}

std::strong_ordering operator<=>(const Rational &A, const Rational &B) {
  __int128 L = static_cast<__int128>(A.Num) * B.Den;
  __int128 R = static_cast<__int128>(B.Num) * A.Den;
  if (L < R)
    return std::strong_ordering::less;
  if (L > R)
    return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

} // namespace aqua
