//===- Fatal.cpp - Fatal errors and unreachable ---------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/support/Fatal.h"

#include <cstdio>
#include <cstdlib>

void aqua::reportFatalError(std::string_view Msg) {
  std::fprintf(stderr, "aquavol fatal error: %.*s\n",
               static_cast<int>(Msg.size()), Msg.data());
  std::abort();
}
