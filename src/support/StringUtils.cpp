//===- StringUtils.cpp - String helpers -----------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace aqua;

std::string aqua::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result(Size > 0 ? static_cast<size_t>(Size) : 0, '\0');
  if (Size > 0)
    std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string aqua::formatTrimmed(double Value, int Digits) {
  std::string S = format("%.*f", Digits, Value);
  if (S.find('.') == std::string::npos)
    return S;
  while (!S.empty() && S.back() == '0')
    S.pop_back();
  if (!S.empty() && S.back() == '.')
    S.pop_back();
  return S;
}

std::string aqua::join(const std::vector<std::string> &Parts,
                       std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::vector<std::string> aqua::split(std::string_view Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Parts.emplace_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

static bool isSpaceChar(char C) {
  return C == ' ' || C == '\t' || C == '\n' || C == '\r' || C == '\f' ||
         C == '\v';
}

std::string_view aqua::trim(std::string_view Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && isSpaceChar(Text[Begin]))
    ++Begin;
  while (End > Begin && isSpaceChar(Text[End - 1]))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool aqua::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}
