//===- Json.cpp - Minimal JSON document parser ----------------------------------===//
//
// Part of AquaVol. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aqua/support/Json.h"

#include "aqua/support/StringUtils.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

using namespace aqua;
using namespace aqua::json;

bool Value::boolean() const {
  assert(K == Kind::Bool && "boolean() on non-bool");
  return B;
}

double Value::number() const {
  assert(K == Kind::Number && "number() on non-number");
  return Num;
}

const std::string &Value::str() const {
  assert(K == Kind::String && "str() on non-string");
  return Str;
}

const std::vector<Value> &Value::array() const {
  assert(K == Kind::Array && "array() on non-array");
  return Arr;
}

const std::vector<std::pair<std::string, Value>> &Value::members() const {
  assert(K == Kind::Object && "members() on non-object");
  return Obj;
}

const Value *Value::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  const Value *Found = nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      Found = &V;
  return Found;
}

double Value::numberOr(const std::string &Key, double Fallback) const {
  const Value *V = find(Key);
  return V && V->K == Kind::Number ? V->Num : Fallback;
}

std::string Value::strOr(const std::string &Key,
                         const std::string &Fallback) const {
  const Value *V = find(Key);
  return V && V->K == Kind::String ? V->Str : Fallback;
}

std::uint64_t Value::u64() const {
  double V = number();
  if (!(V > 0))
    return 0;
  if (V >= 18446744073709551615.0)
    return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(V);
}

namespace aqua::json {

/// Recursive-descent parser over the document text. Depth-limited so a
/// hostile deeply nested document cannot blow the stack.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Expected<Value> run() {
    skipWs();
    Value Root;
    if (Status S = parseValue(Root, 0); !S.ok())
      return S;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return Root;
  }

private:
  static constexpr int MaxDepth = 200;

  std::string_view Text;
  std::size_t Pos = 0;

  Status fail(const std::string &Why) const {
    return Status::error(format("json: %s at offset %zu", Why.c_str(), Pos));
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view W) {
    if (Text.substr(Pos, W.size()) != W)
      return false;
    Pos += W.size();
    return true;
  }

  Status parseValue(Value &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of document");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    case 't':
      if (!consumeWord("true"))
        return fail("bad literal");
      Out.K = Value::Kind::Bool;
      Out.B = true;
      return Status::success();
    case 'f':
      if (!consumeWord("false"))
        return fail("bad literal");
      Out.K = Value::Kind::Bool;
      Out.B = false;
      return Status::success();
    case 'n':
      if (!consumeWord("null"))
        return fail("bad literal");
      Out.K = Value::Kind::Null;
      return Status::success();
    default:
      return parseNumber(Out);
    }
  }

  Status parseObject(Value &Out, int Depth) {
    Out.K = Value::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (consume('}'))
      return Status::success();
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (Status S = parseString(Key); !S.ok())
        return S;
      skipWs();
      if (!consume(':'))
        return fail("expected ':'");
      skipWs();
      Value Member;
      if (Status S = parseValue(Member, Depth + 1); !S.ok())
        return S;
      Out.Obj.emplace_back(std::move(Key), std::move(Member));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return Status::success();
      return fail("expected ',' or '}'");
    }
  }

  Status parseArray(Value &Out, int Depth) {
    Out.K = Value::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (consume(']'))
      return Status::success();
    for (;;) {
      skipWs();
      Value Element;
      if (Status S = parseValue(Element, Depth + 1); !S.ok())
        return S;
      Out.Arr.push_back(std::move(Element));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return Status::success();
      return fail("expected ',' or ']'");
    }
  }

  /// Appends \p Cp to \p Out as UTF-8.
  static void appendUtf8(std::string &Out, unsigned Cp) {
    if (Cp < 0x80) {
      Out += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      Out += static_cast<char>(0xC0 | (Cp >> 6));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else if (Cp < 0x10000) {
      Out += static_cast<char>(0xE0 | (Cp >> 12));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Cp >> 18));
      Out += static_cast<char>(0x80 | ((Cp >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    }
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return false;
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos + I];
      unsigned D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        D = C - 'A' + 10;
      else
        return false;
      Out = (Out << 4) | D;
    }
    Pos += 4;
    return true;
  }

  Status parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Status::success();
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Cp;
        if (!parseHex4(Cp))
          return fail("bad \\u escape");
        // Surrogate pair: a high surrogate must be followed by \uDC00..
        if (Cp >= 0xD800 && Cp <= 0xDBFF && Pos + 1 < Text.size() &&
            Text[Pos] == '\\' && Text[Pos + 1] == 'u') {
          std::size_t Save = Pos;
          Pos += 2;
          unsigned Lo;
          if (parseHex4(Lo) && Lo >= 0xDC00 && Lo <= 0xDFFF)
            Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Lo - 0xDC00);
          else
            Pos = Save; // Unpaired: emit the high surrogate as-is.
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  Status parseNumber(Value &Out) {
    std::size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    auto Digits = [&] {
      std::size_t N = 0;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        ++Pos;
        ++N;
      }
      return N;
    };
    if (!Digits())
      return fail("expected value");
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (!Digits())
        return fail("expected digits after '.'");
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!Digits())
        return fail("expected exponent digits");
    }
    std::string Lexeme(Text.substr(Start, Pos - Start));
    Out.K = Value::Kind::Number;
    Out.Num = std::strtod(Lexeme.c_str(), nullptr);
    return Status::success();
  }
};

} // namespace aqua::json

Expected<Value> aqua::json::parse(std::string_view Text) {
  return Parser(Text).run();
}
